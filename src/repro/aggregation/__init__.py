"""Rating-aggregation algorithms (the paper's methods 1-4 plus ablations)."""

from repro.aggregation.base import Aggregator, as_arrays
from repro.aggregation.robust import MedianAggregator, TrimmedMeanAggregator
from repro.aggregation.methods import (
    PAPER_METHODS,
    ThresholdedAverage,
    BetaFunctionAggregator,
    ModifiedWeightedAverage,
    PlainWeightedAverage,
    SimpleAverage,
    SunTrustModelAggregator,
)

__all__ = [
    "Aggregator",
    "ThresholdedAverage",
    "as_arrays",
    "MedianAggregator",
    "TrimmedMeanAggregator",
    "PAPER_METHODS",
    "BetaFunctionAggregator",
    "ModifiedWeightedAverage",
    "PlainWeightedAverage",
    "SimpleAverage",
    "SunTrustModelAggregator",
]
