"""Robust-statistics aggregators (non-paper comparison points).

The classic answer to contaminated samples is robust location
estimation, not trust modeling -- so any honest evaluation of method 3
should say how it fares against the median and the trimmed mean.  The
structural difference: robust statistics bound the influence of a
*minority* of outliers, while the paper's threat model is a coordinated
*near-majority* whose values are not outliers at all.  A 50 % mix of
colluders at quality+0.15 drags the median by nearly the full bias;
the trust-gated average, fed by the temporal detector, does not.  The
weight-rule ablation bench quantifies this.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregation.base import Aggregator, as_arrays
from repro.errors import ConfigurationError

__all__ = ["MedianAggregator", "TrimmedMeanAggregator"]


class MedianAggregator(Aggregator):
    """The sample median of the rating values (trust-oblivious)."""

    name = "median"

    def aggregate(self, values: Sequence[float], trusts: Sequence[float]) -> float:
        values, _ = as_arrays(values, trusts)
        return float(np.median(values))


class TrimmedMeanAggregator(Aggregator):
    """Symmetrically trimmed mean of the rating values.

    Args:
        trim: fraction trimmed from *each* tail (0.1 keeps the central
            80 %).  Must lie in [0, 0.5).
    """

    name = "trimmed_mean"

    def __init__(self, trim: float = 0.1) -> None:
        if not 0.0 <= trim < 0.5:
            raise ConfigurationError(f"trim must lie in [0, 0.5), got {trim}")
        self.trim = float(trim)

    def aggregate(self, values: Sequence[float], trusts: Sequence[float]) -> float:
        values, _ = as_arrays(values, trusts)
        if self.trim == 0.0 or values.size < 3:
            return float(np.mean(values))
        ordered = np.sort(values)
        k = int(np.floor(self.trim * ordered.size))
        trimmed = ordered[k : ordered.size - k] if k > 0 else ordered
        return float(np.mean(trimmed))
