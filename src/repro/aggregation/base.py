"""Rating-aggregation interface.

An aggregator maps the (post-filter) ratings of one object, together
with the trust in their raters, to a single aggregated rating in
``[0, 1]`` -- the indirect trust {system : object} of Section III-B.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, EmptyWindowError

__all__ = ["Aggregator", "as_arrays"]


def as_arrays(
    values: Sequence[float], trusts: Sequence[float]
) -> tuple:
    """Validate and convert parallel rating / trust sequences.

    Both ratings and trusts live in ``[0, 1]`` (Section III-B); this is
    the domain boundary every aggregator funnels through.

    Raises:
        EmptyWindowError: when there are no ratings to aggregate.
        ValueError: when the sequences are not parallel.
        ConfigurationError: when a rating or trust falls outside [0, 1].
    """
    values = np.asarray(values, dtype=float).ravel()
    trusts = np.asarray(trusts, dtype=float).ravel()
    if values.size == 0:
        raise EmptyWindowError("cannot aggregate zero ratings")
    if values.size != trusts.size:
        raise ValueError(
            f"ratings ({values.size}) and trusts ({trusts.size}) must be parallel"
        )
    for name, arr in (("ratings", values), ("trusts", trusts)):
        if float(np.min(arr)) < 0.0 or float(np.max(arr)) > 1.0:
            raise ConfigurationError(f"{name} must lie in [0, 1]")
    return values, trusts


class Aggregator(abc.ABC):
    """Abstract rating aggregator.

    Subclasses implement :meth:`aggregate`; trust-oblivious methods
    simply ignore the ``trusts`` argument, keeping one call signature
    across all four of the paper's methods.
    """

    #: Human-readable name used by benches and reports.
    name: str = "aggregator"

    @abc.abstractmethod
    def aggregate(
        self, values: Sequence[float], trusts: Sequence[float]
    ) -> float:
        """Aggregate parallel rating values and rater trusts."""

    def __call__(
        self, values: Sequence[float], trusts: Sequence[float]
    ) -> float:
        return self.aggregate(values, trusts)
