"""The paper's four rating-aggregation methods (Section III-B.2).

1. :class:`SimpleAverage` -- trust-oblivious mean.
2. :class:`BetaFunctionAggregator` -- Jøsang-Ismail beta reputation:
   ``(S' + 1) / (S' + F' + 2)`` with ``S' = sum(r)``, ``F' = sum(1-r)``.
3. :class:`ModifiedWeightedAverage` -- the paper's winner: weight each
   rating by ``max(T - 0.5, 0)`` so raters at or below neutral trust
   are ignored and weights grow with trust *above* neutral only.
4. :class:`SunTrustModelAggregator` -- the Sun et al. INFOCOM'06
   probability-propagation model (see class docs for the approximation
   we make and DESIGN.md for why the reproducible claim is its
   *ordering*, not its exact value).

Plus :class:`PlainWeightedAverage` (raw-trust weights) used by the
weight-rule ablation bench.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregation.base import Aggregator, as_arrays
from repro.errors import ConfigurationError

__all__ = [
    "SimpleAverage",
    "ThresholdedAverage",
    "BetaFunctionAggregator",
    "ModifiedWeightedAverage",
    "PlainWeightedAverage",
    "SunTrustModelAggregator",
    "PAPER_METHODS",
]


class SimpleAverage(Aggregator):
    """Method 1: the plain mean of the rating values."""

    name = "simple_average"

    def aggregate(self, values: Sequence[float], trusts: Sequence[float]) -> float:
        values, _ = as_arrays(values, trusts)
        return float(np.mean(values))


class BetaFunctionAggregator(Aggregator):
    """Method 2: Jøsang-Ismail beta reputation over rating evidence.

    Each rating ``r`` contributes ``r`` units of positive and ``1 - r``
    units of negative evidence; the aggregate is the posterior mean
    ``(S' + 1) / (S' + F' + 2)``.  The Beta(1,1) prior pulls sparse
    objects toward 0.5, which is visible in the paper's table (method 2
    sits below the simple average).
    """

    name = "beta_function"

    def aggregate(self, values: Sequence[float], trusts: Sequence[float]) -> float:
        values, _ = as_arrays(values, trusts)
        s = float(np.sum(values))
        f = float(np.sum(1.0 - values))
        return (s + 1.0) / (s + f + 2.0)


class ModifiedWeightedAverage(Aggregator):
    """Method 3: trust-gated weighted average (the paper's choice).

    Weights are ``max(T_i - floor, 0)``: a rater at or below the
    neutral trust ``floor`` (0.5 -- no trust, no distrust) contributes
    nothing, and contribution grows with trust above neutral.  When
    every rater is at or below the floor the method falls back to the
    simple average -- with no trustworthy rater there is no better
    unbiased guess, and returning 0 would be interpreted as "terrible
    object" rather than "no information".

    Args:
        floor: the neutral-trust cutoff (paper: 0.5).
    """

    name = "modified_weighted_average"

    def __init__(self, floor: float = 0.5) -> None:
        if not 0.0 <= floor < 1.0:
            raise ConfigurationError(f"floor must lie in [0, 1), got {floor}")
        self.floor = float(floor)

    def aggregate(self, values: Sequence[float], trusts: Sequence[float]) -> float:
        values, trusts = as_arrays(values, trusts)
        weights = np.clip(trusts - self.floor, 0.0, None)
        total = float(np.sum(weights))
        if total == 0.0:
            return float(np.mean(values))
        return float(np.dot(weights, values) / total)


class PlainWeightedAverage(Aggregator):
    """Ablation: weight each rating by the raw trust value ``T_i``.

    Unlike method 3, low-trust raters still contribute (just less),
    which lets a large collaborating group retain influence -- the
    ablation bench quantifies how much that costs.
    """

    name = "plain_weighted_average"

    def aggregate(self, values: Sequence[float], trusts: Sequence[float]) -> float:
        values, trusts = as_arrays(values, trusts)
        total = float(np.sum(trusts))
        if total == 0.0:
            return float(np.mean(values))
        return float(np.dot(trusts, values) / total)


class SunTrustModelAggregator(Aggregator):
    """Method 4: probability-propagation aggregation (Sun et al. 2006).

    The cited framework treats the rating as B's trust in the object
    and the system's trust in B as recommendation trust, then
    propagates along the path system -> rater -> object.  In the
    probability domain the concatenation used here is

        p_path = T_i * r_i + (1 - T_i) * (1 - r_i)

    (an untrustworthy rater's report carries inverted evidence), and
    parallel paths fuse by equal-weight multipath averaging.  This is
    our reading of equations (14)/(22)/(23) of the cited paper, which
    are not reprinted in the rating paper; the reproduced claim is that
    a model tuned for ad hoc routing *underperforms* the modified
    weighted average for rating aggregation -- the inversion term,
    harmless for binary routing reports, drags continuous rating
    aggregates toward 0.5, matching the table (paper: 0.5985, the
    lowest of the four; this implementation measures ~0.60 under the
    same scenario).
    """

    name = "sun_trust_model"

    def aggregate(self, values: Sequence[float], trusts: Sequence[float]) -> float:
        # The cited model saturates out-of-range recommendation trust,
        # so clip before as_arrays' [0, 1] domain validation.
        trusts = np.clip(trusts, 0.0, 1.0)
        values, trusts = as_arrays(values, trusts)
        path_trust = trusts * values + (1.0 - trusts) * (1.0 - values)
        return float(np.mean(path_trust))


class ThresholdedAverage(Aggregator):
    """Ablation: unweighted mean over raters above a trust cutoff.

    Like method 3 this drops low-trust raters entirely, but unlike it
    the survivors are weighted equally -- isolating how much of the
    modified weighted average's robustness comes from the cutoff versus
    the above-neutral weighting.
    """

    name = "thresholded_average"

    def __init__(self, cutoff: float = 0.5) -> None:
        if not 0.0 <= cutoff < 1.0:
            raise ConfigurationError(f"cutoff must lie in [0, 1), got {cutoff}")
        self.cutoff = float(cutoff)

    def aggregate(self, values: Sequence[float], trusts: Sequence[float]) -> float:
        values, trusts = as_arrays(values, trusts)
        keep = trusts > self.cutoff
        if not keep.any():
            return float(np.mean(values))
        return float(np.mean(values[keep]))


#: The paper's table, in order: method number -> aggregator factory.
PAPER_METHODS = {
    1: SimpleAverage,
    2: BetaFunctionAggregator,
    3: ModifiedWeightedAverage,
    4: SunTrustModelAggregator,
}
