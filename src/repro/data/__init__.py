"""Dataset substitutes: the synthetic Netflix-like movie trace."""

from repro.data.netflix import (
    DINOSAUR_PLANET,
    NetflixTraceConfig,
    generate_netflix_trace,
)

__all__ = ["DINOSAUR_PLANET", "NetflixTraceConfig", "generate_netflix_trace"]
