"""Synthetic Netflix-like movie-rating trace.

The paper's Fig. 5 runs the AR detector on the first Netflix Prize
title, *Dinosaur Planet* (2003), then re-runs it after injecting
collaborative ratings with the paper's recipe.  The Prize data is no
longer distributed, so this module generates a trace with the
properties that make real movie data harder than the clean simulation:

* **integer stars** (1-5, mapped to 0.2 .. 1.0),
* **non-stationary arrivals** -- a release ramp, a slow decay, and a
  weekend uplift, realized as a thinned Poisson process,
* **a slowly drifting mean opinion** (word-of-mouth effect),
* a **heavy middle** star distribution matching a middling documentary
  (mean around 3.2 stars).

The generator is seeded and returns an ordinary
:class:`~repro.ratings.stream.RatingStream`, so everything downstream
(windowing, filtering, detection, injection) treats it exactly like
real data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ratings.arrivals import nonhomogeneous_arrival_times
from repro.ratings.models import Product, Rating, fresh_rating_id
from repro.ratings.scales import FIVE_STAR, RatingScale
from repro.ratings.stream import RatingStream

__all__ = ["NetflixTraceConfig", "generate_netflix_trace", "DINOSAUR_PLANET"]


@dataclass(frozen=True)
class NetflixTraceConfig:
    """Shape parameters of the synthetic movie trace.

    Attributes:
        n_days: trace length in days (Fig. 5 spans ~700).
        peak_rate: peak arrivals/day at the end of the release ramp.
        ramp_days: days from release to peak popularity.
        half_life_days: popularity decay half-life after the peak.
        weekend_boost: multiplicative weekend arrival uplift.
        star_probabilities: probabilities of 1..5 stars at trace start.
        opinion_drift: total drift of the mean star value (in [0,1]
            units) across the trace -- positive for films that age well.
        product_id: id assigned to the movie.
    """

    n_days: float = 700.0
    peak_rate: float = 8.0
    ramp_days: float = 60.0
    half_life_days: float = 400.0
    weekend_boost: float = 1.5
    star_probabilities: tuple = (0.08, 0.17, 0.35, 0.25, 0.15)
    opinion_drift: float = 0.02
    product_id: int = 0

    def __post_init__(self) -> None:
        if self.n_days <= 0 or self.peak_rate <= 0:
            raise ConfigurationError("n_days and peak_rate must be > 0")
        if self.ramp_days <= 0 or self.half_life_days <= 0:
            raise ConfigurationError("ramp_days and half_life_days must be > 0")
        if self.weekend_boost < 1.0:
            raise ConfigurationError(
                f"weekend_boost must be >= 1, got {self.weekend_boost}"
            )
        probs = np.asarray(self.star_probabilities, dtype=float)
        if probs.size != 5 or np.any(probs < 0) or not np.isclose(probs.sum(), 1.0):
            raise ConfigurationError(
                "star_probabilities must be 5 non-negative values summing to 1"
            )

    def arrival_rate(self, t: float) -> float:
        """Instantaneous arrival rate at day ``t``."""
        if t < 0 or t > self.n_days:
            return 0.0
        if t < self.ramp_days:
            base = self.peak_rate * t / self.ramp_days
        else:
            base = self.peak_rate * 0.5 ** ((t - self.ramp_days) / self.half_life_days)
        is_weekend = int(t) % 7 in (5, 6)
        return base * (self.weekend_boost if is_weekend else 1.0)

    @property
    def max_rate(self) -> float:
        return self.peak_rate * self.weekend_boost

    @property
    def mean_star_value(self) -> float:
        """Mean rating (in [0,1]) implied by the star distribution."""
        stars = np.arange(1, 6)
        return float(np.dot(self.star_probabilities, stars) / 5.0)


#: The Fig. 5 title, shaped like a middling 2003 documentary.
DINOSAUR_PLANET = NetflixTraceConfig()


def generate_netflix_trace(
    config: NetflixTraceConfig,
    rng: np.random.Generator,
    scale: RatingScale = FIVE_STAR,
) -> RatingStream:
    """Generate the synthetic movie trace.

    Every rating comes from a fresh rater id (Netflix members rate a
    title once), and the star draw follows the configured distribution
    whose mean drifts linearly by ``opinion_drift`` over the trace.

    Returns:
        A time-sorted :class:`RatingStream` of quantized star ratings.
    """
    times = nonhomogeneous_arrival_times(
        rate_fn=config.arrival_rate,
        rate_max=config.max_rate,
        start=0.0,
        end=config.n_days,
        rng=rng,
    )
    base_probs = np.asarray(config.star_probabilities, dtype=float)
    stars_axis = np.arange(1, 6)
    ratings = []
    for rater_id, t in enumerate(times):
        # Drift the star distribution by tilting probabilities linearly
        # with the star index; renormalize to keep it a distribution.
        progress = float(t) / config.n_days
        tilt = 1.0 + config.opinion_drift * progress * (stars_axis - 3.0)
        probs = np.clip(base_probs * tilt, 1e-9, None)
        probs /= probs.sum()
        stars = int(rng.choice(stars_axis, p=probs))
        ratings.append(
            Rating(
                rating_id=fresh_rating_id(),
                rater_id=rater_id,
                product_id=config.product_id,
                value=scale.from_stars(stars, n_stars=5),
                time=float(t),
                unfair=False,
            )
        )
    return RatingStream.from_ratings(ratings)
