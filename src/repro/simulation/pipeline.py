"""Run a generated marketplace through the trust-enhanced rating system.

This is the Section IV evaluation harness: ratings stream into the
Fig. 1 pipeline month by month, trust snapshots are taken after every
monthly update (Figs. 6-8), rating-level detection is graded per month
(Fig. 9), and final per-product aggregates are computed under all
aggregation schemes (Figs. 10-12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.aggregation.base import Aggregator
from repro.core.system import IntervalReport, TrustEnhancedRatingSystem
from repro.detectors.ar_detector import ARModelErrorDetector
from repro.errors import ConfigurationError
from repro.evaluation.detection import RaterDetectionStats, rater_detection
from repro.filters.beta_quantile import BetaQuantileFilter
from repro.ratings.models import RaterClass
from repro.signal.windows import TimeWindower
from repro.simulation.marketplace import MarketplaceWorld
from repro.trust.manager import TrustManagerConfig

__all__ = ["PipelineConfig", "MarketplaceRun", "run_marketplace"]


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the Section IV pipeline (paper values where given).

    The AR threshold is calibrated for this library's error
    normalization (DESIGN.md §5); the paper's 0.02 refers to Matlab's
    ``covm`` scaling.  Similarly, the filter sensitivity defaults to
    0.05 rather than the paper's 0.1: with the empirical quantile band
    a sensitivity of q trims about 2q of honest mass, and 0.05 matches
    the (near-no-op) effective strength the paper's filter exhibits in
    its own figures.
    """

    filter_sensitivity: float = 0.05
    ar_order: int = 4
    ar_threshold: float = 0.22
    ar_window_days: float = 10.0
    ar_window_step: float = 5.0
    ar_scale: float = 1.0
    ar_level_rule: str = "literal"
    badness_weight: float = 1.0
    detection_threshold: float = 0.5
    forgetting_factor: float = 1.0

    def build_system(self) -> TrustEnhancedRatingSystem:
        """Assemble the Fig. 1 system with these knobs."""
        detector = ARModelErrorDetector(
            order=self.ar_order,
            threshold=self.ar_threshold,
            scale=self.ar_scale,
            level_rule=self.ar_level_rule,
            windower=TimeWindower(
                length=self.ar_window_days, step=self.ar_window_step
            ),
        )
        return TrustEnhancedRatingSystem(
            rating_filter=BetaQuantileFilter(sensitivity=self.filter_sensitivity),
            detector=detector,
            trust_config=TrustManagerConfig(
                badness_weight=self.badness_weight,
                detection_threshold=self.detection_threshold,
                forgetting_factor=self.forgetting_factor,
            ),
        )


@dataclass
class MarketplaceRun:
    """Everything the Section IV figures need from one pipeline run."""

    world: MarketplaceWorld
    system: TrustEnhancedRatingSystem
    monthly_trust: List[Dict[int, float]] = field(default_factory=list)
    monthly_reports: List[IntervalReport] = field(default_factory=list)

    # -- Figs. 6-8: trust trajectories and snapshots -------------------------

    def mean_trust_by_class(self) -> Dict[RaterClass, np.ndarray]:
        """Class -> per-month mean trust array (Fig. 6 series)."""
        classes = self.world.rater_classes
        series: Dict[RaterClass, List[float]] = {}
        for table in self.monthly_trust:
            by_class: Dict[RaterClass, List[float]] = {}
            for rater_id, trust in table.items():
                by_class.setdefault(classes[rater_id], []).append(trust)
            for cls, values in by_class.items():
                series.setdefault(cls, []).append(float(np.mean(values)))
        return {cls: np.asarray(vals) for cls, vals in series.items()}

    def trust_snapshot(self, month: int) -> Dict[int, float]:
        """rater_id -> trust at the end of the given month (0-based)."""
        return dict(self.monthly_trust[month])

    def rater_detection_at(
        self, month: int, threshold: float = 0.5
    ) -> RaterDetectionStats:
        """Figs. 7-8: threshold detection graded at a month's snapshot."""
        return rater_detection(
            self.trust_snapshot(month), self.world.rater_classes, threshold
        )

    # -- Fig. 9: rating-level detection over time -----------------------------

    def rating_detection_by_month(
        self, threshold: float = 0.5
    ) -> List[Dict[str, float]]:
        """Per-month unfair-rating detection and fair-rating false alarm.

        A rating counts as detected when its rater sits below the trust
        threshold at that month's snapshot -- the paper's reading, which
        is why both curves improve as trust evidence accumulates.
        """
        config = self.world.config
        stream = self.world.store.all_ratings()
        results: List[Dict[str, float]] = []
        for month in range(len(self.monthly_trust)):
            table = self.monthly_trust[month]
            start = month * config.days_per_month
            end = start + config.days_per_month
            month_stream = stream.between(start, end)
            n_unfair = n_unfair_hit = n_fair = n_fair_hit = 0
            for rating in month_stream:
                flagged = table.get(rating.rater_id, 0.5) < threshold
                if rating.unfair:
                    n_unfair += 1
                    n_unfair_hit += int(flagged)
                else:
                    n_fair += 1
                    n_fair_hit += int(flagged)
            results.append(
                {
                    "month": float(month + 1),
                    "detection_ratio": n_unfair_hit / n_unfair if n_unfair else 0.0,
                    "false_alarm_ratio": n_fair_hit / n_fair if n_fair else 0.0,
                }
            )
        return results

    # -- Figs. 10-12: aggregation comparison ----------------------------------

    def aggregate_products(
        self, aggregator: Optional[Aggregator] = None
    ) -> Dict[int, float]:
        """Final per-product aggregate under the given scheme."""
        return self.system.aggregated_ratings(aggregator)

    def aggregation_table(
        self, aggregators: Mapping[str, Aggregator]
    ) -> Dict[str, Dict[int, float]]:
        """scheme name -> {product -> aggregate} for several schemes."""
        return {
            name: self.aggregate_products(aggregator)
            for name, aggregator in aggregators.items()
        }


def run_marketplace(
    world: MarketplaceWorld,
    pipeline: Optional[PipelineConfig] = None,
    month_end_hook=None,
) -> MarketplaceRun:
    """Feed a generated world through the pipeline month by month.

    Args:
        world: the generated marketplace.
        pipeline: pipeline knobs (defaults to the Section IV setup).
        month_end_hook: optional callable ``(system, month)`` invoked
            after each monthly trust update -- the extension experiments
            use it to model identity churn (whitewashing) between
            months.  When the hook mutates trust records, the recorded
            monthly snapshot reflects the post-hook state.
    """
    pipeline = pipeline if pipeline is not None else PipelineConfig()
    config = world.config
    system = pipeline.build_system()
    for product_id in world.store.product_ids:
        system.register_product(world.store.product(product_id))
    for rater_id in world.store.rater_ids:
        system.register_rater(world.store.rater(rater_id))

    run = MarketplaceRun(world=world, system=system)
    all_ratings = world.store.all_ratings()
    for month in range(config.n_months):
        start = float(month * config.days_per_month)
        end = start + config.days_per_month
        month_ratings = all_ratings.between(start, end)
        system.ingest(month_ratings)
        report = system.process_interval(start, end)
        if month_end_hook is not None:
            month_end_hook(system, month)
            report.trust_after = system.trust_manager.trust_table()
        run.monthly_reports.append(report)
        run.monthly_trust.append(dict(report.trust_after))
    return run
