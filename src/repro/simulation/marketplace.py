"""The Section IV marketplace simulation.

A year-long rating marketplace: 800 raters (400 reliable, 200 careless,
200 potential-collaborative), 60 products (4 honest + 1 dishonest per
30-day month), qualities uniform in [0.4, 0.6], 10-level rating scale.
Each month the dishonest product recruits potential-collaborative (PC)
raters for a 10-day campaign: recruited PC raters rate the dishonest
product at ``a1 * p_rate`` per day with type 2 biased ratings; PC
raters who are not recruited that month rate all products honestly at
``a2 * p_rate``; reliable and careless raters rate every available
product at ``p_rate`` per day.  One rating per rater per product.

Interpretation choices the paper leaves open (see DESIGN.md §5): the
daily rating probability ``p_rate``, the recruitment fraction
``recruit_power3``, and the rule that a *recruited* PC rater spends its
month on the campaign (it rates the dishonest product only) -- this is
what lets a dishonest history outweigh a PC rater's honest history, the
precondition for the trust separation in the paper's Figs. 6-8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.ratings.models import Product, RaterClass, RaterProfile, Rating, fresh_rating_id
from repro.ratings.quality import ConstantQuality
from repro.ratings.scales import TEN_LEVEL, RatingScale
from repro.ratings.store import RatingStore

__all__ = ["MarketplaceConfig", "AttackSchedule", "MarketplaceWorld", "generate_marketplace"]


@dataclass(frozen=True)
class MarketplaceConfig:
    """Parameters of the marketplace world (Section IV-A defaults)."""

    n_reliable: int = 400
    n_careless: int = 200
    n_pc: int = 200
    good_var: float = 0.2
    careless_var: float = 0.3
    n_months: int = 12
    days_per_month: int = 30
    honest_per_month: int = 4
    dishonest_per_month: int = 1
    quality_low: float = 0.4
    quality_high: float = 0.6
    bias_shift2: float = 0.15
    bad_var: float = 0.02
    recruit_power3: float = 0.85
    attack_days: int = 10
    p_rate: float = 0.025
    a1: float = 6.0
    a2: float = 0.5
    campaign_start_month: int = 0
    scale: RatingScale = TEN_LEVEL

    def __post_init__(self) -> None:
        if min(self.n_reliable, self.n_careless, self.n_pc) < 0:
            raise ConfigurationError("population sizes must be >= 0")
        if self.n_months < 1 or self.days_per_month < 1:
            raise ConfigurationError("need at least one month of at least one day")
        if not 0 < self.attack_days <= self.days_per_month:
            raise ConfigurationError(
                f"attack_days must lie in (0, {self.days_per_month}], got {self.attack_days}"
            )
        if not 0.0 <= self.recruit_power3 <= 1.0:
            raise ConfigurationError(
                f"recruit_power3 must lie in [0, 1], got {self.recruit_power3}"
            )
        if not 0.0 < self.p_rate <= 1.0:
            raise ConfigurationError(f"p_rate must lie in (0, 1], got {self.p_rate}")
        for name in ("a1", "a2"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be > 0")
        if self.a1 * self.p_rate > 1.0 or self.a2 * self.p_rate > 1.0:
            raise ConfigurationError(
                "a1 * p_rate and a2 * p_rate must be daily probabilities <= 1"
            )
        if not 0.0 <= self.quality_low <= self.quality_high <= 1.0:
            raise ConfigurationError("need 0 <= quality_low <= quality_high <= 1")
        if self.campaign_start_month < 0:
            raise ConfigurationError(
                f"campaign_start_month must be >= 0, got {self.campaign_start_month}"
            )

    @property
    def n_raters(self) -> int:
        return self.n_reliable + self.n_careless + self.n_pc

    @property
    def products_per_month(self) -> int:
        return self.honest_per_month + self.dishonest_per_month

    @property
    def n_products(self) -> int:
        return self.products_per_month * self.n_months

    @property
    def horizon(self) -> float:
        return float(self.n_months * self.days_per_month)

    def rater_class_of(self, rater_id: int) -> RaterClass:
        """Ground-truth class by id block: reliable, careless, then PC."""
        if not 0 <= rater_id < self.n_raters:
            raise ConfigurationError(f"rater id {rater_id} out of range")
        if rater_id < self.n_reliable:
            return RaterClass.RELIABLE
        if rater_id < self.n_reliable + self.n_careless:
            return RaterClass.CARELESS
        return RaterClass.POTENTIAL_COLLABORATIVE


@dataclass(frozen=True)
class AttackSchedule:
    """One month's campaign against its dishonest product."""

    month: int
    product_id: int
    attack_start: float
    attack_end: float
    recruited_rater_ids: Tuple[int, ...]


@dataclass
class MarketplaceWorld:
    """A fully generated marketplace: ratings plus all ground truth."""

    config: MarketplaceConfig
    store: RatingStore
    qualities: Dict[int, float]
    schedules: List[AttackSchedule]
    rater_classes: Dict[int, RaterClass] = field(default_factory=dict)

    @property
    def dishonest_product_ids(self) -> List[int]:
        return sorted(s.product_id for s in self.schedules)

    @property
    def honest_product_ids(self) -> List[int]:
        dishonest = set(self.dishonest_product_ids)
        return [pid for pid in sorted(self.qualities) if pid not in dishonest]

    def schedule_for_month(self, month: int) -> AttackSchedule:
        return self.schedules[month]


def _draw_values(
    quality: float, variance: float, scale: RatingScale, rng: np.random.Generator, n: int
) -> np.ndarray:
    """n quantized Gaussian ratings around ``quality``."""
    if n == 0:
        return np.empty(0)
    std = float(np.sqrt(variance))
    raw = rng.normal(quality, std, size=n) if std > 0 else np.full(n, quality)
    return scale.quantize_array(raw)


def generate_marketplace(
    config: MarketplaceConfig, rng: np.random.Generator
) -> MarketplaceWorld:
    """Generate one marketplace year.

    The daily loop is vectorized over the rater population: for each
    (day, product) pair one Bernoulli vector decides who rates, honest
    values are drawn per class, and recruited PC raters get type 2
    draws inside the attack window.
    """
    store = RatingStore()
    classes = {rid: config.rater_class_of(rid) for rid in range(config.n_raters)}
    for rater_id, rater_class in classes.items():
        variance = {
            RaterClass.RELIABLE: config.good_var,
            RaterClass.CARELESS: config.careless_var,
            RaterClass.POTENTIAL_COLLABORATIVE: config.good_var,
        }[rater_class]
        store.add_rater(
            RaterProfile(rater_id=rater_id, rater_class=rater_class, variance=variance)
        )

    n = config.n_raters
    reliable_mask = np.zeros(n, dtype=bool)
    careless_mask = np.zeros(n, dtype=bool)
    pc_mask = np.zeros(n, dtype=bool)
    reliable_mask[: config.n_reliable] = True
    careless_mask[config.n_reliable : config.n_reliable + config.n_careless] = True
    pc_mask[config.n_reliable + config.n_careless :] = True
    variances = np.where(careless_mask, config.careless_var, config.good_var)

    qualities: Dict[int, float] = {}
    schedules: List[AttackSchedule] = []

    for month in range(config.n_months):
        month_start = month * config.days_per_month
        month_end = month_start + config.days_per_month
        product_ids = list(
            range(month * config.products_per_month, (month + 1) * config.products_per_month)
        )
        dishonest_id = product_ids[-1]
        for pid in product_ids:
            quality = float(rng.uniform(config.quality_low, config.quality_high))
            qualities[pid] = quality
            store.add_product(
                Product(
                    product_id=pid,
                    quality=ConstantQuality(quality),
                    dishonest=(pid == dishonest_id),
                    available_from=float(month_start),
                    available_until=float(month_end),
                )
            )

        # Campaigns only run from campaign_start_month on; earlier months
        # let PC raters build an honest history (the behaviour-switch
        # scenario of the forgetting experiment).
        if month < config.campaign_start_month:
            n_recruited = 0
        else:
            n_recruited = int(round(config.recruit_power3 * config.n_pc))
        pc_ids = np.flatnonzero(pc_mask)
        recruited_ids = rng.choice(pc_ids, size=n_recruited, replace=False)
        recruited_mask = np.zeros(n, dtype=bool)
        recruited_mask[recruited_ids] = True
        attack_offset = int(rng.integers(0, config.days_per_month - config.attack_days + 1))
        attack_start = float(month_start + attack_offset)
        attack_end = attack_start + config.attack_days
        schedules.append(
            AttackSchedule(
                month=month,
                product_id=dishonest_id,
                attack_start=attack_start,
                attack_end=attack_end,
                recruited_rater_ids=tuple(int(r) for r in sorted(recruited_ids)),
            )
        )

        already_rated = {pid: np.zeros(n, dtype=bool) for pid in product_ids}
        for day in range(month_start, month_end):
            in_attack = attack_start <= day < attack_end
            for pid in product_ids:
                quality = qualities[pid]
                is_dishonest = pid == dishonest_id

                probs = np.zeros(n)
                probs[reliable_mask | careless_mask] = config.p_rate
                # A recruited PC rater spends the month on its campaign:
                # it rates the dishonest product during the attack window
                # and nothing else; non-recruited PC raters browse at a2.
                idle_pc = pc_mask & ~recruited_mask
                probs[idle_pc] = config.a2 * config.p_rate
                if is_dishonest and in_attack:
                    probs[recruited_mask] = config.a1 * config.p_rate

                probs[already_rated[pid]] = 0.0
                raters_today = np.flatnonzero(rng.uniform(size=n) < probs)
                if raters_today.size == 0:
                    continue
                already_rated[pid][raters_today] = True

                unfair_today = (
                    recruited_mask[raters_today] if (is_dishonest and in_attack)
                    else np.zeros(raters_today.size, dtype=bool)
                )
                values = np.empty(raters_today.size)
                honest_sel = ~unfair_today
                if honest_sel.any():
                    honest_ids = raters_today[honest_sel]
                    stds = np.sqrt(variances[honest_ids])
                    values[honest_sel] = config.scale.quantize_array(
                        rng.normal(quality, stds)
                    )
                if unfair_today.any():
                    values[unfair_today] = _draw_values(
                        quality + config.bias_shift2,
                        config.bad_var,
                        config.scale,
                        rng,
                        int(unfair_today.sum()),
                    )
                times = day + rng.uniform(size=raters_today.size)
                for rater_id, value, t, unfair in zip(
                    raters_today, values, times, unfair_today
                ):
                    store.add_rating(
                        Rating(
                            rating_id=fresh_rating_id(),
                            rater_id=int(rater_id),
                            product_id=pid,
                            value=float(value),
                            time=float(t),
                            unfair=bool(unfair),
                        )
                    )

    return MarketplaceWorld(
        config=config,
        store=store,
        qualities=qualities,
        schedules=schedules,
        rater_classes=classes,
    )
