"""The illustrative single-object experiment (Section III-A.2).

One object is rated over 60 days by a Poisson stream of honest raters
(rate 3/day, 11-level scale, quality ramping 0.7 -> 0.8, variance 0.2).
Between days 30 and 44 the object's owner runs a campaign: 30 % of the
regulars shift their rating by +0.2 (type 1) and recruited outsiders
arrive at the honest rate with ratings ``N(quality + 0.15, 0.02)``
(type 2).  The module generates both the honest-only trace and the
attacked trace with ground-truth labels, which feed Figs. 2-4 and the
500-run detection-rate experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.attacks.campaign import CollusionCampaign
from repro.errors import ConfigurationError
from repro.ratings.arrivals import poisson_arrival_times
from repro.ratings.models import Product, Rating, fresh_rating_id
from repro.ratings.quality import LinearRampQuality
from repro.ratings.scales import RatingScale
from repro.ratings.stream import RatingStream

__all__ = ["IllustrativeConfig", "IllustrativeTrace", "generate_illustrative"]


@dataclass(frozen=True)
class IllustrativeConfig:
    """Parameters of the Section III-A.2 experiment (paper defaults).

    Attributes mirror the paper's table: ``simu_time``, ``arrival_rate``,
    ``levels`` (R_level), quality ramp endpoints, ``good_var``, the
    attack interval ``[attack_start, attack_end)``, and the two
    collaborative channels' parameters.
    """

    simu_time: float = 60.0
    arrival_rate: float = 3.0
    levels: int = 11
    quality_start: float = 0.7
    quality_end: float = 0.8
    good_var: float = 0.2
    attack_start: float = 30.0
    attack_end: float = 44.0
    bias_shift1: float = 0.2
    recruit_power1: float = 0.3
    bias_shift2: float = 0.15
    bad_var: float = 0.02
    recruit_power2: float = 1.0
    product_id: int = 0

    def __post_init__(self) -> None:
        if self.simu_time <= 0:
            raise ConfigurationError(f"simu_time must be > 0, got {self.simu_time}")
        if self.arrival_rate < 0:
            raise ConfigurationError(
                f"arrival_rate must be >= 0, got {self.arrival_rate}"
            )
        if not 0 <= self.attack_start < self.attack_end <= self.simu_time:
            raise ConfigurationError(
                "attack interval must satisfy 0 <= start < end <= simu_time, got "
                f"[{self.attack_start}, {self.attack_end}) in {self.simu_time}"
            )

    @property
    def scale(self) -> RatingScale:
        return RatingScale(levels=self.levels, minimum=0.0, maximum=1.0)

    @property
    def quality(self) -> LinearRampQuality:
        return LinearRampQuality(
            start_value=self.quality_start,
            end_value=self.quality_end,
            start_time=0.0,
            end_time=self.simu_time,
        )

    @property
    def campaign(self) -> CollusionCampaign:
        return CollusionCampaign(
            start=self.attack_start,
            end=self.attack_end,
            type1_bias=self.bias_shift1,
            type1_power=self.recruit_power1,
            type2_bias=self.bias_shift2,
            type2_variance=self.bad_var,
            type2_power=self.recruit_power2,
        )

    def without_attack(self) -> "IllustrativeConfig":
        """A copy whose campaign recruits nobody (honest-only control)."""
        return replace(self, recruit_power1=0.0, recruit_power2=0.0)


@dataclass(frozen=True)
class IllustrativeTrace:
    """Generated traces of one illustrative run.

    Attributes:
        config: the generating configuration.
        product: the rated object (quality ramp attached).
        honest: the honest-only stream.
        attacked: the stream after both collaborative channels --
            influenced regulars keep their rating ids with ``unfair``
            set; recruited ratings are appended with fresh rater ids.
    """

    config: IllustrativeConfig
    product: Product
    honest: RatingStream
    attacked: RatingStream

    @property
    def n_unfair(self) -> int:
        return len(self.attacked.unfair_only())


def generate_illustrative(
    config: IllustrativeConfig, rng: np.random.Generator
) -> IllustrativeTrace:
    """Generate one illustrative trace (honest and attacked variants).

    Every honest arrival is a distinct rater (the paper's "rater i
    originally wants to give rating r_i at time t_i"), so rater ids in
    the honest stream are 0..N-1 and recruited outsiders get ids above
    them.
    """
    scale = config.scale
    quality = config.quality
    product = Product(
        product_id=config.product_id, quality=quality, dishonest=True
    )

    times = poisson_arrival_times(
        rate=config.arrival_rate, start=0.0, end=config.simu_time, rng=rng
    )
    std = float(np.sqrt(config.good_var))
    honest_ratings = []
    for rater_id, t in enumerate(times):
        raw = rng.normal(quality(float(t)), std) if std > 0 else quality(float(t))
        honest_ratings.append(
            Rating(
                rating_id=fresh_rating_id(),
                rater_id=rater_id,
                product_id=config.product_id,
                value=scale.quantize(float(raw)),
                time=float(t),
                unfair=False,
            )
        )
    honest = RatingStream.from_ratings(honest_ratings)

    campaign = config.campaign
    influenced = campaign.influence(honest, scale, rng)
    recruited = campaign.recruit(
        product_id=config.product_id,
        quality_at=quality,
        base_rate=config.arrival_rate,
        scale=scale,
        rng=rng,
        rater_id_start=len(honest_ratings),
    )
    attacked = influenced.merge(RatingStream.from_ratings(recruited))
    return IllustrativeTrace(
        config=config, product=product, honest=honest, attacked=attacked
    )
