"""Simulations: the illustrative single-object experiment and the marketplace."""

from repro.simulation.illustrative import (
    IllustrativeConfig,
    IllustrativeTrace,
    generate_illustrative,
)
from repro.simulation.marketplace import (
    AttackSchedule,
    MarketplaceConfig,
    MarketplaceWorld,
    generate_marketplace,
)
from repro.simulation.vouching import (
    VouchingConfig,
    VouchingNetwork,
    build_vouching_network,
    evaluate_network,
)
from repro.simulation.pipeline import MarketplaceRun, PipelineConfig, run_marketplace

__all__ = [
    "IllustrativeConfig",
    "IllustrativeTrace",
    "generate_illustrative",
    "AttackSchedule",
    "MarketplaceConfig",
    "MarketplaceWorld",
    "generate_marketplace",
    "VouchingConfig",
    "VouchingNetwork",
    "build_vouching_network",
    "evaluate_network",
    "MarketplaceRun",
    "PipelineConfig",
    "run_marketplace",
]
