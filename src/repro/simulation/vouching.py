"""Vouching networks: exercising the indirect-trust path.

Fig. 1's Recommendation Buffer feeds indirect trust, but the paper's
evaluation never uses it.  This module builds the canonical scenario it
exists for: a population where the system has direct history on a core
of veterans only, newcomers are known solely through vouches, and a
**self-promotion ring** of colluders vouches enthusiastically for each
other.  The classic result for concatenation/multipath propagation:

* a ring with no inbound trusted edge is *inert* -- mutual praise
  yields exactly zero indirect trust;
* the ring only gains standing through **bridges** (honest raters
  fooled into vouching for a ring member), and its indirect trust is
  bounded by the bridges' own trust times their vouch strength.

:func:`build_vouching_network` generates the graph;
:func:`evaluate_network` scores each class's indirect trust.  The
bridge-sweep experiment lives in ``repro.experiments.vouching``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.trust.propagation import RecommendationGraph

__all__ = ["VouchingConfig", "VouchingNetwork", "build_vouching_network", "evaluate_network"]


@dataclass(frozen=True)
class VouchingConfig:
    """Shape of the vouching network.

    Attributes:
        n_veterans: raters the system has direct beta trust in.
        n_newcomers: honest raters known only through vouches.
        n_ring: members of the self-promotion ring.
        n_bridges: honest veterans fooled into vouching for the ring.
        veteran_trust_mean / veteran_trust_std: direct-trust
            distribution of the veterans.
        vouches_per_newcomer: how many veterans vouch for each newcomer.
        honest_vouch_mean / honest_vouch_std: score distribution of
            honest vouches for honest targets.
        bridge_vouch_score: the fooled vouch's score toward the ring.
        ring_vouch_score: ring members' mutual vouch score.
    """

    n_veterans: int = 10
    n_newcomers: int = 10
    n_ring: int = 5
    n_bridges: int = 0
    veteran_trust_mean: float = 0.9
    veteran_trust_std: float = 0.05
    vouches_per_newcomer: int = 2
    honest_vouch_mean: float = 0.85
    honest_vouch_std: float = 0.05
    bridge_vouch_score: float = 0.8
    ring_vouch_score: float = 1.0

    def __post_init__(self) -> None:
        if min(self.n_veterans, self.n_newcomers, self.n_ring) < 1:
            raise ConfigurationError("need at least one member of each class")
        if self.n_bridges > self.n_veterans:
            raise ConfigurationError(
                f"cannot have more bridges ({self.n_bridges}) than veterans "
                f"({self.n_veterans})"
            )
        if self.vouches_per_newcomer < 1:
            raise ConfigurationError("each newcomer needs at least one vouch")


@dataclass
class VouchingNetwork:
    """A built network with class membership for grading."""

    graph: RecommendationGraph
    veterans: List[int]
    newcomers: List[int]
    ring: List[int]
    bridges: List[int]


def build_vouching_network(
    config: VouchingConfig, rng: np.random.Generator
) -> VouchingNetwork:
    """Generate the graph: system -> veterans -> {newcomers, ring}."""
    graph = RecommendationGraph(max_path_length=3)
    veterans = list(range(config.n_veterans))
    newcomers = list(
        range(config.n_veterans, config.n_veterans + config.n_newcomers)
    )
    ring_start = config.n_veterans + config.n_newcomers
    ring = list(range(ring_start, ring_start + config.n_ring))

    for veteran in veterans:
        trust = float(
            np.clip(
                rng.normal(config.veteran_trust_mean, config.veteran_trust_std),
                0.0,
                1.0,
            )
        )
        graph.set_system_trust(veteran, trust)

    for newcomer in newcomers:
        sponsors = rng.choice(
            veterans,
            size=min(config.vouches_per_newcomer, len(veterans)),
            replace=False,
        )
        for sponsor in sponsors:
            score = float(
                np.clip(
                    rng.normal(config.honest_vouch_mean, config.honest_vouch_std),
                    0.0,
                    1.0,
                )
            )
            graph.add_recommendation(int(sponsor), newcomer, score)

    # The ring vouches for itself, densely.
    for member in ring:
        for other in ring:
            if member != other:
                graph.add_recommendation(member, other, config.ring_vouch_score)

    # Bridges: fooled veterans vouch for one ring member each.
    bridges = [int(v) for v in rng.choice(
        veterans, size=config.n_bridges, replace=False
    )] if config.n_bridges else []
    for index, bridge in enumerate(bridges):
        target = ring[index % len(ring)]
        graph.add_recommendation(bridge, target, config.bridge_vouch_score)

    return VouchingNetwork(
        graph=graph,
        veterans=veterans,
        newcomers=newcomers,
        ring=ring,
        bridges=bridges,
    )


def evaluate_network(network: VouchingNetwork) -> Dict[str, float]:
    """Mean indirect entropy trust per class."""
    graph = network.graph

    def mean_trust(ids: List[int]) -> float:
        if not ids:
            return 0.0
        return float(np.mean([graph.indirect_trust(i) for i in ids]))

    return {
        "veterans": mean_trust(network.veterans),
        "newcomers": mean_trust(network.newcomers),
        "ring": mean_trust(network.ring),
    }
