"""Collusion campaigns: when and how unfair ratings enter a trace.

A :class:`CollusionCampaign` bundles the paper's attack parameters
(Section III-A.2): an attack interval, the type 1 channel (influence a
fraction of regulars to shift their ratings) and the type 2 channel
(recruit outsiders who rate around a shifted mean and arrive as an
extra Poisson stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.errors import ConfigurationError
from repro.ratings.arrivals import poisson_arrival_times
from repro.ratings.models import Rating, fresh_rating_id
from repro.ratings.scales import RatingScale
from repro.ratings.stream import RatingStream

__all__ = ["CollusionCampaign"]


@dataclass(frozen=True)
class CollusionCampaign:
    """Parameters of one collusion campaign against one object.

    Attributes:
        start: first day of the attack interval (paper: A_start).
        end: last day of the attack interval, exclusive (paper: A_end).
        type1_bias: additive shift applied by influenced regulars
            (paper: biasshift1; 0 disables the channel).
        type1_power: fraction of regulars in the window who are
            influenced (paper: recruitpower1).
        type2_bias: mean shift of recruited outsiders (paper: biasshift2).
        type2_variance: rating variance of recruited outsiders
            (paper: badVar).
        type2_power: recruited arrival rate as a multiple of the honest
            arrival rate (paper: recruitpower2; 0 disables the channel).
    """

    start: float
    end: float
    type1_bias: float = 0.0
    type1_power: float = 0.0
    type2_bias: float = 0.0
    type2_variance: float = 0.0
    type2_power: float = 0.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"attack interval needs end > start, got [{self.start}, {self.end})"
            )
        for name in ("type1_power", "type2_power", "type2_variance"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if not 0.0 <= self.type1_power <= 1.0:
            raise ConfigurationError(
                f"type1_power is a fraction in [0, 1], got {self.type1_power}"
            )

    def covers(self, time: float) -> bool:
        """True when the given time falls inside the attack interval."""
        return self.start <= time < self.end

    # -- type 1: influence existing ratings --------------------------------

    def influence(
        self,
        stream: RatingStream,
        scale: RatingScale,
        rng: np.random.Generator,
    ) -> RatingStream:
        """Apply the type 1 channel to an honest stream.

        Each rating inside the attack interval is, with probability
        ``type1_power``, shifted by ``type1_bias`` (re-quantized and
        marked unfair).  Ratings outside the interval are untouched.

        Returns:
            A new stream; the input is not modified.
        """
        if self.type1_power == 0.0 or self.type1_bias == 0.0:
            return stream
        adjusted: List[Rating] = []
        for rating in stream:
            if self.covers(rating.time) and rng.uniform() < self.type1_power:
                adjusted.append(
                    Rating(
                        rating_id=rating.rating_id,
                        rater_id=rating.rater_id,
                        product_id=rating.product_id,
                        value=scale.quantize(rating.value + self.type1_bias),
                        time=rating.time,
                        unfair=True,
                    )
                )
            else:
                adjusted.append(rating)
        return RatingStream.from_ratings(adjusted)

    # -- type 2: recruit extra raters --------------------------------------

    def recruit(
        self,
        product_id: int,
        quality_at: Callable[[float], float],
        base_rate: float,
        scale: RatingScale,
        rng: np.random.Generator,
        rater_id_start: int,
    ) -> List[Rating]:
        """Generate the type 2 recruited rating stream.

        Args:
            product_id: the attacked object.
            quality_at: true quality as a function of time (recruited
                ratings are ``N(quality + type2_bias, type2_variance)``).
            base_rate: honest arrival rate; recruited arrivals run at
                ``base_rate * type2_power``.
            scale: rating scale for quantization.
            rng: numpy random generator.
            rater_id_start: first id to assign to recruited raters (each
                recruited rating comes from a fresh rater -- outsiders
                rate once).

        Returns:
            Time-sorted list of unfair ratings inside the interval.
        """
        if self.type2_power == 0.0:
            return []
        times = poisson_arrival_times(
            rate=base_rate * self.type2_power,
            start=self.start,
            end=self.end,
            rng=rng,
        )
        std = float(np.sqrt(self.type2_variance))
        ratings: List[Rating] = []
        for offset, t in enumerate(times):
            mean = quality_at(float(t)) + self.type2_bias
            raw = rng.normal(mean, std) if std > 0 else mean
            ratings.append(
                Rating(
                    rating_id=fresh_rating_id(),
                    rater_id=rater_id_start + offset,
                    product_id=product_id,
                    value=scale.quantize(float(raw)),
                    time=float(t),
                    unfair=True,
                )
            )
        return ratings
