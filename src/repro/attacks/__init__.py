"""Attack orchestration: collusion strategies, campaigns, trace injection."""

from repro.attacks.adaptive import (
    AdaptiveCampaign,
    CamouflageCampaign,
    DutyCycleCampaign,
    RampCampaign,
)
from repro.attacks.campaign import CollusionCampaign
from repro.attacks.injection import (
    TraceStatistics,
    estimate_trace_statistics,
    inject_campaign,
)
from repro.attacks.strategies import (
    LARGE_BIAS,
    MODERATE_BIAS,
    CollusionStrategy,
    required_colluders,
)

__all__ = [
    "AdaptiveCampaign",
    "CamouflageCampaign",
    "DutyCycleCampaign",
    "RampCampaign",
    "CollusionCampaign",
    "TraceStatistics",
    "estimate_trace_statistics",
    "inject_campaign",
    "LARGE_BIAS",
    "MODERATE_BIAS",
    "CollusionStrategy",
    "required_colluders",
]
