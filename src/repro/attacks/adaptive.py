"""Adaptive collusion strategies that target the AR detector itself.

The paper's stated future work is to "study the possible attacks to the
proposed solutions".  The AR detector keys on a statistical fingerprint
-- recruited ratings are *tighter* and *shifted* relative to honest
noise, making attack windows more predictable -- so an informed
adversary can try to erase that fingerprint:

* :class:`CamouflageCampaign` -- recruited ratings copy the honest
  variance instead of clustering tightly (``badVar = goodVar``).  The
  variance fingerprint disappears; only the mean shift remains.
* :class:`RampCampaign` -- the bias fades in linearly across the attack
  interval, avoiding an abrupt statistical change at the campaign
  boundary.
* :class:`DutyCycleCampaign` -- the campaign runs in short bursts with
  quiet gaps, so no analysis window is fully contaminated.

All three reshape the *type 2* recruitment channel of a
:class:`~repro.attacks.campaign.CollusionCampaign`; their cost/benefit
(detector evasion vs. aggregate damage) is quantified by
``repro.experiments.adaptive_attacks`` and its bench.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.attacks.campaign import CollusionCampaign
from repro.errors import ConfigurationError
from repro.ratings.arrivals import poisson_arrival_times
from repro.ratings.models import Rating, fresh_rating_id
from repro.ratings.scales import RatingScale
from repro.ratings.stream import RatingStream

__all__ = [
    "AdaptiveCampaign",
    "CamouflageCampaign",
    "RampCampaign",
    "DutyCycleCampaign",
]


@dataclass(frozen=True)
class AdaptiveCampaign(abc.ABC):
    """A detector-aware reshaping of the type 2 recruitment channel.

    Attributes:
        start: attack interval start (days).
        end: attack interval end, exclusive.
        bias: target mean shift of recruited ratings.
        power: recruited arrival rate as a multiple of the honest rate.
    """

    start: float
    end: float
    bias: float = 0.15
    power: float = 1.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"attack interval needs end > start, got [{self.start}, {self.end})"
            )
        if self.power < 0:
            raise ConfigurationError(f"power must be >= 0, got {self.power}")

    @abc.abstractmethod
    def _rating_value(
        self, time: float, quality: float, rng: np.random.Generator
    ) -> float:
        """Raw recruited opinion at the given time."""

    def _keep_arrival(self, time: float, rng: np.random.Generator) -> bool:
        """Hook: thin the recruited arrival stream (duty cycling)."""
        return True

    def apply(
        self,
        honest: RatingStream,
        quality_at: Callable[[float], float],
        base_rate: float,
        scale: RatingScale,
        rng: np.random.Generator,
    ) -> RatingStream:
        """Merge this campaign's recruited ratings into an honest stream.

        Args:
            honest: the honest trace (unmodified).
            quality_at: true quality as a function of time.
            base_rate: honest arrival rate (recruited arrivals run at
                ``base_rate * power`` before duty-cycle thinning).
            scale: rating scale for quantization.
            rng: numpy random generator.
        """
        times = poisson_arrival_times(
            rate=base_rate * self.power, start=self.start, end=self.end, rng=rng
        )
        rater_id_start = (
            int(honest.rater_ids.max()) + 1 if len(honest) else 0
        )
        recruited: List[Rating] = []
        for offset, t in enumerate(times):
            if not self._keep_arrival(float(t), rng):
                continue
            raw = self._rating_value(float(t), quality_at(float(t)), rng)
            recruited.append(
                Rating(
                    rating_id=fresh_rating_id(),
                    rater_id=rater_id_start + offset,
                    product_id=honest[0].product_id if len(honest) else 0,
                    value=scale.quantize(float(raw)),
                    time=float(t),
                    unfair=True,
                )
            )
        return honest.merge(RatingStream.from_ratings(recruited))

    @classmethod
    def from_baseline(
        cls, campaign: CollusionCampaign, **extra
    ) -> "AdaptiveCampaign":
        """Build from a baseline campaign's interval/bias/power."""
        return cls(
            start=campaign.start,
            end=campaign.end,
            bias=campaign.type2_bias,
            power=campaign.type2_power,
            **extra,
        )


@dataclass(frozen=True)
class CamouflageCampaign(AdaptiveCampaign):
    """Recruited ratings mimic the honest noise variance.

    Args:
        camouflage_variance: variance of recruited ratings; set it to
            the scenario's ``goodVar`` to erase the tightness
            fingerprint entirely.
    """

    camouflage_variance: float = 0.2

    def _rating_value(self, time, quality, rng):
        std = float(np.sqrt(self.camouflage_variance))
        return rng.normal(quality + self.bias, std)


@dataclass(frozen=True)
class RampCampaign(AdaptiveCampaign):
    """The bias fades in linearly from 0 to ``bias`` across the interval.

    Args:
        bad_variance: recruited rating variance (the classic tight
            default, so only the onset shape changes).
    """

    bad_variance: float = 0.02

    def _rating_value(self, time, quality, rng):
        progress = (time - self.start) / (self.end - self.start)
        std = float(np.sqrt(self.bad_variance))
        return rng.normal(quality + progress * self.bias, std)


@dataclass(frozen=True)
class DutyCycleCampaign(AdaptiveCampaign):
    """The campaign runs in bursts: ``on_days`` active, ``off_days`` quiet.

    Args:
        on_days: burst length.
        off_days: gap length.
        bad_variance: recruited rating variance during bursts.
    """

    on_days: float = 2.0
    off_days: float = 2.0
    bad_variance: float = 0.02

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.on_days <= 0 or self.off_days < 0:
            raise ConfigurationError(
                "need on_days > 0 and off_days >= 0, got "
                f"{self.on_days}/{self.off_days}"
            )

    def _keep_arrival(self, time, rng):
        phase = (time - self.start) % (self.on_days + self.off_days)
        return phase < self.on_days

    def _rating_value(self, time, quality, rng):
        std = float(np.sqrt(self.bad_variance))
        return rng.normal(quality + self.bias, std)
