"""Inject collaborative ratings into an existing (real) trace.

This reproduces the paper's Netflix experiment recipe: take a real
rating trace, pick an attack interval, shift a fraction of the existing
ratings (type 1) and add a recruited Poisson stream whose mean tracks
the trace's own local average (type 2).  The trace's empirical
statistics -- local mean, variance, arrival rate -- parameterize the
attack, exactly as the paper sets ``badVar = 0.25 * goodVar`` from the
original data's variance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.campaign import CollusionCampaign
from repro.errors import ConfigurationError, EmptyWindowError
from repro.ratings.scales import RatingScale
from repro.ratings.stream import RatingStream

__all__ = ["TraceStatistics", "estimate_trace_statistics", "inject_campaign"]


@dataclass(frozen=True)
class TraceStatistics:
    """Empirical statistics of a rating trace.

    Attributes:
        mean: overall mean rating (the stand-in for true quality).
        variance: rating variance (the paper's goodVar for real data).
        arrival_rate: average ratings per day over the trace span.
        span: (first_time, last_time) of the trace.
    """

    mean: float
    variance: float
    arrival_rate: float
    span: tuple


def estimate_trace_statistics(stream: RatingStream) -> TraceStatistics:
    """Estimate the mean / variance / arrival rate of a trace."""
    if len(stream) < 2:
        raise EmptyWindowError("need at least 2 ratings to estimate a trace")
    values = stream.values
    times = stream.times
    duration = float(times[-1] - times[0])
    rate = len(stream) / duration if duration > 0 else float(len(stream))
    return TraceStatistics(
        mean=float(np.mean(values)),
        variance=float(np.var(values)),
        arrival_rate=rate,
        span=(float(times[0]), float(times[-1])),
    )


def _local_mean(stream: RatingStream, start: float, end: float) -> float:
    """Mean of the trace's ratings inside a window (fallback: overall)."""
    window = stream.between(start, end)
    return window.mean() if len(window) else stream.mean()


def inject_campaign(
    stream: RatingStream,
    campaign: CollusionCampaign,
    scale: RatingScale,
    rng: np.random.Generator,
    rater_id_start: int | None = None,
) -> RatingStream:
    """Return ``stream`` with the campaign's unfair ratings injected.

    Type 1 influence rewrites a ``type1_power`` fraction of the existing
    ratings inside the attack window (shift ``type1_bias``).  Type 2
    recruitment adds new ratings around the trace's local mean plus
    ``type2_bias`` at ``arrival_rate * type2_power``.

    Args:
        stream: the original trace (not modified).
        campaign: attack parameters; ``type2_variance`` is used as
            given -- compute it from the trace (e.g. ``0.25 * variance``)
            before building the campaign if you want the paper's recipe.
        scale: scale for quantizing injected ratings.
        rng: numpy random generator.
        rater_id_start: first rater id for recruited outsiders; defaults
            to one above the trace's largest rater id.

    Returns:
        A new merged, time-sorted stream with ``unfair`` ground truth set
        on every injected or influenced rating.
    """
    if len(stream) == 0:
        raise EmptyWindowError("cannot inject into an empty trace")
    stats = estimate_trace_statistics(stream)
    first, last = stats.span
    if campaign.end <= first or campaign.start >= last:
        raise ConfigurationError(
            f"attack interval [{campaign.start}, {campaign.end}) lies outside "
            f"the trace span [{first}, {last}]"
        )
    if rater_id_start is None:
        rater_id_start = int(stream.rater_ids.max()) + 1

    influenced = campaign.influence(stream, scale, rng)
    local_quality = _local_mean(stream, campaign.start, campaign.end)
    product_id = int(stream.product_ids[0])
    recruited = campaign.recruit(
        product_id=product_id,
        quality_at=lambda _t: local_quality,
        base_rate=stats.arrival_rate,
        scale=scale,
        rng=rng,
        rater_id_start=rater_id_start,
    )
    return influenced.merge(RatingStream.from_ratings(recruited))
