"""Collusion strategies (Section II-B).

Given a target aggregate shift, the owner of an object can either
recruit *few* raters giving *extreme* ratings (large bias) or *many*
raters giving *moderate* ratings (small bias).  The paper's equation (1)
gives the break-even size: to move a simple average from quality ``q``
to ``q + delta`` with ratings of value ``r``, the colluders need

    M > delta * N / (r - q - delta)

honest-rater-equivalents.  These helpers compute that trade-off and
package the two named strategies; the detection story of the paper is
that existing filters catch the large-bias strategy while only the AR
detector catches the moderate-bias one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CollusionStrategy", "LARGE_BIAS", "MODERATE_BIAS", "required_colluders"]


def required_colluders(
    n_honest: int, quality: float, target: float, collusion_value: float
) -> float:
    """Minimum colluder count to move a simple average past ``target``.

    Args:
        n_honest: number of honest ratings ``N``.
        quality: honest mean ``q`` (the true quality).
        target: aggregate the colluders want to exceed.
        collusion_value: the rating value ``r`` each colluder submits.

    Returns:
        The real-valued bound ``M``; the attack needs strictly more than
        this many colluders.  ``inf`` when the collusion value cannot
        reach the target at any size.
    """
    if n_honest < 0:
        raise ConfigurationError(f"n_honest must be >= 0, got {n_honest}")
    delta = target - quality
    headroom = collusion_value - target
    if headroom <= 0:
        return float("inf")
    return delta * n_honest / headroom


@dataclass(frozen=True)
class CollusionStrategy:
    """A named (bias magnitude, variance) collusion profile.

    Attributes:
        name: strategy label.
        bias_shift: additive shift applied to the true quality.
        bad_variance: variance of recruited (type 2) ratings.
        detectable_by_filters: whether classic quantile filters are
            expected to catch it (documentation of the paper's claim,
            exercised by the ablation benches).
    """

    name: str
    bias_shift: float
    bad_variance: float
    detectable_by_filters: bool

    def __post_init__(self) -> None:
        if self.bad_variance < 0:
            raise ConfigurationError(
                f"bad_variance must be >= 0, got {self.bad_variance}"
            )


#: Strategy 1 -- few raters, extreme ratings (rating 5 on a 1-5 scale).
LARGE_BIAS = CollusionStrategy(
    name="large_bias",
    bias_shift=0.5,
    bad_variance=0.02,
    detectable_by_filters=True,
)

#: Strategy 2 -- many raters, ratings close to the majority.  This is
#: the strategy the paper's detector targets.
MODERATE_BIAS = CollusionStrategy(
    name="moderate_bias",
    bias_shift=0.15,
    bad_variance=0.02,
    detectable_by_filters=False,
)
