"""Individual (non-collaborative) unfair raters.

Section II-B's first class: "an individual rater provides unfairly
high or low ratings without collaborating with other raters.  This
type of rating may result from raters' personality/habit (dispositional
trust), carelessness, or randomness in rating behavior."

Two behaviours:

* :class:`DispositionalRater` -- a habitual optimist or grouch: every
  rating is shifted by a personal bias drawn once at construction.
* :class:`RandomRater` -- rates uniformly at random, ignoring quality.

The paper argues these cause much less damage than collaborative
raters: individual highs and lows cancel in aggregate, and their
number is statistically small.  ``repro.experiments.individual_unfair``
quantifies exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.raters.base import GaussianOpinionMixin, Rater
from repro.ratings.models import RaterClass
from repro.ratings.scales import RatingScale

__all__ = ["DispositionalRater", "RandomRater"]


class DispositionalRater(GaussianOpinionMixin, Rater):
    """An honest-noise rater with a fixed personal bias.

    Args:
        rater_id: unique id.
        scale: rating scale.
        variance: honest noise variance around the biased mean.
        disposition: the personal shift; positive for habitual
            optimists, negative for grouches.  Draw it from a zero-mean
            distribution across the population to model the paper's
            "individual high and low ratings cancel each other".
    """

    rater_class = RaterClass.INDIVIDUAL_UNFAIR

    def __init__(
        self,
        rater_id: int,
        scale: RatingScale,
        variance: float,
        disposition: float,
    ) -> None:
        Rater.__init__(self, rater_id, scale)
        GaussianOpinionMixin.__init__(self, variance=variance, bias=disposition)
        if not -1.0 <= disposition <= 1.0:
            raise ConfigurationError(
                f"disposition must lie in [-1, 1], got {disposition}"
            )
        self.disposition = float(disposition)

    def opine(self, quality: float, rng: np.random.Generator) -> float:
        return self.gaussian_opinion(quality, rng)


class RandomRater(Rater):
    """Rates uniformly at random over the scale, ignoring quality."""

    rater_class = RaterClass.CARELESS

    def __init__(self, rater_id: int, scale: RatingScale) -> None:
        super().__init__(rater_id, scale)
        self.variance = float(np.var(scale.values))

    def opine(self, quality: float, rng: np.random.Generator) -> float:
        return float(rng.choice(self.scale.values))
