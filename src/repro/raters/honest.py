"""Honest rater behaviours.

Reliable and careless raters are both honest -- their ratings are
Gaussian around the true quality -- and differ only in noise variance
(Section IV-A: goodVar = 0.2, carelessVar = 0.3).  Careless raters'
wider noise makes some of their ratings land outside the majority band,
which is what produces the small false-alarm rate of the beta filter on
honest users.
"""

from __future__ import annotations

import numpy as np

from repro.raters.base import GaussianOpinionMixin, Rater
from repro.ratings.models import RaterClass
from repro.ratings.scales import RatingScale

__all__ = ["ReliableRater", "CarelessRater", "HonestRater"]


class HonestRater(GaussianOpinionMixin, Rater):
    """Gaussian honest rater: opinion ~ N(quality, variance)."""

    rater_class = RaterClass.RELIABLE

    def __init__(self, rater_id: int, scale: RatingScale, variance: float) -> None:
        Rater.__init__(self, rater_id, scale)
        GaussianOpinionMixin.__init__(self, variance=variance)

    def opine(self, quality: float, rng: np.random.Generator) -> float:
        return self.gaussian_opinion(quality, rng)


class ReliableRater(HonestRater):
    """Honest rater with the scenario's baseline noise (goodVar)."""

    rater_class = RaterClass.RELIABLE


class CarelessRater(HonestRater):
    """Honest but noisy rater (carelessVar > goodVar)."""

    rater_class = RaterClass.CARELESS
