"""Rater behaviour interface.

A rater turns the true quality of a product (at rating time) into a
rating value.  Behaviour models are pure given an explicit numpy
generator, so scenarios are reproducible from a single seed.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError
from repro.ratings.models import RaterClass, RaterProfile
from repro.ratings.scales import RatingScale

__all__ = ["Rater", "GaussianOpinionMixin"]


class Rater(abc.ABC):
    """Abstract rater behaviour.

    Args:
        rater_id: unique id of this rater.
        scale: rating scale used to quantize raw opinions.
    """

    rater_class: RaterClass

    def __init__(self, rater_id: int, scale: RatingScale) -> None:
        self.rater_id = rater_id
        self.scale = scale

    @abc.abstractmethod
    def opine(self, quality: float, rng: np.random.Generator) -> float:
        """Raw (unquantized) opinion about an object of the given quality."""

    def rate(self, quality: float, rng: np.random.Generator) -> float:
        """Quantized rating for an object of the given quality."""
        return self.scale.quantize(self.opine(quality, rng))

    @property
    def is_honest(self) -> bool:
        return self.rater_class.is_honest

    def profile(self) -> RaterProfile:
        """Static profile record for the rating store."""
        return RaterProfile(
            rater_id=self.rater_id,
            rater_class=self.rater_class,
            variance=getattr(self, "variance", 0.0),
        )


class GaussianOpinionMixin:
    """Shared Gaussian opinion draw: ``N(quality + bias, variance)``.

    The paper specifies rating *variances* (goodVar = 0.2 etc.), so the
    draw uses ``sqrt(variance)`` as the standard deviation and relies on
    the scale's clipping to keep ratings legal.
    """

    def __init__(self, variance: float, bias: float = 0.0) -> None:
        if variance < 0:
            raise ConfigurationError(f"variance must be >= 0, got {variance}")
        self.variance = float(variance)
        self.bias = float(bias)

    def gaussian_opinion(self, quality: float, rng: np.random.Generator) -> float:
        std = float(np.sqrt(self.variance))
        return float(rng.normal(quality + self.bias, std)) if std > 0 else quality + self.bias
