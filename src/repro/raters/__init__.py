"""Rater behaviour models: honest, collaborative, and mode-switching."""

from repro.raters.base import GaussianOpinionMixin, Rater
from repro.raters.collaborative import (
    PotentialCollaborativeRater,
    Type1CollaborativeRater,
    Type2CollaborativeRater,
)
from repro.raters.individual import DispositionalRater, RandomRater
from repro.raters.honest import CarelessRater, HonestRater, ReliableRater

__all__ = [
    "GaussianOpinionMixin",
    "Rater",
    "PotentialCollaborativeRater",
    "Type1CollaborativeRater",
    "Type2CollaborativeRater",
    "CarelessRater",
    "DispositionalRater",
    "RandomRater",
    "HonestRater",
    "ReliableRater",
]
