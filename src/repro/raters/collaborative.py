"""Collaborative (unfair) rater behaviours.

Section III-A.2 defines two recruitment channels for an object's owner:

* **Type 1** -- influence raters who were going to rate anyway: the
  rater's original honest opinion is shifted by ``bias_shift`` (paper:
  biasshift1, applied to recruitpower1 of the regulars).
* **Type 2** -- recruit raters who otherwise would not have rated: they
  rate ``N(quality + bias_shift, bad_variance)`` and arrive as an extra
  Poisson stream (paper: biasshift2, badVar, recruitpower2).

Section IV adds the **potential collaborative (PC)** rater: it behaves
as a reliable rater until recruited, then as a type 2 rater for the
campaign's duration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.raters.base import GaussianOpinionMixin, Rater
from repro.ratings.models import RaterClass
from repro.ratings.scales import RatingScale

__all__ = [
    "Type1CollaborativeRater",
    "Type2CollaborativeRater",
    "PotentialCollaborativeRater",
]


class Type1CollaborativeRater(GaussianOpinionMixin, Rater):
    """An influenced regular: honest opinion plus a constant shift.

    Args:
        rater_id: unique id.
        scale: rating scale.
        variance: the rater's *honest* noise variance.
        bias_shift: additive shift applied while influenced
            (positive to boost, negative to downgrade).
    """

    rater_class = RaterClass.TYPE1_COLLABORATIVE

    def __init__(
        self,
        rater_id: int,
        scale: RatingScale,
        variance: float,
        bias_shift: float,
    ) -> None:
        Rater.__init__(self, rater_id, scale)
        GaussianOpinionMixin.__init__(self, variance=variance, bias=0.0)
        self.bias_shift = float(bias_shift)

    def opine(self, quality: float, rng: np.random.Generator) -> float:
        return self.gaussian_opinion(quality, rng) + self.bias_shift

    def honest_opinion(self, quality: float, rng: np.random.Generator) -> float:
        """The opinion this rater would have given without influence."""
        return self.gaussian_opinion(quality, rng)


class Type2CollaborativeRater(GaussianOpinionMixin, Rater):
    """A recruited outsider: ``N(quality + bias_shift, bad_variance)``.

    The tiny ``bad_variance`` (paper: 0.02 vs goodVar 0.2) is the
    statistical fingerprint the AR detector exploits: recruited ratings
    cluster tightly around the shifted mean, making the window's signal
    far more predictable than honest white noise.
    """

    rater_class = RaterClass.TYPE2_COLLABORATIVE

    def __init__(
        self,
        rater_id: int,
        scale: RatingScale,
        bias_shift: float,
        bad_variance: float,
    ) -> None:
        Rater.__init__(self, rater_id, scale)
        GaussianOpinionMixin.__init__(self, variance=bad_variance, bias=bias_shift)

    def opine(self, quality: float, rng: np.random.Generator) -> float:
        return self.gaussian_opinion(quality, rng)


class PotentialCollaborativeRater(GaussianOpinionMixin, Rater):
    """Section IV's mode-switching rater.

    Behaves as a reliable rater (``N(quality, honest_variance)``) while
    not recruited; behaves as a type 2 rater
    (``N(quality + bias_shift, bad_variance)``) while recruited.
    Recruitment state is managed externally by the attack campaign via
    :attr:`recruited`.
    """

    rater_class = RaterClass.POTENTIAL_COLLABORATIVE

    def __init__(
        self,
        rater_id: int,
        scale: RatingScale,
        honest_variance: float,
        bias_shift: float,
        bad_variance: float,
    ) -> None:
        Rater.__init__(self, rater_id, scale)
        GaussianOpinionMixin.__init__(self, variance=honest_variance, bias=0.0)
        if bad_variance < 0:
            raise ConfigurationError(f"bad_variance must be >= 0, got {bad_variance}")
        self.bias_shift = float(bias_shift)
        self.bad_variance = float(bad_variance)
        self.recruited = False

    def opine(self, quality: float, rng: np.random.Generator) -> float:
        if not self.recruited:
            return self.gaussian_opinion(quality, rng)
        std = float(np.sqrt(self.bad_variance))
        mean = quality + self.bias_shift
        return float(rng.normal(mean, std)) if std > 0 else mean
