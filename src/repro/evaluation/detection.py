"""Detection metrics: window-, rating-, and rater-level.

Three granularities of the same question -- did we find the campaign?

* **window-level** (the 500-run illustrative experiment): did a
  suspicious window overlap the true attack interval, and did clean
  windows stay quiet?
* **rating-level** (Fig. 9): what fraction of ground-truth unfair
  ratings were flagged, and what fraction of fair ratings were flagged
  by mistake?
* **rater-level** (Figs. 7-8): which raters fell below the trust
  detection threshold, graded against their ground-truth class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Set

from repro.detectors.base import WindowVerdict
from repro.ratings.models import RaterClass
from repro.ratings.stream import RatingStream

__all__ = [
    "ConfusionCounts",
    "window_confusion",
    "interval_detected",
    "any_suspicious",
    "rating_detection",
    "rater_detection",
]


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary-detection confusion counts with derived ratios."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    @property
    def detection_ratio(self) -> float:
        """TP / (TP + FN); 0.0 when there are no positives to detect."""
        positives = self.true_positives + self.false_negatives
        return self.true_positives / positives if positives else 0.0

    @property
    def false_alarm_ratio(self) -> float:
        """FP / (FP + TN); 0.0 when there are no negatives."""
        negatives = self.false_positives + self.true_negatives
        return self.false_positives / negatives if negatives else 0.0

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 0.0

    def merged(self, other: "ConfusionCounts") -> "ConfusionCounts":
        """Pool counts from another confusion table."""
        return ConfusionCounts(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            true_negatives=self.true_negatives + other.true_negatives,
            false_negatives=self.false_negatives + other.false_negatives,
        )


def _overlaps(verdict: WindowVerdict, start: float, end: float) -> bool:
    return verdict.window.start_time < end and verdict.window.end_time > start


def window_confusion(
    verdicts: Sequence[WindowVerdict], attack_start: float, attack_end: float
) -> ConfusionCounts:
    """Grade window verdicts against a known attack interval.

    A window's ground truth is positive when it overlaps the attack
    interval at all.
    """
    tp = fp = tn = fn = 0
    for verdict in verdicts:
        attacked = _overlaps(verdict, attack_start, attack_end)
        if attacked and verdict.suspicious:
            tp += 1
        elif attacked:
            fn += 1
        elif verdict.suspicious:
            fp += 1
        else:
            tn += 1
    return ConfusionCounts(tp, fp, tn, fn)


def interval_detected(
    verdicts: Sequence[WindowVerdict], attack_start: float, attack_end: float
) -> bool:
    """True when at least one suspicious window overlaps the attack."""
    return any(
        v.suspicious and _overlaps(v, attack_start, attack_end) for v in verdicts
    )


def any_suspicious(verdicts: Sequence[WindowVerdict]) -> bool:
    """True when any window at all was flagged (honest-run false alarm)."""
    return any(v.suspicious for v in verdicts)


def rating_detection(
    stream: RatingStream, flagged_rating_ids: Iterable[int]
) -> ConfusionCounts:
    """Grade flagged ratings against the stream's ground-truth labels."""
    flagged: Set[int] = set(flagged_rating_ids)
    tp = fp = tn = fn = 0
    for rating in stream:
        if rating.unfair and rating.rating_id in flagged:
            tp += 1
        elif rating.unfair:
            fn += 1
        elif rating.rating_id in flagged:
            fp += 1
        else:
            tn += 1
    return ConfusionCounts(tp, fp, tn, fn)


@dataclass(frozen=True)
class RaterDetectionStats:
    """Per-class rater detection outcome.

    Attributes:
        detection_rate: fraction of dishonest-class raters flagged.
        false_alarm_rates: rater class -> fraction of that honest class
            flagged by mistake.
    """

    detection_rate: float
    false_alarm_rates: Dict[RaterClass, float]


def rater_detection(
    trust_table: Mapping[int, float],
    classes: Mapping[int, RaterClass],
    threshold: float = 0.5,
    dishonest_class: RaterClass = RaterClass.POTENTIAL_COLLABORATIVE,
) -> RaterDetectionStats:
    """Grade trust-threshold rater detection against ground-truth classes.

    Args:
        trust_table: rater_id -> trust value.
        classes: rater_id -> ground-truth class.
        threshold: trust below this flags a rater (paper: 0.5).
        dishonest_class: the class counted as the detection target.
    """
    per_class_total: Dict[RaterClass, int] = {}
    per_class_flagged: Dict[RaterClass, int] = {}
    for rater_id, rater_class in classes.items():
        per_class_total[rater_class] = per_class_total.get(rater_class, 0) + 1
        if trust_table.get(rater_id, 0.5) < threshold:
            per_class_flagged[rater_class] = per_class_flagged.get(rater_class, 0) + 1

    def rate(cls: RaterClass) -> float:
        total = per_class_total.get(cls, 0)
        return per_class_flagged.get(cls, 0) / total if total else 0.0

    false_alarms = {
        cls: rate(cls)
        for cls in per_class_total
        if cls != dishonest_class
    }
    return RaterDetectionStats(
        detection_rate=rate(dishonest_class), false_alarm_rates=false_alarms
    )
