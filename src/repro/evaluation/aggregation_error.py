"""Aggregation-accuracy metrics (Figs. 10-12).

The aggregation benches score each method by how far its per-product
aggregate lands from the product's true quality; the paper's headline
is the *largest* deviation over the dishonest products (0.02 for the
proposed scheme vs ~0.1 for the baselines in Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["AggregationErrors", "aggregation_errors"]


@dataclass(frozen=True)
class AggregationErrors:
    """Deviation statistics of aggregated ratings from true qualities."""

    mean_abs_error: float
    max_abs_error: float
    mean_signed_error: float
    n_products: int


def aggregation_errors(
    aggregated: Mapping[int, float],
    true_quality: Mapping[int, float],
    product_ids: Sequence[int] | None = None,
) -> AggregationErrors:
    """Score aggregated ratings against ground-truth qualities.

    Args:
        aggregated: product_id -> aggregated rating.
        true_quality: product_id -> true quality.
        product_ids: restrict scoring to these products (e.g. only the
            dishonest ones); defaults to the intersection of the maps.
    """
    if product_ids is None:
        product_ids = sorted(set(aggregated) & set(true_quality))
    if not product_ids:
        raise ConfigurationError("no products to score")
    diffs = np.array(
        [aggregated[pid] - true_quality[pid] for pid in product_ids], dtype=float
    )
    return AggregationErrors(
        mean_abs_error=float(np.mean(np.abs(diffs))),
        max_abs_error=float(np.max(np.abs(diffs))),
        mean_signed_error=float(np.mean(diffs)),
        n_products=len(product_ids),
    )
