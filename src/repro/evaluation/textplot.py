"""Terminal plots: sparklines and labeled line charts.

The experiment reports are consumed in terminals and bench logs, so the
library renders its series as unicode text.  Two primitives:

* :func:`sparkline` -- a one-line eight-level bar strip, for embedding
  a series inside a table row;
* :func:`line_chart` -- a small multi-row chart with a y-axis, for the
  trust-trajectory and detection-over-time reports.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["sparkline", "line_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_MARKERS = "ox+*#@%&"


def sparkline(
    values: Sequence[float],
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render a series as a one-line bar strip.

    Args:
        values: the series (at least one value).
        lo: bottom of the scale; defaults to the series minimum.
        hi: top of the scale; defaults to the series maximum.
    """
    series = np.asarray(values, dtype=float)
    if series.size == 0:
        raise ConfigurationError("cannot sparkline an empty series")
    lo = float(np.min(series)) if lo is None else float(lo)
    hi = float(np.max(series)) if hi is None else float(hi)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * series.size
    clipped = np.clip((series - lo) / span, 0.0, 1.0)
    return "".join(_BLOCKS[int(min(7, v * 7.999))] for v in clipped)


def line_chart(
    series: Mapping[str, Sequence[float]],
    height: int = 8,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render one or more aligned series as a small text chart.

    Args:
        series: label -> values; all series must share a length, and
            each label is assigned a marker character shown in the
            legend.
        height: number of chart rows.
        y_min / y_max: axis limits; default to the pooled data range.

    Returns:
        A multi-line string: chart rows with y-axis labels, an x-axis,
        and a marker legend.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if height < 2:
        raise ConfigurationError(f"height must be >= 2, got {height}")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ConfigurationError(f"series lengths differ: {sorted(lengths)}")
    (width,) = lengths
    if width == 0:
        raise ConfigurationError("series are empty")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(f"at most {len(_MARKERS)} series supported")

    pooled = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    lo = float(np.min(pooled)) if y_min is None else float(y_min)
    hi = float(np.max(pooled)) if y_max is None else float(y_max)
    if hi <= lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: Dict[str, str] = {}
    for marker, (label, values) in zip(_MARKERS, series.items()):
        markers[label] = marker
        for x, value in enumerate(np.asarray(values, dtype=float)):
            frac = (float(value) - lo) / (hi - lo)
            row = int(round((1.0 - np.clip(frac, 0.0, 1.0)) * (height - 1)))
            grid[row][x] = marker

    lines = []
    for row_index, row in enumerate(grid):
        frac = 1.0 - row_index / (height - 1)
        y_value = lo + frac * (hi - lo)
        lines.append(f"{y_value:7.2f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    legend = "  ".join(f"{marker}={label}" for label, marker in markers.items())
    lines.append(" " * 9 + legend)
    return "\n".join(lines)
