"""ROC sweeps over detector thresholds.

The paper fixes one model-error threshold; the ROC utilities sweep it
so the benches can show the full detection/false-alarm trade-off and
justify the calibrated operating point (see DESIGN.md: our normalized
error has a different scale than Matlab's ``covm``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "RocPoint",
    "RocCurve",
    "roc_from_scores",
    "operating_point",
    "calibrate_threshold",
]


@dataclass(frozen=True)
class RocPoint:
    """One threshold's (false-alarm, detection) pair."""

    threshold: float
    detection_ratio: float
    false_alarm_ratio: float


@dataclass(frozen=True)
class RocCurve:
    """A swept ROC curve."""

    points: tuple

    @property
    def thresholds(self) -> np.ndarray:
        return np.array([p.threshold for p in self.points])

    @property
    def detections(self) -> np.ndarray:
        return np.array([p.detection_ratio for p in self.points])

    @property
    def false_alarms(self) -> np.ndarray:
        return np.array([p.false_alarm_ratio for p in self.points])

    def auc(self) -> float:
        """Area under the curve via trapezoidal integration over FA.

        Points are ordered by (false alarm, detection) so vertical
        segments (many detections at one false-alarm level) contribute
        no spurious area.
        """
        order = np.lexsort((self.detections, self.false_alarms))
        fa = np.concatenate(([0.0], self.false_alarms[order], [1.0]))
        det = np.concatenate(([0.0], self.detections[order], [1.0]))
        return float(np.trapezoid(det, fa))


def roc_from_scores(
    attack_scores: Sequence[float],
    honest_scores: Sequence[float],
    thresholds: Sequence[float] | None = None,
    smaller_is_suspicious: bool = True,
) -> RocCurve:
    """Build an ROC curve from per-run statistic minima.

    Args:
        attack_scores: per-attacked-run statistic (e.g. the minimum
            windowed model error of each attacked trace).
        honest_scores: per-honest-run statistic.
        thresholds: thresholds to sweep; defaults to the pooled unique
            scores plus outer sentinels.
        smaller_is_suspicious: True for model error (a *drop* flags the
            attack); False for statistics where larger means suspicious.

    Returns:
        A :class:`RocCurve` with one point per threshold.
    """
    attack = np.asarray(attack_scores, dtype=float)
    honest = np.asarray(honest_scores, dtype=float)
    if attack.size == 0 or honest.size == 0:
        raise ConfigurationError("ROC needs at least one score of each kind")
    if thresholds is None:
        pooled = np.unique(np.concatenate((attack, honest)))
        lo, hi = pooled[0], pooled[-1]
        pad = 0.05 * (hi - lo) if hi > lo else 1.0
        thresholds = np.linspace(lo - pad, hi + pad, min(101, pooled.size + 2))
    points: List[RocPoint] = []
    for threshold in thresholds:
        if smaller_is_suspicious:
            det = float(np.mean(attack < threshold))
            fa = float(np.mean(honest < threshold))
        else:
            det = float(np.mean(attack > threshold))
            fa = float(np.mean(honest > threshold))
        points.append(
            RocPoint(
                threshold=float(threshold),
                detection_ratio=det,
                false_alarm_ratio=fa,
            )
        )
    return RocCurve(points=tuple(points))


def operating_point(curve: RocCurve, max_false_alarm: float) -> RocPoint:
    """Best point with false alarms at or below the given budget.

    Picks the point with the highest detection ratio among those whose
    false-alarm ratio does not exceed ``max_false_alarm``; ties break
    toward fewer false alarms.
    """
    if not 0.0 <= max_false_alarm <= 1.0:
        raise ConfigurationError(
            f"max_false_alarm must lie in [0, 1], got {max_false_alarm}"
        )
    eligible = [p for p in curve.points if p.false_alarm_ratio <= max_false_alarm]
    if not eligible:
        # Nothing meets the budget; return the quietest point available.
        return min(curve.points, key=lambda p: p.false_alarm_ratio)
    return max(eligible, key=lambda p: (p.detection_ratio, -p.false_alarm_ratio))


def calibrate_threshold(
    honest_scores: Sequence[float], quantile: float = 0.05
) -> float:
    """Threshold at a quantile of honest-run scores.

    Setting the model-error threshold at the q-quantile of honest
    windows' errors bounds the per-run false-alarm probability near q.
    """
    if not 0.0 < quantile < 1.0:
        raise ConfigurationError(f"quantile must lie in (0, 1), got {quantile}")
    honest = np.asarray(honest_scores, dtype=float)
    if honest.size == 0:
        raise ConfigurationError("cannot calibrate on zero honest scores")
    return float(np.quantile(honest, quantile))
