"""Evaluation: detection metrics, ROC sweeps, Monte-Carlo driver."""

from repro.evaluation.aggregation_error import AggregationErrors, aggregation_errors
from repro.evaluation.detection import (
    ConfusionCounts,
    RaterDetectionStats,
    any_suspicious,
    interval_detected,
    rater_detection,
    rating_detection,
    window_confusion,
)
from repro.evaluation.montecarlo import MonteCarloResult, Summary, monte_carlo, summarize
from repro.evaluation.textplot import line_chart, sparkline
from repro.evaluation.roc import (
    RocCurve,
    RocPoint,
    calibrate_threshold,
    operating_point,
    roc_from_scores,
)

__all__ = [
    "AggregationErrors",
    "aggregation_errors",
    "ConfusionCounts",
    "RaterDetectionStats",
    "any_suspicious",
    "interval_detected",
    "rater_detection",
    "rating_detection",
    "window_confusion",
    "MonteCarloResult",
    "Summary",
    "monte_carlo",
    "summarize",
    "line_chart",
    "sparkline",
    "RocCurve",
    "RocPoint",
    "calibrate_threshold",
    "operating_point",
    "roc_from_scores",
]
