"""Monte-Carlo experiment driver.

The paper repeats its experiments ("We run the experiment for 500
times..."); this driver owns the seeding discipline: a single master
seed spawns independent child generators, so every repetition is
independent yet the whole experiment is reproducible from one integer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Sequence, TypeVar

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["MonteCarloResult", "monte_carlo", "summarize"]

T = TypeVar("T")


@dataclass(frozen=True)
class MonteCarloResult(Generic[T]):
    """Results of repeated runs.

    Attributes:
        outcomes: one entry per repetition, in run order.
        master_seed: the seed the experiment is reproducible from.
    """

    outcomes: tuple
    master_seed: int

    @property
    def n_runs(self) -> int:
        return len(self.outcomes)

    def mean_of(self, extract: Callable[[T], float]) -> float:
        """Mean of a scalar extracted from each outcome."""
        return float(np.mean([extract(o) for o in self.outcomes]))

    def fraction(self, predicate: Callable[[T], bool]) -> float:
        """Fraction of outcomes satisfying a predicate."""
        return float(np.mean([bool(predicate(o)) for o in self.outcomes]))


def monte_carlo(
    run: Callable[[np.random.Generator], T],
    n_runs: int,
    master_seed: int = 0,
) -> MonteCarloResult[T]:
    """Repeat ``run`` with independent child generators.

    Args:
        run: experiment body; receives a fresh generator per repetition.
        n_runs: number of repetitions.
        master_seed: seed of the spawning ``SeedSequence``.
    """
    if n_runs < 1:
        raise ConfigurationError(f"n_runs must be >= 1, got {n_runs}")
    children = np.random.SeedSequence(master_seed).spawn(n_runs)
    outcomes = tuple(run(np.random.default_rng(child)) for child in children)
    return MonteCarloResult(outcomes=outcomes, master_seed=master_seed)


@dataclass(frozen=True)
class Summary:
    """Mean / std / extremes / CI half-width of a scalar sample."""

    mean: float
    std: float
    minimum: float
    maximum: float
    ci95_halfwidth: float
    n: int


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics with a normal-approximation 95 % CI."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    std = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        mean=float(np.mean(arr)),
        std=std,
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
        ci95_halfwidth=1.96 * std / float(np.sqrt(arr.size)),
        n=int(arr.size),
    )
