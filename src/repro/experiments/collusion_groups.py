"""Extension experiment: recovering collusion groups, not just raters.

Runs the Section IV marketplace, collects every flagged window from the
pipeline's monthly reports, builds the co-suspicion graph, and grades
the extracted groups against the ground-truth recruit lists:

* **membership precision/recall** -- of the raters placed in any
  candidate group, how many were really recruited PC raters, and what
  share of the true recruits were grouped;
* **purity of the largest group** -- the campaign should dominate it.

This is a structural upgrade over Procedure 2's per-rater trust: group
evidence accumulates *pairwise*, so even raters whose individual
suspicion stays below threshold get exposed by the company they keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

import numpy as np

from repro.detectors.groups import CollusionGroups, detect_collusion_groups
from repro.ratings.models import RaterClass
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace
from repro.simulation.pipeline import PipelineConfig, run_marketplace

__all__ = ["CollusionGroupResult", "run", "format_report"]


@dataclass(frozen=True)
class CollusionGroupResult:
    """Group-recovery quality for one marketplace year.

    Attributes:
        groups: the extracted candidate groups.
        true_recruits: every rater recruited at least once.
        membership_precision: grouped raters who are true recruits.
        membership_recall: true recruits who were grouped.
        largest_group_purity: recruit share of the largest group.
        per_rater_detection: Procedure-2 baseline -- fraction of PC
            raters below the trust threshold at year end (for
            comparison with the group route).
    """

    groups: CollusionGroups
    true_recruits: FrozenSet[int]
    membership_precision: float
    membership_recall: float
    largest_group_purity: float
    per_rater_detection: float


def run(
    seed: int = 3,
    config: MarketplaceConfig | None = None,
    pipeline: PipelineConfig | None = None,
    min_edge_weight: int = 6,
    min_group_size: int = 3,
) -> CollusionGroupResult:
    """Marketplace year -> co-suspicion graph -> graded groups.

    The default ``min_edge_weight`` of 6 is calibrated to the 12-month
    marketplace: an honest pair jointly attends a flagged campaign
    ~Binom(12, 0.05) times (weight 6+ with probability ~1e-5), while a
    recruit pair attends ~Binom(12, 0.46) times (weight 6+ with
    probability ~0.45 -- and the ones it misses are the recruits who
    barely participated).
    """
    config = config if config is not None else MarketplaceConfig(a1=6.0, a2=0.5)
    pipeline = pipeline if pipeline is not None else PipelineConfig()
    world = generate_marketplace(config, np.random.default_rng(seed))
    run_data = run_marketplace(world, pipeline)

    reports = [
        product_report.suspicion_report
        for interval in run_data.monthly_reports
        for product_report in interval.products.values()
    ]
    groups = detect_collusion_groups(
        reports, min_edge_weight=min_edge_weight, min_group_size=min_group_size
    )

    true_recruits = frozenset(
        rater_id
        for schedule in world.schedules
        for rater_id in schedule.recruited_rater_ids
    )
    grouped = groups.flagged_raters
    hits = len(grouped & true_recruits)
    precision = hits / len(grouped) if grouped else 0.0
    recall = hits / len(true_recruits) if true_recruits else 0.0
    if groups.groups:
        largest = groups.groups[0]
        purity = len(largest & true_recruits) / len(largest)
    else:
        purity = 0.0

    stats = run_data.rater_detection_at(config.n_months - 1)
    return CollusionGroupResult(
        groups=groups,
        true_recruits=true_recruits,
        membership_precision=precision,
        membership_recall=recall,
        largest_group_purity=purity,
        per_rater_detection=stats.detection_rate,
    )


def format_report(result: CollusionGroupResult) -> str:
    """Group-recovery summary."""
    sizes = [len(g) for g in result.groups.groups]
    lines = [
        "Collusion-group recovery from co-suspicion structure",
        f"  flagged windows contributing edges: {result.groups.n_windows}",
        f"  candidate groups: {len(sizes)} (sizes: {sizes[:8]}{'...' if len(sizes) > 8 else ''})",
        f"  true recruited raters: {len(result.true_recruits)}",
        f"  membership precision: {result.membership_precision:.2f}",
        f"  membership recall   : {result.membership_recall:.2f}",
        f"  largest-group purity: {result.largest_group_purity:.2f}",
        f"  (per-rater trust detection at year end: "
        f"{result.per_rater_detection:.2f})",
        "  pairwise evidence exposes recruits whose individual suspicion "
        "stayed under the radar",
    ]
    return "\n".join(lines)
