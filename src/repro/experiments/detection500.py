"""The 500-run detection experiment (paper Section III-A.2, in-text).

"To investigate the detection rate and false alarm rate, we perform
the experiment for 500 times and obtain Detection Ratio = 0.782;
False Alarm Ratio = 0.06."

Per repetition we generate an attacked trace and an honest-only trace:
*detection* means at least one suspicious window overlaps the true
attack interval of the attacked trace; *false alarm* means the honest
trace produced any suspicious window at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.detection import any_suspicious, interval_detected
from repro.evaluation.montecarlo import monte_carlo
from repro.experiments.fig4 import ILLUSTRATIVE_AR_THRESHOLD, build_illustrative_detector
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative

__all__ = ["PAPER_DETECTION_RATIO", "PAPER_FALSE_ALARM_RATIO", "Detection500Result", "run", "format_report"]

PAPER_DETECTION_RATIO = 0.782
PAPER_FALSE_ALARM_RATIO = 0.06


@dataclass(frozen=True)
class RunOutcome:
    """One repetition's outcome."""

    detected: bool
    false_alarm: bool
    min_attacked_error: float
    min_honest_error: float


@dataclass(frozen=True)
class Detection500Result:
    """Aggregated detection statistics.

    Attributes:
        detection_ratio: fraction of runs whose attack was detected.
        false_alarm_ratio: fraction of runs whose honest-only trace
            raised any suspicion.
        n_runs: repetitions performed.
        threshold: model-error threshold used.
        attacked_error_minima / honest_error_minima: per-run minima,
            kept for ROC sweeps by the benches.
    """

    detection_ratio: float
    false_alarm_ratio: float
    n_runs: int
    threshold: float
    attacked_error_minima: np.ndarray
    honest_error_minima: np.ndarray


def run(
    n_runs: int = 500,
    seed: int = 0,
    threshold: float = ILLUSTRATIVE_AR_THRESHOLD,
    config: IllustrativeConfig | None = None,
) -> Detection500Result:
    """Repeat the illustrative detection experiment.

    Args:
        n_runs: repetitions (paper: 500; benches use fewer for speed).
        seed: master seed.
        threshold: model-error threshold (calibrated default).
        config: illustrative scenario parameters.
    """
    config = config if config is not None else IllustrativeConfig()
    detector = build_illustrative_detector(threshold=threshold)

    def one_run(rng: np.random.Generator) -> RunOutcome:
        trace = generate_illustrative(config, rng)
        attacked_verdicts = detector.window_errors(trace.attacked)
        honest_verdicts = detector.window_errors(trace.honest)
        return RunOutcome(
            detected=interval_detected(
                attacked_verdicts, config.attack_start, config.attack_end
            ),
            false_alarm=any_suspicious(honest_verdicts),
            min_attacked_error=min(
                (v.statistic for v in attacked_verdicts), default=1.0
            ),
            min_honest_error=min(
                (v.statistic for v in honest_verdicts), default=1.0
            ),
        )

    results = monte_carlo(one_run, n_runs=n_runs, master_seed=seed)
    return Detection500Result(
        detection_ratio=results.fraction(lambda o: o.detected),
        false_alarm_ratio=results.fraction(lambda o: o.false_alarm),
        n_runs=n_runs,
        threshold=threshold,
        attacked_error_minima=np.array(
            [o.min_attacked_error for o in results.outcomes]
        ),
        honest_error_minima=np.array(
            [o.min_honest_error for o in results.outcomes]
        ),
    )


def format_report(result: Detection500Result) -> str:
    """Paper-vs-measured report."""
    return "\n".join(
        [
            f"Detection experiment ({result.n_runs} runs, "
            f"threshold {result.threshold})",
            f"  Detection Ratio : paper {PAPER_DETECTION_RATIO:.3f} | "
            f"measured {result.detection_ratio:.3f}",
            f"  False Alarm Ratio: paper {PAPER_FALSE_ALARM_RATIO:.3f} | "
            f"measured {result.false_alarm_ratio:.3f}",
        ]
    )
