"""Extension experiment: individual vs. collaborative unfairness.

Section II-B argues individual unfair ratings "usually cause much less
damage" than collaborative ones.  This experiment gives three
allocations of the *same* unfair rating mass at the *same* bias
magnitude (0.15) and measures what actually matters:

* **mean shift** -- symmetric dispositions cancel; one-sided
  dispositions and the campaign shift the global mean about equally
  (same mass, same bias -- no surprise);
* **peak windowed shift** -- the campaign concentrates its mass in a
  14-day interval, producing a transient manipulation several times
  larger than time-spread individual deviations.  This is the damage
  that matters in the paper's small-recent-window setting;
* **AR detection** -- the campaign's temporal concentration is exactly
  what the detector keys on: it fires on the campaign and stays quiet
  on time-spread individual deviators, whose defense is cancellation
  and dilution, not detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.evaluation.detection import interval_detected
from repro.evaluation.montecarlo import monte_carlo
from repro.experiments.fig4 import build_illustrative_detector
from repro.raters.individual import DispositionalRater
from repro.ratings.models import Rating, fresh_rating_id
from repro.ratings.stream import RatingStream
from repro.signal.windows import moving_average
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative

__all__ = ["IndividualVsCollaborativeResult", "run", "format_report"]

#: Individual deviators share the campaign's bias magnitude.
DISPOSITION = 0.15


@dataclass(frozen=True)
class AllocationOutcome:
    """Damage and detectability of one unfair-budget allocation."""

    mean_shift: float
    peak_window_shift: float
    detection_rate: float


@dataclass(frozen=True)
class IndividualVsCollaborativeResult:
    """allocation -> outcome, plus the unfair budget used."""

    outcomes: Dict[str, AllocationOutcome]
    unfair_fraction: float
    n_runs: int


def _individual_ratings(trace, config, rng, disposition_sign):
    """Replace the campaign with time-spread individual deviators."""
    n_unfair = trace.n_unfair
    honest = trace.honest
    times = rng.uniform(0.0, config.simu_time, size=n_unfair)
    ratings = []
    base_id = int(honest.rater_ids.max()) + 1
    for offset, t in enumerate(np.sort(times)):
        if disposition_sign == 0:
            disposition = float(rng.choice([-DISPOSITION, DISPOSITION]))
        else:
            disposition = DISPOSITION * disposition_sign
        rater = DispositionalRater(
            rater_id=base_id + offset,
            scale=config.scale,
            variance=config.good_var,
            disposition=disposition,
        )
        ratings.append(
            Rating(
                rating_id=fresh_rating_id(),
                rater_id=rater.rater_id,
                product_id=config.product_id,
                value=rater.rate(config.quality(float(t)), rng),
                time=float(t),
                unfair=True,
            )
        )
    return honest.merge(RatingStream.from_ratings(ratings))


def _peak_window_shift(stream, honest) -> float:
    """Max deviation of the 20-rating moving average from honest's."""
    t_a, m_a = moving_average(stream.times, stream.values, size=20, step=10)
    t_h, m_h = moving_average(honest.times, honest.values, size=20, step=10)
    if t_a.size == 0 or t_h.size == 0:
        return 0.0
    honest_level = np.interp(t_a, t_h, m_h)
    return float(np.max(np.abs(m_a - honest_level)))


def run(
    n_runs: int = 30, seed: int = 0, config: IllustrativeConfig | None = None
) -> IndividualVsCollaborativeResult:
    """Compare damage and detectability across allocations."""
    config = config if config is not None else IllustrativeConfig(recruit_power1=0.0)
    detector = build_illustrative_detector()

    def one_run(rng: np.random.Generator):
        trace = generate_illustrative(config, rng)
        honest_mean = trace.honest.mean()
        variants = {
            "collaborative_campaign": trace.attacked,
            "individual_symmetric": _individual_ratings(trace, config, rng, 0),
            "individual_one_sided": _individual_ratings(trace, config, rng, +1),
        }
        outcome = {}
        for name, stream in variants.items():
            detected = interval_detected(
                detector.window_errors(stream), 0.0, config.simu_time
            )
            outcome[name] = (
                stream.mean() - honest_mean,
                _peak_window_shift(stream, trace.honest),
                detected,
            )
        return outcome, trace.n_unfair / len(trace.attacked)

    results = monte_carlo(one_run, n_runs=n_runs, master_seed=seed)
    outcomes = {}
    for name in (
        "collaborative_campaign",
        "individual_symmetric",
        "individual_one_sided",
    ):
        outcomes[name] = AllocationOutcome(
            mean_shift=results.mean_of(lambda o, n=name: o[0][n][0]),
            peak_window_shift=results.mean_of(lambda o, n=name: o[0][n][1]),
            detection_rate=results.fraction(lambda o, n=name: o[0][n][2]),
        )
    return IndividualVsCollaborativeResult(
        outcomes=outcomes,
        unfair_fraction=results.mean_of(lambda o: o[1]),
        n_runs=n_runs,
    )


def format_report(result: IndividualVsCollaborativeResult) -> str:
    """Damage/detectability table across allocations."""
    lines = [
        f"Individual vs. collaborative unfairness ({result.n_runs} runs, "
        f"unfair mass {100 * result.unfair_fraction:.0f}% of the trace, "
        f"bias magnitude {DISPOSITION})",
        "  allocation              | mean shift | peak window shift | AR detected",
    ]
    for name, outcome in result.outcomes.items():
        lines.append(
            f"  {name:<23} | {outcome.mean_shift:+10.3f} | "
            f"{outcome.peak_window_shift:17.3f} | {outcome.detection_rate:11.2f}"
        )
    lines.append(
        "  same unfair mass: symmetric individuals cancel; one-sided "
        "individuals dilute across time (small transient, invisible to "
        "the temporal detector -- and needing no detection); the "
        "coordinated campaign concentrates into a large transient, "
        "which is exactly what the AR detector fires on"
    )
    return "\n".join(lines)
