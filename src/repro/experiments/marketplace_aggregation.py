"""Figs. 10-12: aggregation robustness in the marketplace.

One marketplace run with the aggregation-experiment scaling (a1 = 8,
a2 = 0.5) per bias level.  For every product the final aggregate is
computed under three schemes -- simple average, beta-function
aggregation, and the proposed modified weighted average -- and compared
with the true quality:

* Fig. 10 -- honest products, bias 0.15: all schemes track quality.
* Fig. 11 -- dishonest products, bias 0.15: baselines inflated, the
  proposed scheme stays close to quality.
* Fig. 12 -- dishonest products, bias 0.2: the gap widens to ~0.1 for
  the baselines while the proposed scheme stays within ~0.02.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.aggregation.methods import (
    BetaFunctionAggregator,
    ModifiedWeightedAverage,
    SimpleAverage,
)
from repro.evaluation.aggregation_error import AggregationErrors, aggregation_errors
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace
from repro.simulation.pipeline import PipelineConfig, run_marketplace

__all__ = ["SCHEMES", "MarketplaceAggregationResult", "run", "format_report"]

SCHEMES = {
    "simple_average": SimpleAverage,
    "beta_function": BetaFunctionAggregator,
    "modified_weighted_average": ModifiedWeightedAverage,
}


@dataclass(frozen=True)
class MarketplaceAggregationResult:
    """Per-scheme aggregates and error summaries for one bias level.

    Attributes:
        bias_shift: the attack's rating bias (0.15 for Figs. 10/11,
            0.2 for Fig. 12).
        qualities: product_id -> true quality.
        honest_product_ids / dishonest_product_ids: the two panels.
        aggregates: scheme -> {product_id -> aggregate}.
        honest_errors / dishonest_errors: scheme -> error summary over
            the respective panel.
    """

    bias_shift: float
    qualities: Dict[int, float]
    honest_product_ids: List[int]
    dishonest_product_ids: List[int]
    aggregates: Dict[str, Dict[int, float]]
    honest_errors: Dict[str, AggregationErrors]
    dishonest_errors: Dict[str, AggregationErrors]


def run(
    bias_shift: float = 0.15,
    seed: int = 0,
    config: MarketplaceConfig | None = None,
    pipeline: PipelineConfig | None = None,
) -> MarketplaceAggregationResult:
    """Run the aggregation experiment at one bias level."""
    if config is None:
        config = MarketplaceConfig(a1=8.0, a2=0.5, bias_shift2=bias_shift)
    pipeline = pipeline if pipeline is not None else PipelineConfig()
    world = generate_marketplace(config, np.random.default_rng(seed))
    run_data = run_marketplace(world, pipeline)

    aggregators = {name: cls() for name, cls in SCHEMES.items()}
    aggregates = run_data.aggregation_table(aggregators)
    honest_ids = world.honest_product_ids
    dishonest_ids = world.dishonest_product_ids
    honest_errors = {
        name: aggregation_errors(table, world.qualities, honest_ids)
        for name, table in aggregates.items()
    }
    dishonest_errors = {
        name: aggregation_errors(table, world.qualities, dishonest_ids)
        for name, table in aggregates.items()
    }
    return MarketplaceAggregationResult(
        bias_shift=config.bias_shift2,
        qualities=world.qualities,
        honest_product_ids=honest_ids,
        dishonest_product_ids=dishonest_ids,
        aggregates=aggregates,
        honest_errors=honest_errors,
        dishonest_errors=dishonest_errors,
    )


def format_report(result: MarketplaceAggregationResult) -> str:
    """Paper-vs-measured report for one bias level (Figs. 10-12)."""
    lines = [
        f"Figs. 10-12 panel -- aggregation with bias {result.bias_shift}",
        "  honest products (all schemes should track quality):",
    ]
    for name, errors in result.honest_errors.items():
        lines.append(
            f"    {name:<26}: mean |err| {errors.mean_abs_error:.3f}, "
            f"max |err| {errors.max_abs_error:.3f}"
        )
    lines.append("  dishonest products (baselines inflate, proposed stays close):")
    for name, errors in result.dishonest_errors.items():
        lines.append(
            f"    {name:<26}: mean dev {errors.mean_signed_error:+.3f}, "
            f"max |err| {errors.max_abs_error:.3f}"
        )
    lines.append("  per-dishonest-product aggregates vs quality:")
    header = "    product | quality | " + " | ".join(
        f"{name[:12]:>12}" for name in result.aggregates
    )
    lines.append(header)
    for pid in result.dishonest_product_ids:
        row = f"    {pid:7d} | {result.qualities[pid]:7.3f} | " + " | ".join(
            f"{result.aggregates[name].get(pid, float('nan')):12.3f}"
            for name in result.aggregates
        )
        lines.append(row)
    return "\n".join(lines)
