"""Extension experiment: adaptive attacks against the AR detector.

The paper's future work ("study the possible attacks to the proposed
solutions"), made concrete: an informed adversary reshapes the
recruitment channel to erase the statistical fingerprint the detector
keys on.  For each strategy we measure

* **evasion** -- the detector's ROC AUC over repeated runs (lower =
  better for the attacker), and
* **damage** -- the achieved shift of the simple average inside the
  attack window (higher = better for the attacker),

so the report reads as an attacker's cost-benefit table.  Headline
finding: variance camouflage buys the most evasion (the tightness
fingerprint disappears) but pays a real damage cost -- wide recruited
ratings clip at the scale's top, halving the achieved shift -- while
ramping buys almost no evasion and duty-cycling sits in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.attacks.adaptive import CamouflageCampaign, DutyCycleCampaign, RampCampaign
from repro.evaluation.montecarlo import monte_carlo
from repro.evaluation.roc import roc_from_scores
from repro.experiments.fig4 import build_illustrative_detector
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative

__all__ = ["StrategyOutcome", "AdaptiveAttackResult", "run", "format_report"]


@dataclass(frozen=True)
class StrategyOutcome:
    """Evasion/damage summary for one strategy."""

    auc: float
    damage: float


@dataclass(frozen=True)
class AdaptiveAttackResult:
    """strategy name -> outcome, plus the run count."""

    outcomes: Dict[str, StrategyOutcome]
    n_runs: int

    @property
    def most_evasive(self) -> str:
        return min(self.outcomes, key=lambda name: self.outcomes[name].auc)


def _strategies(config: IllustrativeConfig):
    """The attacker's menu, all targeting the same mean shift."""
    interval = dict(start=config.attack_start, end=config.attack_end)
    return {
        "naive_tight": None,  # the paper's type 2 channel, via the config
        "camouflage": CamouflageCampaign(
            bias=config.bias_shift2,
            power=config.recruit_power2,
            camouflage_variance=config.good_var,
            **interval,
        ),
        "ramp": RampCampaign(
            bias=config.bias_shift2,
            power=config.recruit_power2,
            bad_variance=config.bad_var,
            **interval,
        ),
        "duty_cycle": DutyCycleCampaign(
            bias=config.bias_shift2,
            power=config.recruit_power2,
            bad_variance=config.bad_var,
            on_days=2.0,
            off_days=2.0,
            **interval,
        ),
    }


def run(
    n_runs: int = 30, seed: int = 0, config: IllustrativeConfig | None = None
) -> AdaptiveAttackResult:
    """Measure evasion and damage for every adaptive strategy."""
    base = config if config is not None else IllustrativeConfig(recruit_power1=0.0)
    detector = build_illustrative_detector()
    strategies = _strategies(base)

    def one_run(rng: np.random.Generator):
        trace = generate_illustrative(base, rng)
        honest_min = min(
            (v.statistic for v in detector.window_errors(trace.honest)),
            default=1.0,
        )
        honest_window_mean = trace.honest.between(
            base.attack_start, base.attack_end
        ).mean()
        outcome = {}
        for name, strategy in strategies.items():
            if strategy is None:
                attacked = trace.attacked
            else:
                attacked = strategy.apply(
                    trace.honest,
                    quality_at=base.quality,
                    base_rate=base.arrival_rate,
                    scale=base.scale,
                    rng=rng,
                )
            attacked_min = min(
                (v.statistic for v in detector.window_errors(attacked)),
                default=1.0,
            )
            damage = (
                attacked.between(base.attack_start, base.attack_end).mean()
                - honest_window_mean
            )
            outcome[name] = (attacked_min, honest_min, damage)
        return outcome

    results = monte_carlo(one_run, n_runs=n_runs, master_seed=seed)
    outcomes: Dict[str, StrategyOutcome] = {}
    for name in strategies:
        attacked_scores = [o[name][0] for o in results.outcomes]
        honest_scores = [o[name][1] for o in results.outcomes]
        damages = [o[name][2] for o in results.outcomes]
        outcomes[name] = StrategyOutcome(
            auc=roc_from_scores(attacked_scores, honest_scores).auc(),
            damage=float(np.mean(damages)),
        )
    return AdaptiveAttackResult(outcomes=outcomes, n_runs=n_runs)


def format_report(result: AdaptiveAttackResult) -> str:
    """Attacker's cost-benefit table."""
    lines = [
        f"Adaptive attacks vs. the AR detector ({result.n_runs} runs each)",
        "  strategy     | detector AUC (lower = evades) | damage (avg shift)",
    ]
    for name, outcome in result.outcomes.items():
        lines.append(
            f"  {name:<12} | {outcome.auc:29.3f} | {outcome.damage:+18.3f}"
        )
    lines.append(
        f"  most evasive: {result.most_evasive} "
        "(variance camouflage erases the tightness fingerprint)"
    )
    return "\n".join(lines)
