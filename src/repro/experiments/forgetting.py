"""Extension experiment: the forgetting scheme under behaviour switches.

Fig. 1's Record Maintenance module includes a forgetting scheme ("an
honest rater may become compromised... the observation collected long
time ago should not carry the same weight"), but the paper's
simulations never exercise it.  This experiment does: the marketplace's
potential-collaborative raters behave honestly for the first half of
the year (building trust capital), then start campaigning.  Without
forgetting, the accumulated honest evidence shields them for months;
with exponential forgetting, old evidence decays and detection recovers
quickly after the switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.ratings.models import RaterClass
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace
from repro.simulation.pipeline import PipelineConfig, run_marketplace

__all__ = ["ForgettingResult", "run", "format_report"]

#: Forgetting factors compared (1.0 = the paper's no-forgetting setting).
FACTORS = (1.0, 0.8, 0.5)


@dataclass(frozen=True)
class ForgettingOutcome:
    """One forgetting factor's trajectory after the behaviour switch."""

    pc_trust_by_month: np.ndarray
    detection_by_month: np.ndarray
    final_false_alarm: float


@dataclass(frozen=True)
class ForgettingResult:
    """factor -> outcome, plus the switch month."""

    outcomes: Dict[float, ForgettingOutcome]
    switch_month: int

    def detection_at(self, factor: float, month: int) -> float:
        return float(self.outcomes[factor].detection_by_month[month])


def run(
    seed: int = 0,
    switch_month: int = 6,
    config: MarketplaceConfig | None = None,
) -> ForgettingResult:
    """Run the behaviour-switch marketplace under each forgetting factor."""
    if config is None:
        config = MarketplaceConfig(campaign_start_month=switch_month)
    world = generate_marketplace(config, np.random.default_rng(seed))

    outcomes: Dict[float, ForgettingOutcome] = {}
    for factor in FACTORS:
        run_data = run_marketplace(
            world, PipelineConfig(forgetting_factor=factor)
        )
        trust_series = run_data.mean_trust_by_class()[
            RaterClass.POTENTIAL_COLLABORATIVE
        ]
        detections: List[float] = []
        final_false_alarm = 0.0
        for month in range(config.n_months):
            stats = run_data.rater_detection_at(month)
            detections.append(stats.detection_rate)
            if month == config.n_months - 1:
                final_false_alarm = max(
                    stats.false_alarm_rates.values(), default=0.0
                )
        outcomes[factor] = ForgettingOutcome(
            pc_trust_by_month=trust_series,
            detection_by_month=np.asarray(detections),
            final_false_alarm=final_false_alarm,
        )
    return ForgettingResult(outcomes=outcomes, switch_month=switch_month)


def format_report(result: ForgettingResult) -> str:
    """Per-factor trajectories around the behaviour switch."""
    lines = [
        "Forgetting scheme under a behaviour switch "
        f"(PC raters turn collaborative at month {result.switch_month + 1})",
    ]
    for factor, outcome in result.outcomes.items():
        trust = " ".join(f"{v:.2f}" for v in outcome.pc_trust_by_month)
        det = " ".join(f"{v:.2f}" for v in outcome.detection_by_month)
        label = "no forgetting" if factor == 1.0 else f"factor {factor}"
        lines += [
            f"  {label}:",
            f"    PC mean trust : {trust}",
            f"    detection rate: {det} "
            f"(final false alarm {outcome.final_false_alarm:.3f})",
        ]
    last = max(
        result.outcomes, key=lambda f: result.outcomes[f].detection_by_month[-1]
    )
    lines.append(
        f"  fastest post-switch recovery: forgetting factor {last} -- "
        "decaying old evidence strips the pre-built trust shield"
    )
    return "\n".join(lines)
