"""Extension experiment: whitewashing and the newcomer-prior defense.

A second "attack on the solution" (paper future work): a detected
collaborative rater abandons its tarnished identity and re-registers
fresh, resetting its trust to the 0.5 prior -- *whitewashing*.  Because
the modified weighted average ignores raters at or below neutral trust,
the natural defense is to start newcomers *below* neutral (pessimistic
initial evidence): a whitewashed identity then carries no weight until
it earns trust through honest behaviour, which is exactly what the
attacker cannot afford to do.

Three variants of the Section IV marketplace are compared:

* ``stable_ids`` -- the paper's world (no identity churn),
* ``whitewashing`` -- detected PC raters reset their record each month,
* ``whitewashing_defended`` -- same churn, but every reset identity
  (like every newcomer) starts with pessimistic prior evidence.

Reported per variant: the month-12 detection rate (whitewashing erases
it by construction) and the dishonest-product aggregation error under
the modified weighted average (the damage that actually matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.aggregation.methods import ModifiedWeightedAverage
from repro.evaluation.aggregation_error import AggregationErrors, aggregation_errors
from repro.ratings.models import RaterClass
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace
from repro.simulation.pipeline import PipelineConfig, run_marketplace

__all__ = ["WhitewashingResult", "run", "format_report"]

#: Pessimistic newcomer prior: Beta evidence (0 successes, 2 failures)
#: puts a fresh identity at trust 0.25, below the aggregation floor.
DEFENSE_INITIAL_FAILURES = 2.0


@dataclass(frozen=True)
class VariantOutcome:
    """One variant's end state."""

    detection_month12: float
    false_alarm_month12: float
    dishonest_errors: AggregationErrors
    n_resets: int


@dataclass(frozen=True)
class WhitewashingResult:
    """variant name -> outcome."""

    outcomes: Dict[str, VariantOutcome]


def _make_hook(world, threshold: float, initial_failures: float, counter: list):
    """Monthly whitewashing: detected PC raters re-register fresh."""
    pc_ids = {
        rid
        for rid, cls in world.rater_classes.items()
        if cls is RaterClass.POTENTIAL_COLLABORATIVE
    }

    def hook(system, month):
        manager = system.trust_manager
        for rater_id in manager.detected_malicious():
            if rater_id not in pc_ids:
                continue  # honest raters have no reason to churn
            record = manager.record(rater_id)
            record.successes = 0.0
            record.failures = float(initial_failures)
            counter.append(rater_id)

    return hook


def run(
    seed: int = 0,
    config: MarketplaceConfig | None = None,
    pipeline: PipelineConfig | None = None,
) -> WhitewashingResult:
    """Run the three variants on the same generated world."""
    config = config if config is not None else MarketplaceConfig(a1=6.0, a2=0.5)
    pipeline = pipeline if pipeline is not None else PipelineConfig()
    world = generate_marketplace(config, np.random.default_rng(seed))

    variants = {
        "stable_ids": (None, 0.0),
        "whitewashing": ("hook", 0.0),
        "whitewashing_defended": ("hook", DEFENSE_INITIAL_FAILURES),
    }
    outcomes: Dict[str, VariantOutcome] = {}
    for name, (hook_kind, initial_failures) in variants.items():
        resets: list = []
        hook = (
            _make_hook(
                world, pipeline.detection_threshold, initial_failures, resets
            )
            if hook_kind
            else None
        )
        run_data = run_marketplace(world, pipeline, month_end_hook=hook)
        last = config.n_months - 1
        stats = run_data.rater_detection_at(last)
        aggregates = run_data.aggregate_products(ModifiedWeightedAverage())
        errors = aggregation_errors(
            aggregates, world.qualities, world.dishonest_product_ids
        )
        outcomes[name] = VariantOutcome(
            detection_month12=stats.detection_rate,
            false_alarm_month12=max(
                stats.false_alarm_rates.values(), default=0.0
            ),
            dishonest_errors=errors,
            n_resets=len(resets),
        )
    return WhitewashingResult(outcomes=outcomes)


def format_report(result: WhitewashingResult) -> str:
    """Variant comparison table."""
    lines = [
        "Whitewashing vs. the newcomer-prior defense",
        "  variant                | det@12 | FA@12 | dishonest mean dev | identity resets",
    ]
    for name, outcome in result.outcomes.items():
        lines.append(
            f"  {name:<22} | {outcome.detection_month12:6.2f} | "
            f"{outcome.false_alarm_month12:5.3f} | "
            f"{outcome.dishonest_errors.mean_signed_error:+18.3f} | "
            f"{outcome.n_resets:15d}"
        )
    lines.append(
        "  whitewashing launders the flag but the pessimistic newcomer "
        "prior keeps laundered identities weightless in the aggregate"
    )
    return "\n".join(lines)
