"""Extension experiment: the detectability surface.

The paper fixes one attack operating point (bias 0.15, recruit power 1).
This sweep maps the whole surface: for a grid of campaign bias shifts
and recruitment powers, the AR detector's detection ratio at a fixed
false-alarm budget.  Two boundaries emerge:

* **too quiet to see** -- at low recruitment power the campaign adds
  too few ratings to change any window's statistics;
* **diminishing stealth** -- lowering the bias barely helps the
  attacker (the variance fingerprint, not the mean shift, drives the
  model-error drop), which is exactly why the paper's moderate-bias
  strategy still gets caught.

The report prints the detection grid; the damage grid (mean aggregate
shift) prints alongside so the attacker's feasible region -- enough
damage, low detection -- is visible as the near-empty corner.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.evaluation.montecarlo import monte_carlo
from repro.evaluation.roc import calibrate_threshold
from repro.experiments.fig4 import build_illustrative_detector
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative

__all__ = ["SensitivityResult", "run", "format_report"]

DEFAULT_BIASES = (0.05, 0.10, 0.15, 0.25)
DEFAULT_POWERS = (0.25, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class SensitivityResult:
    """Detection and damage over the (bias, power) grid.

    Attributes:
        biases / powers: the grid axes.
        detection: (bias, power) -> detection ratio at the calibrated
            threshold.
        damage: (bias, power) -> mean aggregate shift in the window.
        threshold: the calibrated model-error threshold used.
        n_runs: repetitions per grid cell.
    """

    biases: Tuple[float, ...]
    powers: Tuple[float, ...]
    detection: Dict[Tuple[float, float], float]
    damage: Dict[Tuple[float, float], float]
    threshold: float
    n_runs: int


def run(
    n_runs: int = 20,
    seed: int = 0,
    biases: Sequence[float] = DEFAULT_BIASES,
    powers: Sequence[float] = DEFAULT_POWERS,
    false_alarm_budget: float = 0.05,
) -> SensitivityResult:
    """Sweep the attack grid with a threshold calibrated on honest runs."""
    base = IllustrativeConfig(recruit_power1=0.0)
    detector = build_illustrative_detector()

    # Calibrate the threshold once from honest-trace error minima.
    def honest_min(rng: np.random.Generator) -> float:
        trace = generate_illustrative(base.without_attack(), rng)
        return min(
            (v.statistic for v in detector.window_errors(trace.honest)),
            default=1.0,
        )

    honest_minima = [
        o for o in monte_carlo(honest_min, n_runs=n_runs, master_seed=seed).outcomes
    ]
    threshold = calibrate_threshold(honest_minima, quantile=false_alarm_budget)

    detection: Dict[Tuple[float, float], float] = {}
    damage: Dict[Tuple[float, float], float] = {}
    for bias in biases:
        for power in powers:
            config = replace(base, bias_shift2=bias, recruit_power2=power)

            def one_run(rng: np.random.Generator, config=config):
                trace = generate_illustrative(config, rng)
                minimum = min(
                    (
                        v.statistic
                        for v in detector.window_errors(trace.attacked)
                    ),
                    default=1.0,
                )
                shift = trace.attacked.between(
                    config.attack_start, config.attack_end
                ).mean() - trace.honest.between(
                    config.attack_start, config.attack_end
                ).mean()
                return minimum, shift

            results = monte_carlo(one_run, n_runs=n_runs, master_seed=seed + 1)
            detection[(bias, power)] = results.fraction(
                lambda o: o[0] < threshold
            )
            damage[(bias, power)] = results.mean_of(lambda o: o[1])
    return SensitivityResult(
        biases=tuple(biases),
        powers=tuple(powers),
        detection=detection,
        damage=damage,
        threshold=threshold,
        n_runs=n_runs,
    )


def format_report(result: SensitivityResult) -> str:
    """Detection and damage grids."""
    lines = [
        "Detectability surface "
        f"(threshold {result.threshold:.3f}, {result.n_runs} runs/cell)",
        "  detection ratio (rows: bias shift; columns: recruit power)",
        "   bias \\ power | " + " | ".join(f"{p:5.2f}" for p in result.powers),
    ]
    for bias in result.biases:
        cells = " | ".join(
            f"{result.detection[(bias, power)]:5.2f}" for power in result.powers
        )
        lines.append(f"   {bias:12.2f} | {cells}")
    lines.append("  mean damage (aggregate shift inside the attack window)")
    for bias in result.biases:
        cells = " | ".join(
            f"{result.damage[(bias, power)]:+5.2f}" for power in result.powers
        )
        lines.append(f"   {bias:12.2f} | {cells}")
    return "\n".join(lines)
