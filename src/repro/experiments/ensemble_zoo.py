"""Extension experiment: attack zoo vs the online detector ensemble.

Replays four synthetic attack families through the serving engine
twice -- once with the classic AR-only configuration and once with the
full three-source ensemble (AR + co-rating graph + iterative
filtering) -- and grades each run by per-rater ROC/AUC against ground
truth.  The per-rater statistic is the engine's accumulated suspicion
mass (:meth:`~repro.service.engine.RatingEngine.suspicion_table`)
normalized by how many ratings the rater submitted, so prolific honest
raters are not penalized for volume.

The zoo covers the signal-model blind spot on purpose:

* ``collusion`` -- a ring co-rates the same products with tightly
  agreeing inflated values.  Each individual stream stays smooth, so
  the AR charge lands window-wide (honest co-raters included); the
  co-rating graph sees the agreeing clique directly.
* ``sybil_ramp`` -- fresh identities join in waves and pile agreeing
  ratings onto target products.  Sybils are too young for a stable
  per-rater AR profile, but the swarm's mutual agreement and their
  deviation from honest consensus are loud.
* ``bias`` -- unfair raters inject runs of shifted low-variance
  ratings (the paper's Section IV scenario); the AR path should keep
  carrying this.
* ``burst`` -- a rater floods one product with near-identical
  promotion ratings, the canonical AR model-error *drop* (injected
  ratings are artificially smooth, so the alarm fires when the
  normalized model error falls *below* the threshold).

The AR threshold is calibrated to the zoo's honest noise: the honest
windows' normalized model error sits around 0.005-0.09, so the zoo
uses ``detector_threshold=0.008`` (~1 percent honest flag rate)
instead of the serving default.

The headline numbers are the per-family AUC deltas: the ensemble must
beat AR-only on ``collusion`` and ``sybil_ramp`` without giving back
the AR families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from repro.evaluation.roc import roc_from_scores
from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig

__all__ = ["AttackFamilyResult", "EnsembleZooResult", "run", "format_report"]

ATTACK_FAMILIES = ("collusion", "sybil_ramp", "bias", "burst")

#: Honest world shared by every family.
N_PRODUCTS = 8
N_HONEST = 24
ROUNDS = 10
HONEST_NOISE = 0.08


@dataclass(frozen=True)
class AttackFamilyResult:
    """ROC/AUC of both configurations on one attack family.

    Attributes:
        family: attack family name.
        n_attackers: ground-truth malicious raters in the stream.
        n_ratings: total stream length.
        auc_ar: AUC of the AR-only engine.
        auc_ensemble: AUC of the three-source ensemble engine.
        delta: ``auc_ensemble - auc_ar``.
    """

    family: str
    n_attackers: int
    n_ratings: int
    auc_ar: float
    auc_ensemble: float
    delta: float


@dataclass(frozen=True)
class EnsembleZooResult:
    """Per-family AUC comparison plus the acceptance verdict.

    Attributes:
        families: one entry per attack family, zoo order.
        ensemble_wins_collusion: ensemble AUC beat AR-only on the
            collusion ring.
        ensemble_wins_sybil_ramp: ensemble AUC beat AR-only on the
            Sybil ramp.
    """

    families: Tuple[AttackFamilyResult, ...]
    ensemble_wins_collusion: bool
    ensemble_wins_sybil_ramp: bool


# -- stream synthesis -------------------------------------------------------


def _honest_world(rng: np.random.Generator) -> Tuple[List[Tuple[int, int, float]], np.ndarray]:
    """(rater, product, value) honest triples, round-robin over rounds."""
    quality = rng.uniform(0.4, 0.7, size=N_PRODUCTS)
    triples = []
    for _ in range(ROUNDS):
        for pid in range(N_PRODUCTS):
            for rid in range(N_HONEST):
                value = float(
                    np.clip(quality[pid] + rng.normal(0.0, HONEST_NOISE), 0, 1)
                )
                triples.append((rid, pid, round(value, 3)))
    return triples, quality


def _collusion_stream(rng: np.random.Generator):
    """A 6-rater ring repeatedly co-rates 4 target products at ~0.92."""
    triples, _ = _honest_world(rng)
    ring = tuple(range(100, 106))
    per_round = len(triples) // ROUNDS
    out = []
    for round_index in range(ROUNDS):
        out.extend(triples[round_index * per_round : (round_index + 1) * per_round])
        for pid in range(4):
            for rid in ring:
                value = float(np.clip(0.92 + rng.normal(0.0, 0.01), 0, 1))
                out.append((rid, pid, round(value, 3)))
    return out, frozenset(ring)


def _sybil_ramp_stream(rng: np.random.Generator):
    """Waves of fresh identities pile agreeing ratings on 3 targets.

    The injections are shuffled into the round's organic traffic, so
    each product's stream never carries a window-length run of smooth
    sybil values -- the per-window AR statistic stays honest-looking
    while the swarm's mutual agreement accumulates in the graph.
    """
    triples, _ = _honest_world(rng)
    per_round = len(triples) // ROUNDS
    sybils: List[int] = []
    out = []
    for round_index in range(ROUNDS):
        merged = list(
            triples[round_index * per_round : (round_index + 1) * per_round]
        )
        if round_index >= 2:  # the ramp: 3 new identities per round
            sybils.extend(range(200 + 3 * round_index, 203 + 3 * round_index))
        for rid in sybils:
            for pid in range(3):
                value = float(np.clip(0.95 + rng.normal(0.0, 0.01), 0, 1))
                merged.append((rid, pid, round(value, 3)))
        out.extend(merged[i] for i in rng.permutation(len(merged)))
    return out, frozenset(sybils)


def _bias_stream(rng: np.random.Generator):
    """4 unfair raters inject consecutive runs of shifted smooth values.

    Each round every unfair rater drops 3 back-to-back ratings per
    product at ``quality + 0.3`` with tiny variance, so the 12-sample
    detector window fills with artificially smooth injected values --
    the classic model-error-drop signature AR-only must catch.
    """
    triples, quality = _honest_world(rng)
    unfair = tuple(range(300, 304))
    per_round = len(triples) // ROUNDS
    out = []
    for round_index in range(ROUNDS):
        out.extend(triples[round_index * per_round : (round_index + 1) * per_round])
        for pid in range(N_PRODUCTS):
            for rid in unfair:
                for _ in range(3):
                    value = float(
                        np.clip(quality[pid] + 0.3 + rng.normal(0.0, 0.02), 0, 1)
                    )
                    out.append((rid, pid, round(value, 3)))
    return out, frozenset(unfair)


def _burst_stream(rng: np.random.Generator):
    """3 raters each flood one product with 15 near-identical ratings."""
    triples, _ = _honest_world(rng)
    attackers = tuple(range(400, 403))
    per_round = len(triples) // ROUNDS
    out = []
    for round_index in range(ROUNDS):
        out.extend(triples[round_index * per_round : (round_index + 1) * per_round])
        if round_index == 5:
            for attacker_index, rid in enumerate(attackers):
                for _ in range(15):
                    value = float(np.clip(0.95 + rng.normal(0.0, 0.005), 0, 1))
                    out.append((rid, attacker_index, round(value, 3)))
    return out, frozenset(attackers)


_SYNTHESIZERS = {
    "collusion": _collusion_stream,
    "sybil_ramp": _sybil_ramp_stream,
    "bias": _bias_stream,
    "burst": _burst_stream,
}


def _to_ratings(triples: List[Tuple[int, int, float]]) -> List[Rating]:
    return [
        Rating(rating_id=i, rater_id=rid, product_id=pid, value=value, time=float(i))
        for i, (rid, pid, value) in enumerate(triples)
    ]


# -- replay and grading -----------------------------------------------------


def _engine_config(sources: Tuple[str, ...]) -> ServiceConfig:
    """Deterministic single-shard, count-flushed engine for grading."""
    return ServiceConfig(
        n_shards=1,
        batch_max_ratings=64,
        detector_window=12,
        detector_order=2,
        detector_stride=3,
        detector_threshold=0.008,
        ensemble_sources=sources,
    )


def _replay_auc(
    ratings: List[Rating], attackers: FrozenSet[int], sources: Tuple[str, ...]
) -> float:
    engine = RatingEngine(_engine_config(sources))
    engine.submit_many(ratings)
    engine.flush()
    mass = engine.suspicion_table()
    counts: Dict[int, int] = {}
    for rating in ratings:
        counts[rating.rater_id] = counts.get(rating.rater_id, 0) + 1
    engine.close()

    def statistic(rid: int) -> float:
        return mass.get(rid, 0.0) / counts[rid]

    attack_scores = [statistic(rid) for rid in sorted(attackers)]
    honest_scores = [
        statistic(rid) for rid in sorted(counts) if rid not in attackers
    ]
    return roc_from_scores(
        attack_scores, honest_scores, smaller_is_suspicious=False
    ).auc()


def run(seed: int = 0) -> EnsembleZooResult:
    """Replay every attack family through both engine configurations.

    Args:
        seed: master seed; each family derives its own child stream.
    """
    families = []
    for index, family in enumerate(ATTACK_FAMILIES):
        rng = np.random.default_rng(seed * 1000 + index)
        triples, attackers = _SYNTHESIZERS[family](rng)
        ratings = _to_ratings(triples)
        auc_ar = _replay_auc(ratings, attackers, ("ar",))
        auc_ensemble = _replay_auc(
            ratings, attackers, ("ar", "cograph", "iterfilter")
        )
        families.append(
            AttackFamilyResult(
                family=family,
                n_attackers=len(attackers),
                n_ratings=len(ratings),
                auc_ar=round(auc_ar, 4),
                auc_ensemble=round(auc_ensemble, 4),
                delta=round(auc_ensemble - auc_ar, 4),
            )
        )
    by_name = {entry.family: entry for entry in families}
    return EnsembleZooResult(
        families=tuple(families),
        ensemble_wins_collusion=by_name["collusion"].delta > 0,
        ensemble_wins_sybil_ramp=by_name["sybil_ramp"].delta > 0,
    )


def format_report(result: EnsembleZooResult) -> str:
    """Per-family AUC table with the acceptance verdict."""
    lines = [
        "Attack zoo: AR-only vs three-source detector ensemble (per-rater AUC)",
        f"  {'family':<12} {'attackers':>9} {'ratings':>8} "
        f"{'AR AUC':>8} {'ensemble':>9} {'delta':>8}",
    ]
    for entry in result.families:
        lines.append(
            f"  {entry.family:<12} {entry.n_attackers:>9} {entry.n_ratings:>8} "
            f"{entry.auc_ar:>8.4f} {entry.auc_ensemble:>9.4f} "
            f"{entry.delta:>+8.4f}"
        )
    verdict = (
        "PASS"
        if result.ensemble_wins_collusion and result.ensemble_wins_sybil_ramp
        else "FAIL"
    )
    lines.append(
        f"  acceptance ({verdict}): ensemble beats AR-only on collusion "
        f"({result.ensemble_wins_collusion}) and sybil_ramp "
        f"({result.ensemble_wins_sybil_ramp})"
    )
    return "\n".join(lines)
