"""Extension experiment: self-promotion rings and bridge attacks.

Sweeps the number of *bridges* -- honest veterans fooled into vouching
for a collusion ring -- and measures each class's mean indirect trust.
Measured structure (and the propagation model's safety argument):

* with zero bridges the ring is inert -- exactly zero indirect trust,
  however enthusiastically it vouches for itself;
* a *single* bridge unlocks the whole ring at once (the dense internal
  vouching propagates the leak to every member within the path-length
  cap) -- but multipath fusion *averages* parallel paths instead of
  summing them, so the ring's trust is capped at the leak level
  (bridge trust x vouch x internal edge) and stays below the honestly
  vouched newcomers no matter how many bridges exist.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence

import numpy as np

from repro.evaluation.montecarlo import monte_carlo
from repro.simulation.vouching import (
    VouchingConfig,
    build_vouching_network,
    evaluate_network,
)

__all__ = ["VouchingResult", "run", "format_report"]

DEFAULT_BRIDGES = (0, 1, 2, 4, 8)


@dataclass(frozen=True)
class VouchingResult:
    """bridge count -> class -> mean indirect trust (averaged over runs)."""

    by_bridges: Dict[int, Dict[str, float]]
    n_runs: int

    def ring_trust(self, n_bridges: int) -> float:
        return self.by_bridges[n_bridges]["ring"]


def run(
    n_runs: int = 20,
    seed: int = 0,
    bridge_counts: Sequence[int] = DEFAULT_BRIDGES,
    config: VouchingConfig | None = None,
) -> VouchingResult:
    """Sweep bridge counts; average class trusts over repetitions."""
    base = config if config is not None else VouchingConfig()
    by_bridges: Dict[int, Dict[str, float]] = {}
    for n_bridges in bridge_counts:
        scenario = replace(base, n_bridges=n_bridges)

        def one_run(rng: np.random.Generator):
            network = build_vouching_network(scenario, rng)
            return evaluate_network(network)

        results = monte_carlo(one_run, n_runs=n_runs, master_seed=seed)
        by_bridges[n_bridges] = {
            cls: results.mean_of(lambda o, c=cls: o[c])
            for cls in ("veterans", "newcomers", "ring")
        }
    return VouchingResult(by_bridges=by_bridges, n_runs=n_runs)


def format_report(result: VouchingResult) -> str:
    """Trust-by-class table over the bridge sweep."""
    lines = [
        f"Self-promotion ring vs. bridge attacks ({result.n_runs} runs/point)",
        "  bridges | veterans | newcomers | ring",
    ]
    for n_bridges, trusts in sorted(result.by_bridges.items()):
        lines.append(
            f"  {n_bridges:7d} | {trusts['veterans']:8.3f} | "
            f"{trusts['newcomers']:9.3f} | {trusts['ring']:5.3f}"
        )
    lines.append(
        "  an isolated ring is inert; one fooled veteran unlocks the whole "
        "ring (dense internal vouching spreads the leak) but multipath "
        "averaging caps it below the honestly vouched newcomers"
    )
    return "\n".join(lines)
