"""Fig. 2 (raw ratings) and Fig. 3 (rating histograms).

These are the paper's "look at the data" artifacts: the attacked trace
plotted over time with per-channel markers, and histograms showing that
the value distribution alone cannot separate honest from collaborative
ratings -- the motivation for going after *temporal* structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.evaluation.montecarlo import monte_carlo
from repro.ratings.models import RaterClass
from repro.simulation.illustrative import (
    IllustrativeConfig,
    IllustrativeTrace,
    generate_illustrative,
)

__all__ = ["RawRatingsResult", "run", "format_report"]


@dataclass(frozen=True)
class RawRatingsResult:
    """Series for Figs. 2-3.

    Attributes:
        trace: the generated illustrative trace.
        histogram_bins: rating-level bin centers.
        histogram_honest: counts of the honest-only stream per level.
        histogram_attacked: counts of the attacked stream per level.
        overlap_fraction: fraction of unfair ratings falling on levels
            also used by at least 5 % of honest ratings -- the "cannot
            separate by value" statistic.
    """

    trace: IllustrativeTrace
    histogram_bins: np.ndarray
    histogram_honest: np.ndarray
    histogram_attacked: np.ndarray
    overlap_fraction: float


def run(seed: int = 0, config: IllustrativeConfig | None = None) -> RawRatingsResult:
    """Generate the illustrative trace and its histograms."""
    config = config if config is not None else IllustrativeConfig()
    rng = np.random.default_rng(seed)
    trace = generate_illustrative(config, rng)
    levels = config.scale.values
    step = config.scale.step

    def histogram(values: np.ndarray) -> np.ndarray:
        edges = np.concatenate((levels - step / 2, [levels[-1] + step / 2]))
        counts, _ = np.histogram(values, bins=edges)
        return counts

    hist_honest = histogram(trace.honest.values)
    hist_attacked = histogram(trace.attacked.values)

    unfair = trace.attacked.unfair_only().values
    honest = trace.honest.values
    if unfair.size:
        honest_frequency = histogram(honest) / max(1, honest.size)
        common_levels = {
            float(level)
            for level, freq in zip(levels, honest_frequency)
            if freq >= 0.05
        }
        overlap = float(
            np.mean([config.scale.quantize(v) in common_levels for v in unfair])
        )
    else:
        overlap = 0.0

    return RawRatingsResult(
        trace=trace,
        histogram_bins=levels,
        histogram_honest=hist_honest,
        histogram_attacked=hist_attacked,
        overlap_fraction=overlap,
    )


def format_report(result: RawRatingsResult) -> str:
    """Human-readable report of the Fig. 2/3 series."""
    lines = [
        "Fig. 2/3 -- illustrative raw ratings and histograms",
        f"  honest ratings: {len(result.trace.honest)}",
        f"  attacked-stream ratings: {len(result.trace.attacked)} "
        f"({result.trace.n_unfair} unfair)",
        f"  unfair ratings on common honest levels: "
        f"{100 * result.overlap_fraction:.0f}% (value alone cannot separate)",
        "  level | honest | attacked",
    ]
    for level, h, a in zip(
        result.histogram_bins, result.histogram_honest, result.histogram_attacked
    ):
        lines.append(f"  {level:5.1f} | {h:6d} | {a:8d}")
    return "\n".join(lines)
