"""Section III-B.2 case study: comparing the four aggregation methods.

Setup (paper): 10 honest raters with trust ~ N(0.95, 0.05) and ratings
~ N(0.8, 0.05); 10 collaborative raters (1:1 ratio) with trust
~ N(0.6, 0.1) and ratings ~ N(0.4, 0.02); no filtering; 500 runs.  The
desired aggregate is the honest mean, 0.8.

Paper's table:  method 1 = 0.6365, method 2 = 0.6138, method 3 = 0.7445,
method 4 = 0.5985.  The reproducible *shape* is that the modified
weighted average (method 3) stays far closer to 0.8 than every
alternative, which all collapse toward ~0.6 under a 50 % collaborator
mix.  The paper reads the distribution parameters as variances; since
Gaussian(0.8, var 0.05) clips noticeably at 1.0, we also expose a
``std`` interpretation for sensitivity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.aggregation.methods import PAPER_METHODS
from repro.errors import ConfigurationError
from repro.evaluation.montecarlo import monte_carlo

__all__ = ["PAPER_TABLE1", "Table1Config", "Table1Result", "run", "format_report"]

PAPER_TABLE1 = {1: 0.6365, 2: 0.6138, 3: 0.7445, 4: 0.5985}


@dataclass(frozen=True)
class Table1Config:
    """Parameters of the case study (paper defaults)."""

    n_honest: int = 10
    collaborator_ratio: float = 1.0
    honest_trust_mean: float = 0.95
    honest_trust_var: float = 0.05
    collab_trust_mean: float = 0.6
    collab_trust_var: float = 0.1
    honest_rating_mean: float = 0.8
    honest_rating_var: float = 0.05
    collab_rating_mean: float = 0.4
    collab_rating_var: float = 0.02
    spread_is_std: bool = False

    def __post_init__(self) -> None:
        if self.n_honest < 1:
            raise ConfigurationError(f"n_honest must be >= 1, got {self.n_honest}")
        if self.collaborator_ratio < 0:
            raise ConfigurationError(
                f"collaborator_ratio must be >= 0, got {self.collaborator_ratio}"
            )

    @property
    def n_collaborative(self) -> int:
        return int(round(self.n_honest * self.collaborator_ratio))

    def _std(self, spread: float) -> float:
        return float(spread) if self.spread_is_std else float(np.sqrt(spread))

    def draw(self, rng: np.random.Generator) -> tuple:
        """One scenario draw: (values, trusts) clipped to [0, 1]."""
        n_c = self.n_collaborative
        trusts = np.concatenate(
            (
                rng.normal(
                    self.honest_trust_mean,
                    self._std(self.honest_trust_var),
                    self.n_honest,
                ),
                rng.normal(
                    self.collab_trust_mean, self._std(self.collab_trust_var), n_c
                ),
            )
        )
        values = np.concatenate(
            (
                rng.normal(
                    self.honest_rating_mean,
                    self._std(self.honest_rating_var),
                    self.n_honest,
                ),
                rng.normal(
                    self.collab_rating_mean, self._std(self.collab_rating_var), n_c
                ),
            )
        )
        return np.clip(values, 0.0, 1.0), np.clip(trusts, 0.0, 1.0)


@dataclass(frozen=True)
class Table1Result:
    """Mean aggregated rating per method.

    Attributes:
        aggregates: method number (1-4) -> mean aggregated rating.
        desired: the aggregate a perfect system would output (honest mean).
        n_runs: repetitions.
    """

    aggregates: Dict[int, float]
    desired: float
    n_runs: int

    def best_method(self) -> int:
        """The method whose aggregate lands closest to the desired value."""
        return min(
            self.aggregates, key=lambda m: abs(self.aggregates[m] - self.desired)
        )


def run(
    n_runs: int = 500, seed: int = 0, config: Table1Config | None = None
) -> Table1Result:
    """Run the comparison; returns mean aggregates over all repetitions."""
    config = config if config is not None else Table1Config()
    methods = {number: cls() for number, cls in PAPER_METHODS.items()}

    def one_run(rng: np.random.Generator) -> Dict[int, float]:
        values, trusts = config.draw(rng)
        return {
            number: method.aggregate(values, trusts)
            for number, method in methods.items()
        }

    results = monte_carlo(one_run, n_runs=n_runs, master_seed=seed)
    aggregates = {
        number: results.mean_of(lambda o, n=number: o[n]) for number in methods
    }
    return Table1Result(
        aggregates=aggregates, desired=config.honest_rating_mean, n_runs=n_runs
    )


def format_report(result: Table1Result) -> str:
    """Paper-vs-measured table."""
    names = {
        1: "simple average",
        2: "beta function aggregation",
        3: "modified weighted average",
        4: "Sun et al. trust model",
    }
    lines = [
        f"Section III-B.2 aggregation comparison "
        f"({result.n_runs} runs, desired = {result.desired:.2f})",
        "  method                        | paper  | measured",
    ]
    for number in sorted(result.aggregates):
        lines.append(
            f"  {number}. {names[number]:<27} | {PAPER_TABLE1[number]:.4f} | "
            f"{result.aggregates[number]:.4f}"
        )
    lines.append(
        f"  closest to desired: method {result.best_method()} "
        "(paper: method 3)"
    )
    return "\n".join(lines)
