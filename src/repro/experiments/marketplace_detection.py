"""Figs. 6-9: marketplace trust evolution and unfair-rating detection.

One 12-month marketplace run with the paper's detection-experiment
scaling (a1 = 6, a2 = 0.5).  Produces:

* Fig. 6 -- per-class mean trust by month,
* Figs. 7/8 -- trust snapshots at months 6 and 12, with rater-level
  detection and false-alarm rates at threshold_sus = 0.5,
* Fig. 9 -- per-month unfair-rating detection and fair-rating false
  alarm ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.evaluation.detection import RaterDetectionStats
from repro.evaluation.textplot import line_chart
from repro.ratings.models import RaterClass
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace
from repro.simulation.pipeline import MarketplaceRun, PipelineConfig, run_marketplace

__all__ = [
    "PAPER_DETECTION_MONTH6",
    "PAPER_DETECTION_MONTH12",
    "MarketplaceDetectionResult",
    "run",
    "format_report",
]

PAPER_DETECTION_MONTH6 = 0.72
PAPER_DETECTION_MONTH12 = 0.87


@dataclass(frozen=True)
class MarketplaceDetectionResult:
    """Everything Figs. 6-9 plot.

    Attributes:
        run_data: the underlying pipeline run (world + system).
        mean_trust: rater class -> 12-entry mean-trust series (Fig. 6).
        snapshot_month6 / snapshot_month12: rater_id -> trust
            (Figs. 7/8 scatter data).
        detection_month6 / detection_month12: rater-level stats at
            threshold 0.5.
        monthly_rating_detection: Fig. 9 rows (month, detection ratio,
            false-alarm ratio).
    """

    run_data: MarketplaceRun
    mean_trust: Dict[RaterClass, np.ndarray]
    snapshot_month6: Dict[int, float]
    snapshot_month12: Dict[int, float]
    detection_month6: RaterDetectionStats
    detection_month12: RaterDetectionStats
    monthly_rating_detection: List[Dict[str, float]]


def run(
    seed: int = 0,
    config: MarketplaceConfig | None = None,
    pipeline: PipelineConfig | None = None,
) -> MarketplaceDetectionResult:
    """Generate and evaluate one detection-experiment marketplace."""
    config = config if config is not None else MarketplaceConfig(a1=6.0, a2=0.5)
    pipeline = pipeline if pipeline is not None else PipelineConfig()
    world = generate_marketplace(config, np.random.default_rng(seed))
    run_data = run_marketplace(world, pipeline)
    last = config.n_months - 1
    mid = min(5, last)
    return MarketplaceDetectionResult(
        run_data=run_data,
        mean_trust=run_data.mean_trust_by_class(),
        snapshot_month6=run_data.trust_snapshot(mid),
        snapshot_month12=run_data.trust_snapshot(last),
        detection_month6=run_data.rater_detection_at(mid),
        detection_month12=run_data.rater_detection_at(last),
        monthly_rating_detection=run_data.rating_detection_by_month(),
    )


def format_report(result: MarketplaceDetectionResult) -> str:
    """Paper-vs-measured report for Figs. 6-9."""
    lines = ["Figs. 6-9 -- marketplace trust evolution and detection"]
    lines.append("  Fig. 6 mean trust by month:")
    for cls, series in sorted(result.mean_trust.items(), key=lambda kv: kv[0].value):
        lines.append(
            f"    {cls.value:<24} " + " ".join(f"{v:.2f}" for v in series)
        )
    chart = line_chart(
        {cls.value: series for cls, series in result.mean_trust.items()},
        height=8,
        y_min=0.0,
        y_max=1.0,
    )
    lines.extend("    " + row for row in chart.splitlines())
    d6, d12 = result.detection_month6, result.detection_month12
    fa6 = max(d6.false_alarm_rates.values(), default=0.0)
    fa12 = max(d12.false_alarm_rates.values(), default=0.0)
    lines += [
        f"  Fig. 7 (month 6) : detection paper {PAPER_DETECTION_MONTH6:.2f} | "
        f"measured {d6.detection_rate:.2f}; worst false alarm {fa6:.3f} (paper <= 0.03)",
        f"  Fig. 8 (month 12): detection paper {PAPER_DETECTION_MONTH12:.2f} | "
        f"measured {d12.detection_rate:.2f}; worst false alarm {fa12:.3f} (paper 0.00)",
        "  Fig. 9 per-month rating-level detection / false alarm:",
    ]
    for row in result.monthly_rating_detection:
        lines.append(
            f"    month {int(row['month']):2d}: detection "
            f"{row['detection_ratio']:.2f}, false alarm {row['false_alarm_ratio']:.3f}"
        )
    return "\n".join(lines)
