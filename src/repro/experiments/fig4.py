"""Fig. 4: moving averages and the AR model-error drop.

Top plot: moving average (20-rating windows, step 10) of (1) honest
ratings, (2) all ratings, (3) ratings surviving the beta filter --
showing the campaign lifts the average and the filter barely helps.
Bottom plot: AR model error (50-rating windows) with and without the
collaborative raters -- the error drops visibly inside the attack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.ar_detector import ARModelErrorDetector
from repro.filters.beta_quantile import BetaQuantileFilter
from repro.filters.base import WindowedFilter
from repro.signal.windows import CountWindower, moving_average
from repro.simulation.illustrative import (
    IllustrativeConfig,
    IllustrativeTrace,
    generate_illustrative,
)

__all__ = [
    "ILLUSTRATIVE_AR_THRESHOLD",
    "Fig4Result",
    "build_illustrative_detector",
    "run",
    "format_report",
]

#: Calibrated model-error threshold for the illustrative experiment
#: (the paper's 0.02 refers to Matlab covm scaling; see DESIGN.md §5).
ILLUSTRATIVE_AR_THRESHOLD = 0.10


def build_illustrative_detector(
    threshold: float = ILLUSTRATIVE_AR_THRESHOLD,
    order: int = 4,
) -> ARModelErrorDetector:
    """The Fig. 4 detector: 50-rating windows stepping by 10."""
    return ARModelErrorDetector(
        order=order,
        threshold=threshold,
        scale=1.0,
        level_rule="literal",
        windower=CountWindower(size=50, step=10),
    )


@dataclass(frozen=True)
class Fig4Result:
    """All series of Fig. 4."""

    trace: IllustrativeTrace
    avg_times_honest: np.ndarray
    avg_honest: np.ndarray
    avg_times_attacked: np.ndarray
    avg_attacked: np.ndarray
    avg_times_filtered: np.ndarray
    avg_filtered: np.ndarray
    err_times_honest: np.ndarray
    err_honest: np.ndarray
    err_times_attacked: np.ndarray
    err_attacked: np.ndarray

    @property
    def attack_error_drop(self) -> float:
        """Mean honest error divided by the minimum attacked error --
        the bottom plot's visible dip, as one number (>1 = drop)."""
        return float(np.mean(self.err_honest) / np.min(self.err_attacked))

    @property
    def peak_average_lift(self) -> float:
        """Max lift of the attacked moving average over the honest one
        inside the attack interval (top plot's message)."""
        config = self.trace.config
        mask = (self.avg_times_attacked >= config.attack_start) & (
            self.avg_times_attacked <= config.attack_end
        )
        if not mask.any():
            return 0.0
        honest_level = np.interp(
            self.avg_times_attacked[mask], self.avg_times_honest, self.avg_honest
        )
        return float(np.max(self.avg_attacked[mask] - honest_level))


def run(
    seed: int = 0,
    config: IllustrativeConfig | None = None,
    threshold: float = ILLUSTRATIVE_AR_THRESHOLD,
) -> Fig4Result:
    """Compute every Fig. 4 series from one generated trace."""
    config = config if config is not None else IllustrativeConfig()
    rng = np.random.default_rng(seed)
    trace = generate_illustrative(config, rng)

    t_h, m_h = moving_average(trace.honest.times, trace.honest.values, size=20, step=10)
    t_a, m_a = moving_average(
        trace.attacked.times, trace.attacked.values, size=20, step=10
    )
    beta_filter = WindowedFilter(
        BetaQuantileFilter(sensitivity=0.1), window_length=30.0
    )
    kept = beta_filter.filter(trace.attacked).kept
    t_f, m_f = moving_average(kept.times, kept.values, size=20, step=10)

    detector = build_illustrative_detector(threshold=threshold)
    e_t_h, e_h = detector.error_series(trace.honest)
    e_t_a, e_a = detector.error_series(trace.attacked)

    return Fig4Result(
        trace=trace,
        avg_times_honest=t_h,
        avg_honest=m_h,
        avg_times_attacked=t_a,
        avg_attacked=m_a,
        avg_times_filtered=t_f,
        avg_filtered=m_f,
        err_times_honest=e_t_h,
        err_honest=e_h,
        err_times_attacked=e_t_a,
        err_attacked=e_a,
    )


def format_report(result: Fig4Result) -> str:
    """Human-readable Fig. 4 report."""
    config = result.trace.config
    lines = [
        "Fig. 4 -- moving average and AR model error",
        f"  attack interval: days [{config.attack_start}, {config.attack_end})",
        f"  peak moving-average lift during attack: "
        f"{result.peak_average_lift:+.3f} (beta filter leaves it largely intact)",
        f"  honest model error mean: {np.mean(result.err_honest):.3f}",
        f"  attacked model error minimum: {np.min(result.err_attacked):.3f}",
        f"  error drop factor: {result.attack_error_drop:.1f}x",
        "  time | err(no CR) || time | err(with CR)",
    ]
    for i in range(max(result.err_honest.size, result.err_attacked.size)):
        left = (
            f"{result.err_times_honest[i]:5.1f} | {result.err_honest[i]:.3f}"
            if i < result.err_honest.size
            else "             "
        )
        right = (
            f"{result.err_times_attacked[i]:5.1f} | {result.err_attacked[i]:.3f}"
            if i < result.err_attacked.size
            else ""
        )
        lines.append(f"  {left} || {right}")
    return "\n".join(lines)
