"""Fig. 5: the AR detector on (synthetic) Netflix movie data.

The paper injects collaborative ratings into the Netflix title
*Dinosaur Planet* with ``A_start = 212``, ``A_end = 272``,
``biasshift1 = 0.2``, ``recruitpower1 = 0.5``, ``biasshift2 = 0.25``,
``recruitpower2 = 1`` and ``badVar = 0.25 * goodVar`` (``goodVar`` the
original trace's variance), then plots the AR model error on the
original and the attacked trace.  The Prize data is gone, so we run
the identical recipe on the synthetic Netflix-like trace (DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.campaign import CollusionCampaign
from repro.attacks.injection import estimate_trace_statistics, inject_campaign
from repro.data.netflix import DINOSAUR_PLANET, NetflixTraceConfig, generate_netflix_trace
from repro.detectors.ar_detector import ARModelErrorDetector
from repro.ratings.scales import FIVE_STAR
from repro.ratings.stream import RatingStream
from repro.signal.windows import CountWindower

__all__ = ["Fig5Result", "run", "format_report"]


@dataclass(frozen=True)
class Fig5Result:
    """Model-error series on original and attacked movie traces.

    Attributes:
        original: the synthetic movie trace.
        attacked: the trace after the paper's injection recipe.
        times_original / errors_original: AR error series (raw trace).
        times_attacked / errors_attacked: AR error series (attacked).
        attack_start / attack_end: the injected campaign interval.
    """

    original: RatingStream
    attacked: RatingStream
    times_original: np.ndarray
    errors_original: np.ndarray
    times_attacked: np.ndarray
    errors_attacked: np.ndarray
    attack_start: float
    attack_end: float

    @property
    def error_drop(self) -> float:
        """Mean original error over the attacked minimum inside the
        campaign window (>1 means the dip is visible, Fig. 5's claim)."""
        mask = (self.times_attacked >= self.attack_start) & (
            self.times_attacked <= self.attack_end
        )
        if not mask.any():
            return 1.0
        return float(
            np.mean(self.errors_original) / np.min(self.errors_attacked[mask])
        )


def run(
    seed: int = 0,
    trace_config: NetflixTraceConfig | None = None,
    attack_start: float = 212.0,
    attack_end: float = 272.0,
    window_size: int = 50,
    window_step: int = 10,
    order: int = 4,
) -> Fig5Result:
    """Generate the movie trace, inject the campaign, run the detector."""
    trace_config = trace_config if trace_config is not None else DINOSAUR_PLANET
    rng = np.random.default_rng(seed)
    original = generate_netflix_trace(trace_config, rng)
    stats = estimate_trace_statistics(original)
    campaign = CollusionCampaign(
        start=attack_start,
        end=attack_end,
        type1_bias=0.2,
        type1_power=0.5,
        type2_bias=0.25,
        type2_variance=0.25 * stats.variance,
        type2_power=1.0,
    )
    attacked = inject_campaign(original, campaign, FIVE_STAR, rng)

    detector = ARModelErrorDetector(
        order=order,
        threshold=0.02,  # only error_series is used; no flagging here
        windower=CountWindower(size=window_size, step=window_step),
    )
    t_o, e_o = detector.error_series(original)
    t_a, e_a = detector.error_series(attacked)
    return Fig5Result(
        original=original,
        attacked=attacked,
        times_original=t_o,
        errors_original=e_o,
        times_attacked=t_a,
        errors_attacked=e_a,
        attack_start=attack_start,
        attack_end=attack_end,
    )


def format_report(result: Fig5Result) -> str:
    """Human-readable Fig. 5 report."""
    mask = (result.times_attacked >= result.attack_start) & (
        result.times_attacked <= result.attack_end
    )
    lines = [
        "Fig. 5 -- AR model error on (synthetic) Netflix movie data",
        f"  original ratings: {len(result.original)}; after injection: "
        f"{len(result.attacked)}",
        f"  attack interval: days [{result.attack_start}, {result.attack_end})",
        f"  original error mean: {np.mean(result.errors_original):.3f}",
        f"  attacked error min inside attack: "
        f"{np.min(result.errors_attacked[mask]) if mask.any() else float('nan'):.3f}",
        f"  error drop factor: {result.error_drop:.1f}x "
        "(paper: error drops significantly during the campaign)",
    ]
    return "\n".join(lines)
