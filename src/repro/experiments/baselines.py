"""Baseline comparison: existing schemes vs. the moderate-bias attack.

The paper's Section IV-B punchline: "Surprisingly, no existing
algorithms are able to detect collaborative unfair raters that use
their second strategy... the detection ratios are all 0."

This experiment runs the literature baselines -- the beta-quantile
filter, the entropy-change detector, 2-means clustering, and
endorsement quality -- against both collusion strategies on the
illustrative trace, alongside the AR detector, and reports rating-level
detection and false-alarm ratios for each.

Two further comparison points beyond the paper's list: classic CUSUM
mean change-point detection (the obvious textbook alternative for a
temporal attack -- it sees *some* of the moderate-bias campaign but at
several times the AR detector's false-alarm cost) and a variance-ratio
oracle (isolating the variance-drop component of the AR statistic).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

import numpy as np

from repro.detectors.changepoint import CusumDetector, VarianceRatioDetector
from repro.detectors.clustering import ClusteringDetector
from repro.detectors.endorsement import EndorsementDetector
from repro.detectors.entropy import EntropyChangeDetector
from repro.evaluation.detection import ConfusionCounts, rating_detection
from repro.evaluation.montecarlo import monte_carlo
from repro.experiments.fig4 import build_illustrative_detector
from repro.filters.beta_quantile import BetaQuantileFilter
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative

__all__ = ["BaselineComparisonResult", "run", "format_report"]

#: Strategy presets: the moderate-bias boost the paper targets, and a
#: large-bias downgrade attack ("criticize the competitor") with modest
#: recruitment -- the regime the paper says existing schemes handle
#: ("when M is not too large").  A large *positive* bias on a 0.7-0.8
#: quality object saturates at the scale's top level, where clipped
#: honest ratings already sit, so the downgrade direction is the clean
#: test of strategy 1.
STRATEGIES = {
    "moderate_bias": dict(bias_shift1=0.2, bias_shift2=0.15, bad_var=0.02),
    "large_bias": dict(
        bias_shift1=-0.4,
        bias_shift2=-0.5,
        bad_var=0.02,
        recruit_power1=0.15,
        recruit_power2=0.3,
    ),
}


@dataclass(frozen=True)
class BaselineComparisonResult:
    """detector -> strategy -> pooled confusion counts."""

    table: Dict[str, Dict[str, ConfusionCounts]]
    n_runs: int


def _detectors(scale) -> Dict[str, object]:
    return {
        "ar_model_error": build_illustrative_detector(),
        "entropy_change": EntropyChangeDetector(scale=scale),
        "clustering": ClusteringDetector(),
        "endorsement": EndorsementDetector(),
        "cusum": CusumDetector(),
        "variance_ratio": VarianceRatioDetector(),
    }


def run(
    n_runs: int = 20, seed: int = 0, config: IllustrativeConfig | None = None
) -> BaselineComparisonResult:
    """Run every detector against every strategy, pooling confusions."""
    base = config if config is not None else IllustrativeConfig()
    table: Dict[str, Dict[str, ConfusionCounts]] = {}

    for strategy_name, overrides in STRATEGIES.items():
        scenario = replace(base, **overrides)

        def one_run(rng: np.random.Generator) -> Dict[str, ConfusionCounts]:
            trace = generate_illustrative(scenario, rng)
            outcome: Dict[str, ConfusionCounts] = {}
            for name, detector in _detectors(scenario.scale).items():
                report = detector.detect(trace.attacked)
                outcome[name] = rating_detection(
                    trace.attacked, report.flagged_rating_ids
                )
            # The beta filter is not a SuspicionDetector; treat removal
            # as flagging.
            removed = BetaQuantileFilter(sensitivity=0.1).filter(trace.attacked)
            outcome["beta_filter"] = rating_detection(
                trace.attacked, removed.removed_ids
            )
            return outcome

        results = monte_carlo(one_run, n_runs=n_runs, master_seed=seed)
        for outcome in results.outcomes:
            for detector_name, counts in outcome.items():
                slot = table.setdefault(detector_name, {})
                slot[strategy_name] = slot.get(
                    strategy_name, ConfusionCounts()
                ).merged(counts)

    return BaselineComparisonResult(table=table, n_runs=n_runs)


def format_report(result: BaselineComparisonResult) -> str:
    """Detection/false-alarm table across detectors and strategies."""
    lines = [
        f"Baseline comparison ({result.n_runs} runs per strategy)",
        "  detector          | strategy       | detection | false alarm",
    ]
    for detector_name in sorted(result.table):
        for strategy_name in ("large_bias", "moderate_bias"):
            counts = result.table[detector_name].get(strategy_name)
            if counts is None:
                continue
            lines.append(
                f"  {detector_name:<17} | {strategy_name:<14} | "
                f"{counts.detection_ratio:9.3f} | {counts.false_alarm_ratio:11.3f}"
            )
    lines.append(
        "  paper's claim: only the AR detector catches moderate_bias; "
        "baselines sit near zero detection on it"
    )
    return "\n".join(lines)
