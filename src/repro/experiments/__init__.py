"""One module per paper artifact, plus a registry for the CLI.

Each experiment module exposes ``run(...)`` returning a structured
result and ``format_report(result)`` rendering the paper-vs-measured
comparison the benches and the CLI print.
"""

from repro.experiments import (
    adaptive_attacks,
    collusion_groups,
    baselines,
    detection500,
    ensemble_zoo,
    forgetting,
    individual_unfair,
    sensitivity,
    vouching,
    whitewashing,
    fig2_fig3,
    fig4,
    fig5_netflix,
    marketplace_aggregation,
    marketplace_detection,
    table1,
)

#: CLI name -> (runner, reporter, description).
REGISTRY = {
    "fig2-fig3": (
        fig2_fig3.run,
        fig2_fig3.format_report,
        "raw illustrative ratings and histograms",
    ),
    "fig4": (
        fig4.run,
        fig4.format_report,
        "moving averages and the AR model-error drop",
    ),
    "detection": (
        detection500.run,
        detection500.format_report,
        "500-run detection / false-alarm ratios",
    ),
    "fig5": (
        fig5_netflix.run,
        fig5_netflix.format_report,
        "AR model error on the synthetic Netflix trace",
    ),
    "table1": (
        table1.run,
        table1.format_report,
        "aggregation-method comparison (Section III-B.2)",
    ),
    "fig6-fig9": (
        marketplace_detection.run,
        marketplace_detection.format_report,
        "marketplace trust evolution and detection",
    ),
    "fig10-fig12": (
        marketplace_aggregation.run,
        marketplace_aggregation.format_report,
        "marketplace aggregation robustness",
    ),
    "baselines": (
        baselines.run,
        baselines.format_report,
        "baseline detectors vs. both collusion strategies",
    ),
    "adaptive-attacks": (
        adaptive_attacks.run,
        adaptive_attacks.format_report,
        "adaptive attacks against the AR detector (extension)",
    ),
    "forgetting": (
        forgetting.run,
        forgetting.format_report,
        "forgetting scheme under behaviour switches (extension)",
    ),
    "whitewashing": (
        whitewashing.run,
        whitewashing.format_report,
        "whitewashing vs. the newcomer-prior defense (extension)",
    ),
    "sensitivity": (
        sensitivity.run,
        sensitivity.format_report,
        "detectability surface over attack bias and power (extension)",
    ),
    "vouching": (
        vouching.run,
        vouching.format_report,
        "self-promotion rings vs. bridge attacks on indirect trust (extension)",
    ),
    "collusion-groups": (
        collusion_groups.run,
        collusion_groups.format_report,
        "collusion-group recovery from co-suspicion structure (extension)",
    ),
    "individual-unfair": (
        individual_unfair.run,
        individual_unfair.format_report,
        "individual vs. collaborative unfairness (Section II-B claim)",
    ),
    "ensemble-zoo": (
        ensemble_zoo.run,
        ensemble_zoo.format_report,
        "attack zoo: AR-only vs the online detector ensemble (extension)",
    ),
}

__all__ = [
    "REGISTRY",
    "adaptive_attacks",
    "collusion_groups",
    "baselines",
    "forgetting",
    "individual_unfair",
    "whitewashing",
    "sensitivity",
    "vouching",
    "detection500",
    "ensemble_zoo",
    "fig2_fig3",
    "fig4",
    "fig5_netflix",
    "marketplace_aggregation",
    "marketplace_detection",
    "table1",
]
