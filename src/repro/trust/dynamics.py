"""Analytical trust dynamics: expected trajectories and detection time.

Procedure 2 makes a rater's trust a deterministic function of its
accumulated evidence, so *expected* trajectories have a closed form.
For a rater whose per-interval behaviour is stationary --

* ``honest_rate``   fair ratings per interval,
* ``unfair_rate``   campaign ratings per interval,
* ``filter_rate``   fraction of their ratings the filter removes,
* ``flag_rate``     probability a campaign rating lands in a flagged
  window,
* ``level``         suspicion level charged per flagged rating,
* ``badness``       Procedure 2's ``b``

-- the expected evidence increments per interval are

    dS = honest_rate * (1 - filter_rate) + unfair_rate * (1 - flag_rate)
    dF = (honest_rate + unfair_rate) * filter_rate
         + badness * level * unfair_rate * flag_rate

and with forgetting factor ``gamma`` the evidence converges to the
geometric-series fixed point ``dX / (1 - gamma)``.  These helpers
compute expected trust over time, its asymptote, and the first interval
at which expected trust crosses the detection threshold -- the design
calculator behind the marketplace parameter choices (DESIGN.md §5) and
the forgetting experiment's predictions, validated against simulation
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.trust.records import beta_trust

__all__ = ["BehaviourProfile", "expected_trust_trajectory", "asymptotic_trust", "detection_interval"]


@dataclass(frozen=True)
class BehaviourProfile:
    """Stationary per-interval behaviour of one rater class.

    Attributes mirror the module docstring's rates; all must be
    non-negative, with ``filter_rate``/``flag_rate`` in [0, 1].
    """

    honest_rate: float
    unfair_rate: float = 0.0
    filter_rate: float = 0.0
    flag_rate: float = 0.0
    level: float = 1.0
    badness: float = 1.0

    def __post_init__(self) -> None:
        if self.honest_rate < 0 or self.unfair_rate < 0:
            raise ConfigurationError("rates must be >= 0")
        for name in ("filter_rate", "flag_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
        if self.level < 0 or self.badness < 0:
            raise ConfigurationError("level and badness must be >= 0")

    @property
    def success_increment(self) -> float:
        """Expected dS per interval."""
        return (
            self.honest_rate * (1.0 - self.filter_rate)
            + self.unfair_rate * (1.0 - self.flag_rate)
        )

    @property
    def failure_increment(self) -> float:
        """Expected dF per interval."""
        filtered = (self.honest_rate + self.unfair_rate) * self.filter_rate
        flagged = self.badness * self.level * self.unfair_rate * self.flag_rate
        return filtered + flagged


def expected_trust_trajectory(
    profile: BehaviourProfile,
    n_intervals: int,
    forgetting_factor: float = 1.0,
    initial_successes: float = 0.0,
    initial_failures: float = 0.0,
) -> np.ndarray:
    """Expected trust after each of ``n_intervals`` updates.

    Follows Procedure 2's order of operations: forgetting is applied
    first, then the interval's evidence lands, then trust is read.
    """
    if n_intervals < 1:
        raise ConfigurationError(f"n_intervals must be >= 1, got {n_intervals}")
    if not 0.0 <= forgetting_factor <= 1.0:
        raise ConfigurationError(
            f"forgetting_factor must lie in [0, 1], got {forgetting_factor}"
        )
    s = float(initial_successes)
    f = float(initial_failures)
    trajectory = np.empty(n_intervals)
    for k in range(n_intervals):
        s = s * forgetting_factor + profile.success_increment
        f = f * forgetting_factor + profile.failure_increment
        trajectory[k] = beta_trust(s, f)
    return trajectory


def asymptotic_trust(
    profile: BehaviourProfile, forgetting_factor: float = 1.0
) -> float:
    """The trust value the expected trajectory converges to.

    Without forgetting, evidence grows without bound and trust tends to
    ``dS / (dS + dF)``; with forgetting the evidence itself converges to
    ``dX / (1 - gamma)`` and the prior keeps a permanent footprint.
    """
    ds = profile.success_increment
    df = profile.failure_increment
    if forgetting_factor >= 1.0:
        total = ds + df
        if total <= 0.0:
            return 0.5
        return ds / total
    scale = 1.0 / (1.0 - forgetting_factor)
    return beta_trust(ds * scale, df * scale)


def detection_interval(
    profile: BehaviourProfile,
    threshold: float = 0.5,
    forgetting_factor: float = 1.0,
    initial_successes: float = 0.0,
    initial_failures: float = 0.0,
    max_intervals: int = 10000,
) -> int | None:
    """First interval at which expected trust falls below ``threshold``.

    Returns:
        The 1-based interval index, or None when the expected
        trajectory never crosses (e.g. the asymptote sits above the
        threshold -- the "trust shield" regime the forgetting
        experiment demonstrates).
    """
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError(f"threshold must lie in (0, 1), got {threshold}")
    trajectory = expected_trust_trajectory(
        profile,
        n_intervals=max_intervals,
        forgetting_factor=forgetting_factor,
        initial_successes=initial_successes,
        initial_failures=initial_failures,
    )
    below = np.flatnonzero(trajectory < threshold)
    if below.size == 0:
        return None
    return int(below[0]) + 1
