"""Indirect trust via propagation over a recommendation graph.

When raters vote on each other's usefulness (the Recommendation Buffer
of Fig. 1), the system can establish *indirect* trust in raters it has
little direct evidence about.  The graph's nodes are raters plus the
distinguished ``SYSTEM`` node; edge weights are recommendation scores
mapped to entropy-trust values.  Indirect trust in a target fuses all
short paths from the system with the framework's concatenation and
multipath rules.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import networkx as nx

from repro.errors import ConfigurationError
from repro.trust.entropy_trust import concatenate, entropy_trust, multipath

__all__ = ["SYSTEM_NODE", "RecommendationGraph"]

#: Node id of the trust-establishing system itself.
SYSTEM_NODE = -1


class RecommendationGraph:
    """Directed recommendation graph with trust propagation.

    Args:
        max_path_length: longest recommendation chain considered
            (default 3 hops; long chains carry vanishing information
            because concatenated trust shrinks multiplicatively).
    """

    def __init__(self, max_path_length: int = 3) -> None:
        if max_path_length < 1:
            raise ConfigurationError(
                f"max_path_length must be >= 1, got {max_path_length}"
            )
        self.max_path_length = int(max_path_length)
        self._graph = nx.DiGraph()
        self._graph.add_node(SYSTEM_NODE)

    def set_system_trust(self, rater_id: int, probability: float) -> None:
        """Set the system's direct recommendation trust in a rater.

        Args:
            rater_id: the trusted rater.
            probability: probability the rater recommends correctly
                (beta trust value from the rater's record).
        """
        self._set_edge(SYSTEM_NODE, rater_id, probability)

    def add_recommendation(
        self, source_id: int, target_id: int, score: float
    ) -> None:
        """Record a rater-on-rater recommendation (score in [0, 1])."""
        if source_id == target_id:
            raise ConfigurationError("self-recommendations are not allowed")
        self._set_edge(source_id, target_id, score)

    def _set_edge(self, source: int, target: int, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"probability must lie in [0, 1], got {probability}"
            )
        self._graph.add_edge(source, target, trust=entropy_trust(probability))

    @property
    def n_raters(self) -> int:
        return self._graph.number_of_nodes() - 1

    def paths_to(self, target_id: int) -> List[Sequence[int]]:
        """All simple paths SYSTEM -> target up to the length cap."""
        if target_id not in self._graph:
            return []
        return list(
            nx.all_simple_paths(
                self._graph, SYSTEM_NODE, target_id, cutoff=self.max_path_length
            )
        )

    def indirect_trust(self, target_id: int) -> float:
        """Entropy-trust in a target fused over all recommendation paths.

        Each path concatenates edge trusts left to right; parallel paths
        are fused by multipath weighting, where a path's weight is the
        concatenated trust of its *recommendation prefix* (everything
        but the final edge).

        Returns:
            Entropy trust in ``[-1, 1]``; 0 when no path exists.
        """
        paths = self.paths_to(target_id)
        if not paths:
            return 0.0
        prefix_trusts: List[float] = []
        path_trusts: List[float] = []
        for path in paths:
            edges = list(zip(path[:-1], path[1:]))
            prefix = 1.0
            for source, dest in edges[:-1]:
                prefix = concatenate(prefix, self._graph[source][dest]["trust"])
            final_source, final_dest = edges[-1]
            final_trust = self._graph[final_source][final_dest]["trust"]
            prefix_trusts.append(prefix)
            path_trusts.append(concatenate(prefix, final_trust) if edges[:-1] else final_trust)
        return multipath(prefix_trusts, path_trusts)

    def indirect_trust_table(self, rater_ids: Sequence[int]) -> Dict[int, float]:
        """Indirect entropy trust for a batch of raters."""
        return {rid: self.indirect_trust(rid) for rid in rater_ids}
