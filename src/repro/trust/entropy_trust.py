"""Entropy-based trust (Sun et al., INFOCOM 2006).

The cited framework measures trust as the information the subject has
about the agent's behaviour:

    T(p) = 1 - H(p)   for p >= 0.5
    T(p) = H(p) - 1   for p <  0.5

where ``p`` is the probability the agent behaves well and ``H`` is the
binary entropy.  Trust lives in ``[-1, 1]``: 0 means maximal
uncertainty, negative values mean distrust.  Propagation follows the
framework's two rules: **concatenation** multiplies trust along a
recommendation path, and **multipath** fuses parallel paths by
recommendation-trust weighting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "binary_entropy",
    "entropy_trust",
    "entropy_trust_inverse",
    "concatenate",
    "multipath",
]


def binary_entropy(p: float) -> float:
    """Binary entropy ``H(p)`` in bits; ``H(0) = H(1) = 0``."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"probability must lie in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return float(-p * np.log2(p) - (1.0 - p) * np.log2(1.0 - p))


def entropy_trust(p: float) -> float:
    """Entropy trust value of a behaviour probability ``p``.

    Monotone in ``p``, ranging from -1 (p = 0, certain misbehaviour)
    through 0 (p = 0.5, no information) to +1 (p = 1).
    """
    h = binary_entropy(p)
    return 1.0 - h if p >= 0.5 else h - 1.0


def entropy_trust_inverse(t: float, tolerance: float = 1e-10) -> float:
    """Invert :func:`entropy_trust` by bisection.

    Args:
        t: entropy trust in ``[-1, 1]``.
        tolerance: bisection stopping width.

    Returns:
        The probability ``p`` with ``entropy_trust(p) == t``.
    """
    if not -1.0 <= t <= 1.0:
        raise ConfigurationError(f"entropy trust must lie in [-1, 1], got {t}")
    if abs(t) <= tolerance:
        return 0.5
    # Solve on the upper branch and mirror for distrust.
    target = abs(t)
    lo, hi = 0.5, 1.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if 1.0 - binary_entropy(mid) < target:
            lo = mid
        else:
            hi = mid
    p = 0.5 * (lo + hi)
    return p if t > 0 else 1.0 - p


def concatenate(recommendation_trust: float, remote_trust: float) -> float:
    """Trust through a recommendation path (framework rule 1).

    ``A -> B -> C``: A's trust in C is B's reported trust in C scaled by
    A's recommendation trust in B.  Propagation through a distrusted or
    uncertain recommender yields no information (clipped at 0 from
    below: the framework does not let a liar *invert* information).
    """
    for name, value in (("recommendation_trust", recommendation_trust),
                        ("remote_trust", remote_trust)):
        if not -1.0 <= value <= 1.0:
            raise ConfigurationError(f"{name} must lie in [-1, 1], got {value}")
    return max(recommendation_trust, 0.0) * remote_trust


def multipath(
    recommendation_trusts: Sequence[float],
    remote_trusts: Sequence[float],
) -> float:
    """Fuse parallel recommendation paths (framework rule 2).

    Paths are combined as an average weighted by the (non-negative part
    of the) recommendation trusts; with no informative path the result
    is 0 (no information).
    """
    recs = np.asarray(recommendation_trusts, dtype=float)
    remotes = np.asarray(remote_trusts, dtype=float)
    if recs.shape != remotes.shape:
        raise ConfigurationError(
            f"need parallel sequences, got {recs.shape} and {remotes.shape}"
        )
    for name, arr in (("recommendation_trusts", recs), ("remote_trusts", remotes)):
        if arr.size and (float(np.min(arr)) < -1.0 or float(np.max(arr)) > 1.0):
            raise ConfigurationError(f"{name} values must lie in [-1, 1]")
    weights = np.clip(recs, 0.0, None)
    total = float(np.sum(weights))
    if total <= 0.0:
        return 0.0
    return float(np.dot(weights, remotes) / total)
