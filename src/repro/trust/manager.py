"""The trust manager (right half of Fig. 1).

Orchestrates the observation buffer, Procedure 2 trust updates, record
maintenance (initialization + forgetting), malicious-rater detection,
and -- when recommendations are available -- indirect trust through the
recommendation graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError, UnknownRaterError
from repro.trust.buffers import ObservationBuffer, RecommendationBuffer
from repro.trust.entropy_trust import entropy_trust_inverse
from repro.trust.propagation import RecommendationGraph
from repro.trust.records import RecordMaintenance, TrustRecord

__all__ = ["TrustManagerConfig", "TrustManager"]


@dataclass(frozen=True)
class TrustManagerConfig:
    """Knobs of the trust manager.

    Attributes:
        badness_weight: Procedure 2's ``b`` -- relative badness of a
            suspicious rating versus a filtered rating (paper: 1.0).
        detection_threshold: raters whose trust falls below this are
            declared malicious (paper: threshold_sus = 0.5).
        forgetting_factor: exponential evidence discount per update
            (1.0 = no forgetting, the Section IV setting).
        indirect_weight: blend factor for indirect trust when
            recommendations exist: ``T = (1 - w) * direct + w * indirect``.
    """

    badness_weight: float = 1.0
    detection_threshold: float = 0.5
    forgetting_factor: float = 1.0
    indirect_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.badness_weight < 0:
            raise ConfigurationError(
                f"badness_weight must be >= 0, got {self.badness_weight}"
            )
        if not 0.0 <= self.detection_threshold <= 1.0:
            raise ConfigurationError(
                f"detection_threshold must lie in [0, 1], got {self.detection_threshold}"
            )
        if not 0.0 <= self.forgetting_factor <= 1.0:
            raise ConfigurationError(
                f"forgetting_factor must lie in [0, 1], got {self.forgetting_factor}"
            )
        if not 0.0 <= self.indirect_weight <= 1.0:
            raise ConfigurationError(
                f"indirect_weight must lie in [0, 1], got {self.indirect_weight}"
            )


class TrustManager:
    """Maintains trust in raters from buffered observations (Procedure 2)."""

    def __init__(self, config: Optional[TrustManagerConfig] = None) -> None:
        self.config = config if config is not None else TrustManagerConfig()
        self.observations = ObservationBuffer()
        self.recommendations = RecommendationBuffer()
        self.maintenance = RecordMaintenance(
            forgetting_factor=self.config.forgetting_factor
        )
        self._records: Dict[int, TrustRecord] = {}
        self._n_updates = 0

    # -- registration and lookup ------------------------------------------

    def register_rater(self, rater_id: int) -> TrustRecord:
        """Ensure a record exists for the rater (idempotent)."""
        if rater_id not in self._records:
            self._records[rater_id] = self.maintenance.new_record(rater_id)
        return self._records[rater_id]

    def register_raters(self, rater_ids: Iterable[int]) -> None:
        for rater_id in rater_ids:
            self.register_rater(rater_id)

    def record(self, rater_id: int) -> TrustRecord:
        try:
            return self._records[rater_id]
        except KeyError:
            raise UnknownRaterError(f"rater {rater_id} has no trust record") from None

    def trust(self, rater_id: int) -> float:
        """Current trust in a rater; unseen raters sit at the 0.5 prior."""
        record = self._records.get(rater_id)
        return record.trust if record is not None else 0.5

    def trust_table(self) -> Dict[int, float]:
        """rater_id -> current trust for every known rater."""
        return {rid: record.trust for rid, record in self._records.items()}

    @property
    def n_updates(self) -> int:
        return self._n_updates

    @property
    def rater_ids(self) -> List[int]:
        return sorted(self._records)

    # -- Procedure 2 --------------------------------------------------------

    def update(self) -> Dict[int, float]:
        """Drain the observation buffer and apply Procedure 2.

        For each rater with buffered observations in the elapsed
        interval:

            F_i += f_i + b * C_i
            S_i += n_i - f_i - s_i

        Raters without observations keep their evidence but still get a
        history checkpoint, so trust trajectories stay aligned across
        raters.

        Returns:
            rater_id -> post-update trust for all known raters.
        """
        self.maintenance.apply_forgetting(self._records)
        drained = self.observations.drain()
        for rater_id, obs in drained.items():
            record = self.register_rater(rater_id)
            failure_increment = obs.n_filtered + self.config.badness_weight * obs.suspicion_value
            success_increment = obs.n_provided - obs.n_filtered - obs.n_suspicious
            record.add_evidence(successes=success_increment, failures=failure_increment)
        for record in self._records.values():
            record.checkpoint()
        self._n_updates += 1
        return self.trust_table()

    # -- indirect trust ------------------------------------------------------

    def build_recommendation_graph(self) -> RecommendationGraph:
        """Construct the recommendation graph from buffered votes.

        The system's recommendation trust in each known rater is the
        rater's current beta trust; buffered rater-on-rater scores form
        the remaining edges.  The buffer is drained.
        """
        graph = RecommendationGraph()
        for rater_id, record in self._records.items():
            graph.set_system_trust(rater_id, record.trust)
        for rec in self.recommendations.drain():
            graph.add_recommendation(rec.source_id, rec.target_id, rec.score)
        return graph

    def blended_trust(self, rater_id: int, graph: RecommendationGraph) -> float:
        """Blend direct and indirect trust per the configured weight."""
        direct = self.trust(rater_id)
        w = self.config.indirect_weight
        if w <= 0.0:
            return direct
        indirect_probability = entropy_trust_inverse(graph.indirect_trust(rater_id))
        return (1.0 - w) * direct + w * indirect_probability

    # -- malicious rater detection -------------------------------------------

    def detected_malicious(self) -> List[int]:
        """Raters whose trust is below the detection threshold."""
        return sorted(
            rid
            for rid, record in self._records.items()
            if record.trust < self.config.detection_threshold
        )
