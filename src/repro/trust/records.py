"""Per-rater trust records and record maintenance.

A :class:`TrustRecord` accumulates beta-function evidence: ``S``
successful (fair) observations and ``F`` failed (unfair) observations,
with trust ``(S + 1) / (S + F + 2)``.  The Record Maintenance module of
Fig. 1 is realized by :class:`RecordMaintenance`: initialization of new
raters at the neutral prior and an exponential forgetting scheme so
that observations collected long ago weigh less than recent ones (an
honest rater may become compromised, and vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError

__all__ = ["beta_trust", "TrustRecord", "RecordMaintenance"]


def beta_trust(successes: float, failures: float) -> float:
    """Beta-function trust value ``(S + 1) / (S + F + 2)``.

    The +1/+2 terms are the uniform Beta(1, 1) prior: a rater with no
    history sits at the neutral trust 0.5.
    """
    if successes < 0 or failures < 0:
        raise ConfigurationError(
            f"evidence counts must be >= 0, got S={successes}, F={failures}"
        )
    return (successes + 1.0) / (successes + failures + 2.0)


@dataclass
class TrustRecord:
    """Evidence and trust history for one rater.

    Attributes:
        rater_id: the rater this record tracks.
        successes: accumulated fair-behaviour evidence ``S``.
        failures: accumulated unfair-behaviour evidence ``F``.
        history: trust value recorded at each checkpoint (one entry per
            trust-manager update).
    """

    rater_id: int
    successes: float = 0.0
    failures: float = 0.0
    history: List[float] = field(default_factory=list)

    @property
    def trust(self) -> float:
        """Current beta trust value."""
        return beta_trust(self.successes, self.failures)

    def add_evidence(self, successes: float, failures: float) -> None:
        """Accumulate new evidence (clipped at zero from below).

        Procedure 2 computes the success increment as ``n - f - s``,
        which is guaranteed non-negative when the inputs are consistent;
        clipping protects the record against inconsistent observations.
        """
        self.successes = max(0.0, self.successes + successes)
        self.failures = max(0.0, self.failures + failures)

    def forget(self, factor: float) -> None:
        """Exponentially discount old evidence by ``factor`` in [0, 1]."""
        if not 0.0 <= factor <= 1.0:
            raise ConfigurationError(f"forgetting factor must lie in [0, 1], got {factor}")
        self.successes *= factor
        self.failures *= factor

    def checkpoint(self) -> float:
        """Append the current trust to the history and return it."""
        value = self.trust
        self.history.append(value)
        return value


class RecordMaintenance:
    """Initialization and forgetting policy for a table of trust records.

    Args:
        forgetting_factor: multiplier applied to all evidence at each
            maintenance step; 1.0 disables forgetting (the Section IV
            simulations run without it), smaller values make the system
            react faster to behaviour changes.
        initial_successes: prior evidence given to a brand-new rater
            (0 keeps the neutral 0.5 start used in the paper).
        initial_failures: see ``initial_successes``.
    """

    def __init__(
        self,
        forgetting_factor: float = 1.0,
        initial_successes: float = 0.0,
        initial_failures: float = 0.0,
    ) -> None:
        if not 0.0 <= forgetting_factor <= 1.0:
            raise ConfigurationError(
                f"forgetting factor must lie in [0, 1], got {forgetting_factor}"
            )
        if initial_successes < 0 or initial_failures < 0:
            raise ConfigurationError("initial evidence must be >= 0")
        self.forgetting_factor = float(forgetting_factor)
        self.initial_successes = float(initial_successes)
        self.initial_failures = float(initial_failures)

    def new_record(self, rater_id: int) -> TrustRecord:
        """Create an initialized record for a newly seen rater."""
        return TrustRecord(
            rater_id=rater_id,
            successes=self.initial_successes,
            failures=self.initial_failures,
        )

    def apply_forgetting(self, records: Dict[int, TrustRecord]) -> None:
        """Discount every record's evidence by the forgetting factor."""
        if self.forgetting_factor >= 1.0:
            return
        for record in records.values():
            record.forget(self.forgetting_factor)
