"""Observation and recommendation buffers (Fig. 1).

The observation buffer accumulates, per rater and per update interval,
the quantities Procedure 2 consumes:

* ``n_i`` -- ratings provided,
* ``f_i`` -- ratings removed by the rating filter,
* ``s_i`` -- (non-filtered) ratings lying in at least one suspicious
  interval,
* ``C_i`` -- the suspicion value from Procedure 1.

The recommendation buffer stores rater-on-rater usefulness votes (the
"was this review helpful?" signal some real systems expose), consumed
by the indirect-trust module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import ConfigurationError

__all__ = ["RaterObservation", "ObservationBuffer", "RecommendationBuffer"]


@dataclass
class RaterObservation:
    """Per-interval behavioural observation of one rater."""

    n_provided: int = 0
    n_filtered: int = 0
    n_suspicious: int = 0
    suspicion_value: float = 0.0

    def merge(self, other: "RaterObservation") -> None:
        self.n_provided += other.n_provided
        self.n_filtered += other.n_filtered
        self.n_suspicious += other.n_suspicious
        self.suspicion_value += other.suspicion_value


class ObservationBuffer:
    """Accumulates rater observations until the trust manager drains it."""

    def __init__(self) -> None:
        self._observations: Dict[int, RaterObservation] = {}

    def _get(self, rater_id: int) -> RaterObservation:
        if rater_id not in self._observations:
            self._observations[rater_id] = RaterObservation()
        return self._observations[rater_id]

    def record_provided(self, rater_id: int, count: int = 1) -> None:
        """Record that a rater provided ``count`` ratings."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self._get(rater_id).n_provided += count

    def record_filtered(self, rater_id: int, count: int = 1) -> None:
        """Record that ``count`` of a rater's ratings were filtered out."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self._get(rater_id).n_filtered += count

    def record_suspicious(self, rater_id: int, count: int = 1) -> None:
        """Record ratings that fell inside at least one suspicious interval."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self._get(rater_id).n_suspicious += count

    def record_suspicion_value(self, rater_id: int, value: float) -> None:
        """Accumulate Procedure 1 suspicion ``C(i)``."""
        if value < 0:
            raise ConfigurationError(f"suspicion value must be >= 0, got {value}")
        self._get(rater_id).suspicion_value += value

    def drain(self) -> Dict[int, RaterObservation]:
        """Return and clear all buffered observations."""
        observations = self._observations
        self._observations = {}
        return observations

    def peek(self, rater_id: int) -> RaterObservation:
        """Non-destructive read of one rater's buffered observation."""
        return self._observations.get(rater_id, RaterObservation())

    def __len__(self) -> int:
        return len(self._observations)


@dataclass(frozen=True)
class Recommendation:
    """One rater's usefulness vote on another rater."""

    source_id: int
    target_id: int
    score: float  # in [0, 1]: 1 = fully useful, 0 = useless

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ConfigurationError(f"score must lie in [0, 1], got {self.score}")
        if self.source_id == self.target_id:
            raise ConfigurationError("self-recommendations are not allowed")


class RecommendationBuffer:
    """Accumulates rater-on-rater recommendations."""

    def __init__(self) -> None:
        self._recommendations: List[Recommendation] = []

    def record(self, source_id: int, target_id: int, score: float) -> None:
        self._recommendations.append(
            Recommendation(source_id=source_id, target_id=target_id, score=score)
        )

    def drain(self) -> List[Recommendation]:
        recommendations = self._recommendations
        self._recommendations = []
        return recommendations

    def __len__(self) -> int:
        return len(self._recommendations)

    def __iter__(self) -> Iterator[Recommendation]:
        return iter(self._recommendations)

    def edges(self) -> List[Tuple[int, int, float]]:
        """(source, target, score) triples for graph construction."""
        return [(r.source_id, r.target_id, r.score) for r in self._recommendations]
