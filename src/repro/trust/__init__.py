"""Trust establishment: records, Procedure 2, entropy trust, propagation."""

from repro.trust.buffers import ObservationBuffer, RaterObservation, RecommendationBuffer
from repro.trust.entropy_trust import (
    binary_entropy,
    concatenate,
    entropy_trust,
    entropy_trust_inverse,
    multipath,
)
from repro.trust.dynamics import (
    BehaviourProfile,
    asymptotic_trust,
    detection_interval,
    expected_trust_trajectory,
)
from repro.trust.manager import TrustManager, TrustManagerConfig
from repro.trust.propagation import SYSTEM_NODE, RecommendationGraph
from repro.trust.records import RecordMaintenance, TrustRecord, beta_trust

__all__ = [
    "ObservationBuffer",
    "RaterObservation",
    "RecommendationBuffer",
    "binary_entropy",
    "concatenate",
    "entropy_trust",
    "entropy_trust_inverse",
    "multipath",
    "BehaviourProfile",
    "asymptotic_trust",
    "detection_interval",
    "expected_trust_trajectory",
    "TrustManager",
    "TrustManagerConfig",
    "SYSTEM_NODE",
    "RecommendationGraph",
    "RecordMaintenance",
    "TrustRecord",
    "beta_trust",
]
