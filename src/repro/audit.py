"""Audit a rating-trace file for collaborative manipulation.

The production-facing entry point: load a trace (CSV or JSON Lines, as
written by :mod:`repro.ratings.io` or exported from a real system), run
the AR detector over it, and report the suspicious intervals, the most
suspicious raters, and -- when the file carries ground-truth labels --
the detection score.  Exposed on the command line as ``repro audit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

import numpy as np

from repro.detectors.ar_detector import ARModelErrorDetector
from repro.errors import ConfigurationError, EmptyWindowError
from repro.evaluation.detection import ConfusionCounts, rating_detection
from repro.evaluation.roc import calibrate_threshold
from repro.evaluation.textplot import sparkline
from repro.ratings.io import read_csv, read_jsonl
from repro.ratings.stream import RatingStream
from repro.signal.windows import CountWindower

__all__ = ["AuditResult", "audit_stream", "audit_file", "format_audit"]


@dataclass(frozen=True)
class AuditResult:
    """Outcome of auditing one trace.

    Attributes:
        stream: the audited trace.
        threshold: the model-error threshold used (auto-calibrated to
            the trace's own error distribution unless overridden).
        error_times / errors: the windowed model-error series.
        suspicious_intervals: (start, end, min_error) per flagged span
            (consecutive flagged windows merged).
        top_raters: (rater_id, suspicion) pairs, most suspicious first.
        ground_truth: detection confusion when the trace carries
            ``unfair`` labels, else None.
    """

    stream: RatingStream
    threshold: float
    error_times: np.ndarray
    errors: np.ndarray
    suspicious_intervals: Tuple[Tuple[float, float, float], ...]
    top_raters: Tuple[Tuple[int, float], ...]
    ground_truth: ConfusionCounts | None


def _merge_intervals(verdicts) -> List[Tuple[float, float, float]]:
    """Merge consecutive/overlapping flagged windows into spans."""
    spans: List[Tuple[float, float, float]] = []
    for verdict in verdicts:
        if not verdict.suspicious:
            continue
        start = verdict.window.start_time
        end = verdict.window.end_time
        err = verdict.statistic
        if spans and start <= spans[-1][1]:
            prev_start, prev_end, prev_err = spans[-1]
            spans[-1] = (prev_start, max(prev_end, end), min(prev_err, err))
        else:
            spans.append((start, end, err))
    return spans


def audit_stream(
    stream: RatingStream,
    threshold: float | None = None,
    window_size: int = 50,
    window_step: int = 10,
    order: int = 4,
    calibration_quantile: float = 0.05,
    top_n: int = 10,
) -> AuditResult:
    """Run the AR audit over a loaded trace.

    Args:
        stream: the trace to audit (needs at least one full window).
        threshold: model-error threshold; when None it is calibrated to
            the given quantile of the trace's own window errors (a
            self-referential budget: ~that fraction of windows flag).
        window_size / window_step / order: detector shape.
        calibration_quantile: quantile used for auto-calibration.
        top_n: how many raters to report.
    """
    if len(stream) < window_size:
        raise EmptyWindowError(
            f"trace has {len(stream)} ratings; auditing needs at least "
            f"one full window of {window_size}"
        )
    probe = ARModelErrorDetector(
        order=order,
        threshold=0.5,  # placeholder; only error_series is used here
        windower=CountWindower(size=window_size, step=window_step),
    )
    times, errors = probe.error_series(stream)
    if errors.size == 0:
        raise EmptyWindowError("no analyzable windows in the trace")
    if threshold is None:
        threshold = calibrate_threshold(errors, quantile=calibration_quantile)
    detector = ARModelErrorDetector(
        order=order,
        threshold=threshold,
        scale=1.0,
        level_rule="literal",
        windower=CountWindower(size=window_size, step=window_step),
    )
    report = detector.detect(stream)
    spans = _merge_intervals(report.verdicts)
    top = sorted(
        report.rater_suspicion.items(), key=lambda kv: kv[1], reverse=True
    )[:top_n]
    ground_truth = (
        rating_detection(stream, report.flagged_rating_ids)
        if stream.unfair_flags.any()
        else None
    )
    return AuditResult(
        stream=stream,
        threshold=float(threshold),
        error_times=times,
        errors=errors,
        suspicious_intervals=tuple(spans),
        top_raters=tuple(top),
        ground_truth=ground_truth,
    )


def audit_file(path, **kwargs) -> AuditResult:
    """Load a CSV or JSONL trace and audit it."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"trace file not found: {path}")
    if path.suffix.lower() == ".csv":
        stream = read_csv(path)
    elif path.suffix.lower() in (".jsonl", ".ndjson", ".json"):
        stream = read_jsonl(path)
    else:
        raise ConfigurationError(
            f"unsupported trace format {path.suffix!r}; use .csv or .jsonl"
        )
    return audit_stream(stream, **kwargs)


def format_audit(result: AuditResult) -> str:
    """Human-readable audit report."""
    span = result.stream.times
    lines = [
        f"audited {len(result.stream)} ratings over "
        f"days {span.min():.1f}-{span.max():.1f}",
        f"model-error threshold: {result.threshold:.3f} "
        f"({result.errors.size} windows)",
        f"error series: {sparkline(result.errors)}",
    ]
    if result.suspicious_intervals:
        lines.append("suspicious intervals:")
        for start, end, err in result.suspicious_intervals:
            lines.append(
                f"  days {start:7.1f} - {end:7.1f}  (min error {err:.3f})"
            )
    else:
        lines.append("no suspicious intervals at this threshold")
    if result.top_raters:
        lines.append("most suspicious raters (id: accumulated suspicion):")
        lines.append(
            "  " + ", ".join(f"{rid}: {c:.1f}" for rid, c in result.top_raters)
        )
    if result.ground_truth is not None:
        gt = result.ground_truth
        lines.append(
            f"ground truth present: detection {gt.detection_ratio:.2f}, "
            f"false alarm {gt.false_alarm_ratio:.2f}, "
            f"precision {gt.precision:.2f}"
        )
    return "\n".join(lines)
