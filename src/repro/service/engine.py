"""The sharded streaming rating engine (the service's core).

:class:`RatingEngine` turns the library's batch primitives into a
long-running, thread-safe serving component:

* **Sharding** -- products are hashed across ``n_shards`` independently
  locked shards, each owning its slice of the rating store, its
  instances of the configured detector ensemble
  (:mod:`repro.service.ensemble`), and the pending observation tallies
  for its raters.  Unrelated products never contend on a lock.
* **Detector ensemble** -- every accepted rating is observed by each
  enabled :class:`~repro.service.ensemble.OnlineSuspicionSource`; at
  flush time their per-rater suspicion masses are merged by the
  configured combiner and fed to Procedure 2.  The default config
  enables only the AR source, which reproduces the pre-ensemble
  engine bit-for-bit (see
  :class:`~repro.service.ensemble.ar_source.ARSuspicionSource`).
* **Batched trust updates** -- per-rater observations (ratings
  provided, suspicion charged by the sources) accumulate in the shard
  and are flushed into the global
  :class:`~repro.trust.manager.TrustManager` every
  ``batch_max_ratings`` ingests or ``batch_max_seconds`` of wall time,
  amortizing Procedure 2 over many ratings.
* **Durability** -- accepted ratings are appended to a segmented
  write-ahead log *before* touching in-memory state; :meth:`snapshot`
  persists the bounded engine state (ensemble state included) and
  :meth:`recover` rebuilds a crashed engine bit-for-bit by replaying
  the WAL over the latest snapshot.
* **Tiered storage** -- with ``store_backend="tiered"`` each shard's
  rating rows live in a sqlite cold tier (one file per shard under
  ``wal_dir/store/``) plus per-product numpy hot windows, keyed by
  WAL sequence number.  Because the cold tier is durable, snapshots
  garbage-collect the WAL segments they cover, so disk, memory, and
  recovery time stay proportional to the suffix since the last
  snapshot -- never to total history.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from repro.aggregation.methods import ModifiedWeightedAverage
from repro.errors import ConfigurationError, UnknownProductError
from repro.ratings.backend import InMemoryBackend, RatingStoreBackend
from repro.ratings.models import Product, RaterClass, RaterProfile, Rating
from repro.ratings.store import RatingStore
from repro.ratings.tiered import TieredRatingBackend
from repro.service.config import ServiceConfig
from repro.service.ensemble import build_sources
from repro.service.ensemble.ar_source import ARSuspicionSource
from repro.service.ensemble.base import COMBINERS, OnlineSuspicionSource
from repro.service.metrics import MetricsRegistry
from repro.service.wal import (
    WriteAheadLog,
    latest_snapshot,
    list_snapshots,
    prune_snapshots,
    read_snapshot,
    replay_wal_meta,
    write_snapshot,
)
from repro.trust.manager import TrustManager, TrustManagerConfig

__all__ = ["RatingEngine", "SubmitResult"]

# Durability contracts (checked by lint rules DP02/SD03): an accepted
# rating reaches the WAL before any store mutation; a snapshot fsyncs
# the WAL before writing and only GCs segments the written snapshot
# covers; keys added in snapshot v2 must load with defaults so v1
# snapshots on disk still recover.
__effect_contracts__ = {
    "orderings": {
        "RatingEngine._ingest": [["wal_append", "store_add"]],
        "RatingEngine.snapshot": [
            ["wal_fsync", "snapshot_write"],
            ["snapshot_write", "wal_gc"],
        ],
    },
    "state_keys_since": {
        "RatingEngine": {
            "suspicion_totals": 2,
            "n_trust_updates": 2,
            "client_meta": 2,
        },
    },
}


@dataclass(frozen=True)
class SubmitResult:
    """Outcome of one :meth:`RatingEngine.submit` call.

    Attributes:
        accepted: False when the rating was rejected (and not logged).
        seq: global sequence number of an accepted rating (its WAL
            position when durability is enabled).
        reason: human-readable rejection reason for refused ratings.
        flagged: True when this rating's arrival triggered a suspicious
            window verdict.
        queued: True when the rating was durably logged and enqueued
            for asynchronous processing (cluster ingest) rather than
            fully applied before the ack; ``flagged`` is then always
            False because detection runs after the ack.
    """

    accepted: bool
    seq: Optional[int] = None
    reason: Optional[str] = None
    flagged: bool = False
    queued: bool = False


@dataclass
class _ScoreCacheEntry:
    """Incremental per-product score aggregates (shard lock held).

    Valid only while ``epoch`` matches the engine's trust-flush epoch:
    every trust update can move every rater's weight, so a flush
    invalidates all entries at once (lazily, by the epoch check).
    Within an epoch trusts are constant, so each accepted rating folds
    into the sums with its rater's current weight and the cached score
    equals a full re-aggregation.

    Attributes:
        epoch: trust-flush epoch the aggregates were computed under.
        n: ratings folded into the sums.
        weight_sum: ``sum(max(T_i - floor, 0))``.
        weighted_value_sum: ``sum(max(T_i - floor, 0) * x_i)``.
        value_sum: ``sum(x_i)`` -- the all-at-or-below-floor fallback.
    """

    epoch: int
    n: int
    weight_sum: float
    weighted_value_sum: float
    value_sum: float

    def score(self) -> float:
        if self.weight_sum > 0.0:
            return self.weighted_value_sum / self.weight_sum
        return self.value_sum / self.n


class _ReadWriteGate:
    """Many concurrent ingests, one exclusive snapshotter."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            while self._writer:
                self._cond.wait()
            self._writer = True
            while self._readers:
                self._cond.wait()
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class _Shard:
    """One lock domain: a slice of products and their streaming state."""

    # Lint contract (CC03): all mutable shard state is owned by `lock`.
    _GUARDED_BY = {
        "store": "lock",
        "sources": "lock",
        "score_cache": "lock",
        "last_time": "lock",
        "pending_provided": "lock",
        "since_flush": "lock",
        "last_flush": "lock",
        "n_accepted": "lock",
        "n_rejected": "lock",
        "n_evaluations": "lock",
        "n_flagged": "lock",
    }

    def __init__(
        self,
        index: int,
        config: ServiceConfig,
        backend: Optional[RatingStoreBackend] = None,
    ) -> None:
        self.index = index
        self.config = config
        self.lock = threading.RLock()
        self.store = RatingStore(backend=backend)
        # The shard's own instances of the configured detector
        # ensemble, in config order (= flush/combine order).
        self.sources: Dict[str, OnlineSuspicionSource] = build_sources(config)
        self.ar: Optional[ARSuspicionSource] = self.sources.get("ar")  # type: ignore[assignment]
        self.score_cache: Dict[int, "_ScoreCacheEntry"] = {}
        self.last_time: Dict[int, float] = {}
        self.pending_provided: Dict[int, int] = {}
        self.since_flush = 0
        self.last_flush = time.monotonic()
        self.n_accepted = 0
        self.n_rejected = 0
        self.n_evaluations = 0
        self.n_flagged = 0


class RatingEngine:
    """Thread-safe sharded front end over the rating/trust pipeline.

    Args:
        config: service knobs (defaults to :class:`ServiceConfig`).
        metrics: registry to record observability metrics into; a
            private registry is created when omitted (exposed as
            :attr:`metrics` either way).
        trust_delegate: when set, the engine runs in **cluster-worker
            mode**: instead of applying trust flushes to its own
            :class:`~repro.trust.manager.TrustManager`, each flush is
            packaged as a digest dict (``seq``/``provided``/
            ``suspicion``/``flagged``) and handed to this callable,
            which must return the authoritative rater->trust table.
            The returned table is installed as a read mirror serving
            :meth:`trust`, :meth:`trust_table`, :meth:`score`
            weighting, and :meth:`detected_malicious`.  Digest ``seq``
            equals the engine's trust-update counter, which is
            deterministic under WAL replay, so the receiver can
            deduplicate redelivered digests after a crash.
    """

    # Lint contract (CC03): cross-shard state and its owning locks.
    _GUARDED_BY = {
        "trust_manager": "_trust_lock",
        "_n_trust_updates": "_trust_lock",
        "_trust_epoch": "_trust_lock",
        "_suspicion_totals": "_trust_lock",
        "_trust_mirror": "_trust_lock",
        "_n_accepted": "_count_lock",
    }

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        trust_delegate: Optional[Callable[[dict], Dict[int, float]]] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.aggregator = ModifiedWeightedAverage()
        self.trust_manager = TrustManager(
            config=TrustManagerConfig(
                badness_weight=self.config.trust_badness_weight,
                detection_threshold=self.config.trust_detection_threshold,
                forgetting_factor=self.config.trust_forgetting_factor,
            )
        )
        self._trust_lock = threading.Lock()
        self._trust_delegate = trust_delegate
        # Cluster-worker mode: the last trust table the delegate
        # returned (authoritative values live in the coordinator).
        self._trust_mirror: Dict[int, float] = {}
        # Opaque client bookkeeping persisted with every snapshot; the
        # cluster worker records the coordinator sequence number it has
        # processed through here, so redelivery after recovery can skip
        # entries the snapshot already covers.
        self.client_meta: Dict[str, int] = {}
        self._gate = _ReadWriteGate()
        self._count_lock = threading.Lock()
        self._n_accepted = 0
        self._n_trust_updates = 0
        self._combine = COMBINERS[self.config.ensemble_combiner]
        self._source_weights = self.config.source_weights
        # Combined suspicion mass ever flushed per rater -- the
        # engine-level detector statistic (see suspicion_table()).
        self._suspicion_totals: Dict[int, float] = {}
        # Bumped on every trust flush: score-cache entries from older
        # epochs were aggregated under stale trusts and are invalid.
        self._trust_epoch = 0
        self._started = time.monotonic()
        # The tiered backend's sqlite files are durable only alongside
        # a WAL directory; that combination is what licenses WAL
        # segment GC (recovery reads the prefix from sqlite, not the log).
        self._durable_store = (
            self.config.store_backend == "tiered" and self.config.wal_dir is not None
        )
        self._shards = [
            _Shard(i, self.config, backend=self._build_backend(i))
            for i in range(self.config.n_shards)
        ]
        self._recovering = False

        m = self.metrics
        self._m_latency = m.histogram(
            "repro_ingest_latency_seconds", "Wall time spent per submit() call."
        )
        self._m_accepted = m.counter(
            "repro_ratings_accepted_total", "Ratings accepted (and WAL-logged)."
        )
        self._m_rejected = m.counter(
            "repro_ratings_rejected_total", "Ratings refused at ingest."
        )
        self._m_refits = m.counter(
            "repro_ar_refits_total", "Streaming AR model evaluations."
        )
        self._m_flagged = m.counter(
            "repro_windows_flagged_total", "Suspicious window verdicts emitted."
        )
        self._m_trust_updates = m.counter(
            "repro_trust_updates_total", "Trust manager flushes (Procedure 2 runs)."
        )
        self._m_score_hits = m.counter(
            "repro_score_cache_hits_total",
            "score() calls answered from the incremental aggregate cache.",
        )
        self._m_score_misses = m.counter(
            "repro_score_cache_misses_total",
            "score() calls that re-aggregated the product's ratings.",
        )
        self._m_fsync = m.histogram(
            "repro_wal_fsync_seconds", "Duration of WAL fsync calls."
        )
        self._m_wal_segments = m.gauge(
            "repro_wal_segments", "WAL segment files currently on disk."
        )
        self._m_store_hot = m.gauge(
            "repro_store_hot_ratings",
            "Ratings resident in the hot storage tier across shards.",
        )
        self._m_store_cold = m.gauge(
            "repro_store_cold_ratings",
            "Ratings committed to the cold storage tier across shards.",
        )
        self._m_active_products = m.gauge(
            "repro_active_products", "Products with streaming detector state."
        )
        self._m_queue_depth = [
            m.gauge(
                "repro_shard_queue_depth",
                "Ratings pending in a shard since its last trust flush.",
                labels={"shard": str(i)},
            )
            for i in range(self.config.n_shards)
        ]
        self._m_suspicion = {
            name: m.gauge(
                "repro_ensemble_suspicion",
                "Suspicion mass emitted by a source at its latest flush.",
                labels={"source": name},
            )
            for name in self.config.ensemble_sources
        }
        self._m_flush_latency = {
            name: m.histogram(
                "repro_ensemble_flush_seconds",
                "Wall time of one source's flush() call.",
                labels={"source": name},
            )
            for name in self.config.ensemble_sources
        }
        self._m_evictions = {
            name: m.counter(
                "repro_ensemble_evictions_total",
                "Bounded-memory LRU evictions inside a source.",
                labels={"source": name},
            )
            for name in self.config.ensemble_sources
        }
        for shard in self._shards:
            self._wire_shard(shard)

        self.wal: Optional[WriteAheadLog] = None
        if self.config.wal_dir is not None:
            self.wal = WriteAheadLog(
                Path(self.config.wal_dir),
                fsync_every=self.config.wal_fsync_every,
                segment_entries=self.config.wal_segment_entries,
                on_fsync=self._m_fsync.observe,
                on_rotate=self._m_wal_segments.set,
            )
            self._m_wal_segments.set(self.wal.n_segments)

    def _build_backend(self, index: int) -> RatingStoreBackend:
        """One shard's rating-row storage engine, per the config."""
        if self.config.store_backend != "tiered":
            return InMemoryBackend()
        path: Optional[Path] = None
        if self.config.wal_dir is not None:
            path = Path(self.config.wal_dir) / "store" / f"shard-{index:03d}.sqlite"
        return TieredRatingBackend(
            path=path, hot_window=self.config.resolved_hot_window
        )

    def _wire_shard(self, shard: _Shard) -> None:
        """Point a shard's sources at the engine's metrics/counters.

        Callbacks run under the shard lock (observe/flush hold it), so
        touching shard counters here is safe.
        """
        for name, source in shard.sources.items():
            source.on_eviction = self._m_evictions[name].inc
        ar = shard.ar
        if ar is not None:

            def on_evaluation() -> None:
                shard.n_evaluations += 1
                self._m_refits.inc()

            def on_flag() -> None:
                shard.n_flagged += 1
                self._m_flagged.inc()

            ar.on_evaluation = on_evaluation
            ar.on_flag = on_flag
            ar.on_new_product = self._m_active_products.inc

    # -- routing -----------------------------------------------------------

    def _shard_for(self, product_id: int) -> _Shard:
        return self._shards[hash(product_id) % len(self._shards)]

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def n_accepted(self) -> int:
        with self._count_lock:
            return self._n_accepted

    # -- ingest ------------------------------------------------------------

    def submit(self, rating: Rating, wal_meta: Optional[dict] = None) -> SubmitResult:
        """Ingest one rating: log, store, detect, and batch-update trust.

        Rejections (a rating older than the product's newest rating)
        are reported in the result, never raised -- a serving loop must
        not die on one bad client.

        ``wal_meta`` is an optional JSON-serializable dict stored with
        the rating's WAL entry (see :meth:`WriteAheadLog.append`); the
        cluster worker threads its coordinator sequence number through
        here.
        """
        start = time.perf_counter()
        with self._gate.read():
            result = self._ingest(rating, log=True, wal_meta=wal_meta)
        self._m_latency.observe(time.perf_counter() - start)
        if (
            result.accepted
            and self.wal is not None
            and self.config.snapshot_every
            and not self._recovering
            and (result.seq + 1) % self.config.snapshot_every == 0
        ):
            self.snapshot()
        return result

    def submit_many(self, ratings: Iterable[Rating]) -> List[SubmitResult]:
        """Ingest a batch; returns one result per rating."""
        return [self.submit(rating) for rating in ratings]

    def _ingest(
        self,
        rating: Rating,
        log: bool,
        seq: Optional[int] = None,
        wal_meta: Optional[dict] = None,
    ) -> SubmitResult:
        shard = self._shard_for(rating.product_id)
        with shard.lock:
            last = shard.last_time.get(rating.product_id)
            if last is not None and rating.time < last:
                shard.n_rejected += 1
                self._m_rejected.inc()
                return SubmitResult(
                    accepted=False,
                    reason=(
                        f"out-of-order rating for product {rating.product_id}: "
                        f"{rating.time} after {last}"
                    ),
                )
            if log and self.wal is not None:
                seq = self.wal.append(rating, meta=wal_meta)
            with self._count_lock:
                if seq is None:
                    seq = self._n_accepted
            flagged = self._apply(shard, rating, seq)
            with self._count_lock:
                self._n_accepted += 1
        self._m_accepted.inc()
        return SubmitResult(accepted=True, seq=seq, flagged=flagged)

    def _apply(self, shard: _Shard, rating: Rating, seq: int) -> bool:
        """Store + detect + tally one accepted rating (shard lock held).

        ``seq`` is the rating's global log position; a durable backend
        keys its cold-tier row by it, which is what makes recovery's
        suffix re-ingest idempotent.
        """
        pid, rid = rating.product_id, rating.rater_id
        if not shard.store.has_product(pid):
            shard.store.add_product(Product(product_id=pid, quality=0.5))
        if not shard.store.has_rater(rid):
            shard.store.add_rater(
                RaterProfile(rater_id=rid, rater_class=RaterClass.RELIABLE)
            )
        shard.store.add_rating(rating, seq=seq)

        entry = shard.score_cache.get(pid)
        if entry is not None:
            # Trusts are constant within an epoch, so a current entry
            # absorbs the new rating at its rater's current weight and
            # stays equal to a full re-aggregation; a stale entry is
            # dropped (the next score() repopulates it).
            with self._trust_lock:
                epoch = self._trust_epoch
                trust = self._trust_value(rid)
            if entry.epoch == epoch:
                weight = max(trust - self.aggregator.floor, 0.0)
                entry.n += 1
                entry.weight_sum += weight
                entry.weighted_value_sum += weight * rating.value
                entry.value_sum += rating.value
            else:
                del shard.score_cache[pid]

        for source in shard.sources.values():
            source.observe(rating)
        shard.last_time[pid] = rating.time
        flagged = shard.ar.last_flagged if shard.ar is not None else False

        shard.pending_provided[rid] = shard.pending_provided.get(rid, 0) + 1
        shard.since_flush += 1
        shard.n_accepted += 1
        self._m_queue_depth[shard.index].set(shard.since_flush)

        if self._recovering and self._trust_delegate is not None:
            # In delegate mode every flush leaves a control marker in
            # the WAL, and recovery replays flushes from those markers
            # alone; letting the cadence triggers fire here too would
            # flush at different positions than the original run and
            # desynchronize the digest seq numbering.
            return flagged
        if shard.since_flush >= self.config.batch_max_ratings:
            self._flush_shard(shard)
        elif (
            self.config.batch_max_seconds is not None
            and time.monotonic() - shard.last_flush >= self.config.batch_max_seconds
        ):
            self._flush_shard(shard)
        return flagged

    # -- trust flushing ------------------------------------------------------

    def _flush_shard(self, shard: _Shard) -> None:
        """Push a shard's pending tallies through Procedure 2 (lock held).

        Each source flushes its per-rater suspicion mass (timed into
        ``repro_ensemble_flush_seconds``); the configured combiner
        merges the masses; the merged mass plus the AR source's
        flagged-rating counts feed the trust update.
        """
        if shard.since_flush == 0:
            shard.last_flush = time.monotonic()
            return
        per_source: Dict[str, Dict[int, float]] = {}
        flagged_counts: Dict[int, int] = {}
        for name, source in shard.sources.items():
            start = time.perf_counter()
            mass = source.flush()
            self._m_flush_latency[name].observe(time.perf_counter() - start)
            self._m_suspicion[name].set(sum(mass.values()))
            per_source[name] = mass
            # Only sources whose alarms map onto individual ratings
            # report flagged counts (today: the AR source).
            flush_counts = getattr(source, "flush_counts", None)
            if flush_counts is not None:
                for rater_id, count in flush_counts().items():
                    flagged_counts[rater_id] = (
                        flagged_counts.get(rater_id, 0) + count
                    )
        combined = self._combine(per_source, self._source_weights)
        if self._trust_delegate is not None:
            # Cluster-worker mode: package the flush as a digest for
            # the coordinator's trust manager instead of applying it
            # locally.  The digest seq is this engine's deterministic
            # trust-update counter, so a coordinator that already saw
            # it (a replayed flush after recovery) can discard it while
            # still replying with the current table.
            with self._trust_lock:
                self._n_trust_updates += 1
                digest = {
                    "seq": self._n_trust_updates,
                    "provided": dict(shard.pending_provided),
                    "suspicion": dict(combined),
                    "flagged": dict(flagged_counts),
                }
                for rater_id, value in combined.items():
                    self._suspicion_totals[rater_id] = (
                        self._suspicion_totals.get(rater_id, 0.0) + value
                    )
            # The digest's underlying WAL entries must be durable
            # before the digest escapes the process: if the receiver
            # applies it and we crash with an unfsynced tail, replay
            # would regenerate a *different* digest under the same seq
            # and the receiver's dedup would silently drop it.  The
            # flush itself is recorded as a control marker so replay
            # reproduces it at exactly this log position -- without
            # the marker, recovery would re-accumulate the flushed
            # tallies and re-use this digest's seq for different
            # contents.
            if self.wal is not None:
                if not self._recovering:
                    self.wal.append_control({"flush": shard.index})
                self.wal.sync()
            # The delegate call (an RPC in the cluster) runs outside
            # _trust_lock so trust reads stay available meanwhile.
            table = self._trust_delegate(digest)
            self.install_trust_mirror(table)
        else:
            with self._trust_lock:
                observations = self.trust_manager.observations
                for rater_id, count in shard.pending_provided.items():
                    observations.record_provided(rater_id, count)
                for rater_id, value in combined.items():
                    observations.record_suspicion_value(rater_id, value)
                    self._suspicion_totals[rater_id] = (
                        self._suspicion_totals.get(rater_id, 0.0) + value
                    )
                for rater_id, count in flagged_counts.items():
                    observations.record_suspicious(rater_id, count)
                self.trust_manager.update()
                self._n_trust_updates += 1
                self._trust_epoch += 1
        shard.pending_provided = {}
        shard.since_flush = 0
        shard.last_flush = time.monotonic()
        self._m_trust_updates.inc()
        self._m_queue_depth[shard.index].set(0)
        for source in shard.sources.values():
            source.prune()

    def flush(self) -> None:
        """Flush every shard's pending observations into the trust manager."""
        for shard in self._shards:
            with shard.lock:
                self._flush_shard(shard)

    def _replay_control(self, meta: Optional[dict]) -> None:
        """Re-execute one WAL control row during recovery.

        The only control row today is the delegate-mode flush marker
        ``{"flush": shard_index}``: replaying it flushes the named
        shard at the marker's log position, regenerating the original
        digest (same seq, same contents) for the coordinator to
        deduplicate or apply.
        """
        control = (meta or {}).get("control") or {}
        if "flush" in control:
            shard = self._shards[int(control["flush"])]
            with shard.lock:
                self._flush_shard(shard)

    def install_trust_mirror(self, table: Dict[int, float]) -> None:
        """Install an authoritative trust table (cluster-worker mode).

        Replaces the read mirror that serves :meth:`trust`,
        :meth:`score` weighting, and :meth:`detected_malicious`, and
        bumps the trust epoch so stale score-cache entries are dropped.
        Called with each delegate reply, and by the cluster worker when
        the coordinator pushes the current table after (re)connect.
        """
        with self._trust_lock:
            self._trust_mirror = {int(k): float(v) for k, v in table.items()}
            self._trust_epoch += 1

    def _trust_value(self, rater_id: int) -> float:
        """Trust used for read paths; caller holds ``_trust_lock``.

        In delegate (cluster-worker) mode the authoritative manager
        lives in the coordinator, so reads come from the mirror of the
        last table it sent (0.5 prior for raters not yet in it).
        """
        if self._trust_delegate is not None:
            return self._trust_mirror.get(rater_id, 0.5)
        return self.trust_manager.trust(rater_id)

    # -- queries -------------------------------------------------------------

    def score(self, product_id: int) -> Optional[float]:
        """Trust-weighted (modified weighted average) score of a product.

        Served from an incremental per-product aggregate cache when one
        is current: a hit costs O(1) instead of re-aggregating every
        rating.  A miss (first read, or any trust flush since the entry
        was built) re-aggregates and repopulates the entry; ingests
        fold new ratings into current entries (see :class:`_ScoreCacheEntry`
        for why the cached value equals the full re-aggregation).

        Returns None for a registered product with no ratings; raises
        :class:`UnknownProductError` for a product never seen.
        """
        shard = self._shard_for(product_id)
        with shard.lock:
            if not shard.store.has_product(product_id):
                raise UnknownProductError(f"product {product_id} is not registered")
            entry = shard.score_cache.get(product_id)
            if entry is not None:
                with self._trust_lock:
                    epoch = self._trust_epoch
                if entry.epoch == epoch:
                    self._m_score_hits.inc()
                    return entry.score()
                del shard.score_cache[product_id]
            self._m_score_misses.inc()
            ratings = list(shard.store.stream(product_id))
            if not ratings:
                return None
            # Epoch and trusts must come from one _trust_lock hold so
            # the entry is stamped with the epoch its weights belong to.
            with self._trust_lock:
                epoch = self._trust_epoch
                trusts = [self._trust_value(r.rater_id) for r in ratings]
            values = [r.value for r in ratings]
            floor = self.aggregator.floor
            weights = [max(t - floor, 0.0) for t in trusts]
            entry = _ScoreCacheEntry(
                epoch=epoch,
                n=len(ratings),
                weight_sum=float(sum(weights)),
                weighted_value_sum=float(
                    sum(w * v for w, v in zip(weights, values))
                ),
                value_sum=float(sum(values)),
            )
            shard.score_cache[product_id] = entry
            # Return the entry's own arithmetic, not the aggregator's:
            # within an epoch every read must yield the identical float,
            # whether it missed or hit.
            return entry.score()

    def _score_uncached(self, product_id: int) -> Optional[float]:
        """The pre-cache score path (reference for tests and benches)."""
        shard = self._shard_for(product_id)
        with shard.lock:
            if not shard.store.has_product(product_id):
                raise UnknownProductError(f"product {product_id} is not registered")
            ratings = list(shard.store.stream(product_id))
        if not ratings:
            return None
        with self._trust_lock:
            trusts = [self._trust_value(r.rater_id) for r in ratings]
        return float(self.aggregator.aggregate([r.value for r in ratings], trusts))

    def trust(self, rater_id: int) -> float:
        """Current trust in a rater (0.5 prior for unseen raters)."""
        with self._trust_lock:
            return self._trust_value(rater_id)

    def trust_table(self) -> Dict[int, float]:
        """rater_id -> trust for every rater with a record."""
        with self._trust_lock:
            if self._trust_delegate is not None:
                return dict(self._trust_mirror)
            return dict(self.trust_manager.trust_table())

    def detected_malicious(self) -> List[int]:
        """Raters currently below the detection threshold."""
        with self._trust_lock:
            if self._trust_delegate is not None:
                threshold = self.config.trust_detection_threshold
                return sorted(
                    rid for rid, t in self._trust_mirror.items() if t < threshold
                )
            return self.trust_manager.detected_malicious()

    def suspicion_table(self) -> Dict[int, float]:
        """rater_id -> combined suspicion mass ever flushed.

        The engine-level detector statistic: what the ensemble has
        charged each rater with so far, after combining.  Pending
        (unflushed) mass is not included.
        """
        with self._trust_lock:
            return dict(self._suspicion_totals)

    def ensemble_stats(self) -> dict:
        """Configuration and counters of the detector ensemble."""
        thresholds = self.config.source_thresholds
        periods = self.config.source_periods
        per_source = {}
        for name in self.config.ensemble_sources:
            evictions = 0
            for shard in self._shards:
                with shard.lock:
                    evictions += shard.sources[name].n_evictions
            per_source[name] = {
                "weight": self._source_weights[name],
                "threshold": thresholds[name],
                "period": periods[name],
                "n_evictions": evictions,
            }
        return {
            "combiner": self.config.ensemble_combiner,
            "sources": per_source,
        }

    def has_product(self, product_id: int) -> bool:
        """True when some shard has seen the product."""
        shard = self._shard_for(product_id)
        with shard.lock:
            return shard.store.has_product(product_id)

    def snapshot_stats(self) -> dict:
        """Point-in-time counters for dashboards and the replay report."""
        per_shard = []
        totals = {"evaluations": 0, "flagged": 0, "rejected": 0}
        n_products = 0
        for shard in self._shards:
            with shard.lock:
                per_shard.append(
                    {
                        "shard": shard.index,
                        "n_ratings": shard.store.n_ratings,
                        "n_products": len(shard.store.product_ids),
                        "pending": shard.since_flush,
                    }
                )
                totals["evaluations"] += shard.n_evaluations
                totals["flagged"] += shard.n_flagged
                totals["rejected"] += shard.n_rejected
                n_products += len(shard.store.product_ids)
        uptime = time.monotonic() - self._started
        with self._trust_lock:
            n_raters = len(self.trust_manager.rater_ids)
        accepted = self.n_accepted
        return {
            "uptime_seconds": uptime,
            "n_accepted": accepted,
            "n_rejected": totals["rejected"],
            "n_products": n_products,
            "n_raters": n_raters,
            "n_shards": len(self._shards),
            "ar_evaluations": totals["evaluations"],
            "windows_flagged": totals["flagged"],
            "trust_updates": self._n_trust_updates,
            "ratings_per_second": accepted / uptime if uptime > 0 else 0.0,
            "shards": per_shard,
            "ensemble": self.ensemble_stats(),
            "wal_entries": self.wal.n_entries if self.wal is not None else None,
        }

    # -- durability ----------------------------------------------------------

    def _state_dict(self) -> dict:
        """Bounded engine state; callers must hold the write gate."""
        shards_state = []
        for shard in self._shards:
            shards_state.append(
                {
                    "sources": {
                        name: source.state_dict()
                        for name, source in shard.sources.items()
                    },
                    "last_time": {
                        str(pid): t for pid, t in shard.last_time.items()
                    },
                    "pending_provided": {
                        str(k): v for k, v in shard.pending_provided.items()
                    },
                    "since_flush": shard.since_flush,
                    "n_accepted": shard.n_accepted,
                    "n_rejected": shard.n_rejected,
                    "n_evaluations": shard.n_evaluations,
                    "n_flagged": shard.n_flagged,
                    "store_n_ratings": shard.store.n_ratings,
                }
            )
        with self._trust_lock:
            trust_state = {
                str(rid): {
                    "successes": record.successes,
                    "failures": record.failures,
                    "history": list(record.history),
                }
                for rid, record in (
                    (rid, self.trust_manager.record(rid))
                    for rid in self.trust_manager.rater_ids
                )
            }
            suspicion_state = {
                str(rid): value for rid, value in self._suspicion_totals.items()
            }
        # With a WAL, the covered position is its true entry count --
        # delegate-mode flush markers occupy sequence numbers without
        # being accepted ratings, so the two counters can differ.
        wal_position = (
            self.wal.n_entries if self.wal is not None else self._n_accepted
        )
        return {
            "version": 2,
            "config": self.config.to_dict(),
            "wal_position": wal_position,
            "n_accepted": self._n_accepted,
            "n_trust_updates": self._n_trust_updates,
            "trust": trust_state,
            "suspicion_totals": suspicion_state,
            "client_meta": dict(self.client_meta),
            "shards": shards_state,
        }

    @staticmethod
    def _upgrade_shard_state(shard_state: dict) -> dict:
        """Translate a version-1 shard snapshot to the version-2 layout.

        Version-1 engines ran exactly the AR detector with its state
        spread over the shard (``products``/``pending_suspicion``/
        ``pending_suspicious``), so the upgrade is a pure reshaping
        into one :class:`ARSuspicionSource` state plus the shard-level
        ``last_time`` map.
        """
        products = {}
        last_time = {}
        for pid_str, product_state in shard_state["products"].items():
            products[pid_str] = {
                "detector": product_state["detector"],
                "recent": product_state["recent"],
                "charged": product_state["charged"],
            }
            last_time[pid_str] = product_state["last_time"]
        return {
            "sources": {
                "ar": {
                    "products": products,
                    "pending_mass": shard_state["pending_suspicion"],
                    "pending_counts": shard_state["pending_suspicious"],
                    "n_evaluations": shard_state["n_evaluations"],
                    "n_flagged": shard_state["n_flagged"],
                }
            },
            "last_time": last_time,
            "pending_provided": shard_state["pending_provided"],
            "since_flush": shard_state["since_flush"],
            "n_accepted": shard_state["n_accepted"],
            "n_rejected": shard_state["n_rejected"],
            "n_evaluations": shard_state["n_evaluations"],
            "n_flagged": shard_state["n_flagged"],
            "store_n_ratings": shard_state["store_n_ratings"],
        }

    def _load_state(self, state: dict) -> None:
        """Install a snapshot's state (single-threaded recovery only)."""
        shards_state = state["shards"]
        if len(shards_state) != len(self._shards):
            raise ConfigurationError(
                f"snapshot has {len(shards_state)} shards, engine has "
                f"{len(self._shards)}"
            )
        version = int(state.get("version", 1))
        for shard, shard_state in zip(self._shards, shards_state):
            if version < 2:
                shard_state = self._upgrade_shard_state(shard_state)
            if shard.store.n_ratings != shard_state["store_n_ratings"]:
                raise ConfigurationError(
                    f"shard {shard.index}: WAL prefix rebuilt "
                    f"{shard.store.n_ratings} ratings but the snapshot "
                    f"recorded {shard_state['store_n_ratings']}"
                )
            saved_sources = shard_state["sources"]
            if set(saved_sources) != set(shard.sources):
                raise ConfigurationError(
                    f"shard {shard.index}: snapshot has ensemble sources "
                    f"{sorted(saved_sources)} but the config enables "
                    f"{sorted(shard.sources)}"
                )
            for name, source in shard.sources.items():
                source.load_state(saved_sources[name])
            shard.last_time = {
                int(pid): float(t) for pid, t in shard_state["last_time"].items()
            }
            shard.pending_provided = {
                int(k): int(v) for k, v in shard_state["pending_provided"].items()
            }
            shard.since_flush = int(shard_state["since_flush"])
            shard.n_accepted = int(shard_state["n_accepted"])
            shard.n_rejected = int(shard_state["n_rejected"])
            shard.n_evaluations = int(shard_state["n_evaluations"])
            shard.n_flagged = int(shard_state["n_flagged"])
        with self._trust_lock:
            for rid_str, record_state in state["trust"].items():
                record = self.trust_manager.register_rater(int(rid_str))
                record.successes = float(record_state["successes"])
                record.failures = float(record_state["failures"])
                record.history = [float(v) for v in record_state["history"]]
            self._suspicion_totals = {
                int(k): float(v)
                for k, v in state.get("suspicion_totals", {}).items()
            }
        self._n_trust_updates = int(state.get("n_trust_updates", 0))
        self.client_meta = {
            str(k): int(v) for k, v in state.get("client_meta", {}).items()
        }
        with self._count_lock:
            # Older snapshots predate control rows, where the WAL
            # position and the accepted count were the same number.
            self._n_accepted = int(
                state.get("n_accepted", state["wal_position"])
            )

    def _restore_rating(self, rating: Rating, seq: Optional[int] = None) -> None:
        """Re-insert a pre-snapshot WAL rating into the store only
        (single-threaded recovery)."""
        shard = self._shard_for(rating.product_id)
        if not shard.store.has_product(rating.product_id):
            shard.store.add_product(Product(product_id=rating.product_id, quality=0.5))
        if not shard.store.has_rater(rating.rater_id):
            shard.store.add_rater(
                RaterProfile(rater_id=rating.rater_id, rater_class=RaterClass.RELIABLE)
            )
        shard.store.add_rating(rating, seq=seq)

    def snapshot(self) -> Path:
        """Persist engine state atomically; returns the snapshot path.

        Blocks new submits for the duration (exclusive gate), so the
        snapshot covers a clean WAL prefix.  The order inside the gate
        is the durability contract: WAL synced, then every shard's
        cold tier committed, then the snapshot written -- only *then*
        may the garbage collector reclaim the WAL segments and older
        snapshots the new snapshot supersedes (``wal_gc``).  Segment
        deletion additionally requires the durable tiered backend;
        with the memory backend recovery replays the whole log, so
        only superseded snapshots are pruned.
        """
        if self.config.wal_dir is None:
            raise ConfigurationError("snapshots need a configured wal_dir")
        with self._gate.write():
            if self.wal is not None:
                self.wal.sync()
            for shard in self._shards:
                shard.store.commit()
            state = self._state_dict()
            path = write_snapshot(self.config.wal_dir, state)
            if self.config.wal_gc:
                if self._durable_store and self.wal is not None:
                    self.wal.gc(int(state["wal_position"]))
                prune_snapshots(self.config.wal_dir, keep=1)
            return path

    @classmethod
    def recover(
        cls,
        wal_dir: "str | Path",
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        trust_delegate: Optional[Callable[[dict], Dict[int, float]]] = None,
    ) -> "RatingEngine":
        """Rebuild an engine from a WAL directory.

        Loads the latest snapshot (if any) and re-processes the WAL
        suffix past its position through the full ingest path --
        yielding trust and suspicion state identical to an
        uninterrupted run.  How the covered *prefix* comes back
        depends on the backend:

        * **tiered** -- the prefix already sits in the per-shard
          sqlite cold tiers.  Recovery rolls each cold tier back to
          exactly the snapshot position (dropping rows a crash may
          have committed past it; the replay re-inserts them under
          the same sequence numbers), adopts the product/rater
          registrations recorded there, and never reads pre-snapshot
          WAL segments -- which is why recovery time is proportional
          to the suffix, and why those segments can be
          garbage-collected at all.
        * **memory** -- the whole WAL is replayed (prefix into the
          store, suffix through ingest), so the full log must still
          exist; recovering a GC'd log with the memory backend fails
          loudly.

        With no snapshot the entire WAL is re-processed.  An empty or
        missing directory yields a fresh engine.

        Args:
            wal_dir: directory holding WAL segments and snapshots.
            config: configuration to use when no snapshot embeds one
                (a snapshot's embedded config always wins, since the
                replay must match how the state was produced).
            metrics: optional registry for the rebuilt engine.
            trust_delegate: cluster-worker trust delegate (see
                :class:`RatingEngine`); replayed flushes re-emit their
                digests through it, which the receiver deduplicates by
                digest seq.
        """
        wal_dir = Path(wal_dir)
        snapshot_path = latest_snapshot(wal_dir)
        state: Optional[dict] = None
        if snapshot_path is not None:
            state = read_snapshot(snapshot_path)
            config = ServiceConfig.from_dict(
                {**state["config"], "wal_dir": str(wal_dir)}
            )
        elif config is None:
            config = ServiceConfig(wal_dir=str(wal_dir))
        elif config.wal_dir != str(wal_dir):
            config = ServiceConfig.from_dict(
                {**config.to_dict(), "wal_dir": str(wal_dir)}
            )
        engine = cls(config=config, metrics=metrics, trust_delegate=trust_delegate)
        engine._recovering = True
        try:
            position = int(state["wal_position"]) if state is not None else 0
            assert engine.wal is not None
            # O(1) sanity checks from segment metadata -- no scan.
            if engine.wal.n_entries < position:
                raise ConfigurationError(
                    f"WAL has {engine.wal.n_entries} entries but snapshot "
                    f"{snapshot_path} covers {position}"
                )
            first_seq = engine.wal.first_seq
            if first_seq > position:
                raise ConfigurationError(
                    f"oldest WAL segment starts at {first_seq} but the "
                    f"latest snapshot covers only {position}; the log was "
                    f"garbage-collected past the snapshot"
                )
            if engine._durable_store:
                # Prefix comes from the cold tiers; roll them back to
                # the snapshot position and adopt the registrations.
                for shard in engine._shards:
                    with shard.lock:
                        backend = shard.store.backend
                        backend.truncate_from(position)
                        for pid in backend.product_ids():
                            if not shard.store.has_product(pid):
                                shard.store.add_product(
                                    Product(product_id=pid, quality=0.5)
                                )
                        for rid in backend.rater_ids():
                            if not shard.store.has_rater(rid):
                                shard.store.add_rater(
                                    RaterProfile(
                                        rater_id=rid,
                                        rater_class=RaterClass.RELIABLE,
                                    )
                                )
                if state is not None:
                    engine._load_state(state)
                for seq, rating, meta in replay_wal_meta(
                    engine.wal.directory, start=position
                ):
                    if rating is None:
                        engine._replay_control(meta)
                    else:
                        engine._ingest(rating, log=False, seq=seq)
            else:
                if first_seq > 0:
                    raise ConfigurationError(
                        f"WAL prefix below {first_seq} was garbage-collected; "
                        f"the memory backend needs the full log to recover "
                        f"(use store_backend='tiered' or wal_gc=False)"
                    )
                suffix: List[tuple] = []
                for seq, rating, meta in replay_wal_meta(engine.wal.directory):
                    if rating is None:
                        # Prefix control rows record flushes the
                        # snapshot state already covers; only suffix
                        # ones are re-executed.
                        if seq >= position:
                            suffix.append((seq, None, meta))
                    elif seq < position:
                        engine._restore_rating(rating, seq)
                    else:
                        suffix.append((seq, rating, meta))
                if state is not None:
                    engine._load_state(state)
                for seq, rating, meta in suffix:
                    if rating is None:
                        engine._replay_control(meta)
                    else:
                        engine._ingest(rating, log=False, seq=seq)
        finally:
            engine._recovering = False
        return engine

    def storage_stats(self) -> dict:
        """Tier occupancy, WAL segment layout, and snapshot inventory.

        Also refreshes the ``repro_store_hot_ratings`` /
        ``repro_store_cold_ratings`` / ``repro_wal_segments`` gauges.
        """
        per_shard = []
        hot = cold = pending = 0
        for shard in self._shards:
            with shard.lock:
                stats = shard.store.backend.stats()
            stats = {"shard": shard.index, **stats}
            hot += int(stats.get("hot_ratings", 0))
            cold += int(stats.get("cold_ratings", 0))
            pending += int(stats.get("pending_ratings", 0))
            per_shard.append(stats)
        self._m_store_hot.set(hot)
        self._m_store_cold.set(cold)
        wal_info = None
        if self.wal is not None:
            segments = self.wal.segments()
            self._m_wal_segments.set(len(segments))
            wal_info = {
                "directory": str(self.wal.directory),
                "n_entries": self.wal.n_entries,
                "first_seq": self.wal.first_seq,
                "n_segments": len(segments),
                "segment_entries": self.wal.segment_entries,
                "segments": [
                    {"start": start, "file": path.name}
                    for start, path in segments
                ],
                "n_snapshots": len(list_snapshots(self.wal.directory)),
                "gc_enabled": bool(self.config.wal_gc),
            }
        return {
            "backend": self.config.store_backend,
            "hot_ratings": hot,
            "cold_ratings": cold,
            "pending_ratings": pending,
            "shards": per_shard,
            "wal": wal_info,
        }

    def close(self) -> None:
        """Flush pending observations, then release storage and the WAL."""
        self.flush()
        for shard in self._shards:
            with shard.lock:
                shard.store.close()
        if self.wal is not None:
            self.wal.close()
