"""Configuration for the serving engine.

One frozen dataclass collects every knob of the long-running service:
sharding, batching, the per-product streaming detector, the trust
manager, and durability.  It round-trips through plain dicts so
snapshots can embed the exact configuration they were taken under and
recovery can rebuild an identically-behaving engine.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.signal.ar import AR_METHODS

__all__ = ["ServiceConfig"]

#: Default alarm threshold per ensemble source; ``None`` defers to the
#: deprecated ``detector_threshold`` field (the AR source's historical
#: knob, kept so pre-ensemble configs and snapshots still load).
_DEFAULT_SOURCE_THRESHOLDS: Dict[str, Optional[float]] = {
    "ar": None,
    "cograph": 0.5,
    "iterfilter": 0.5,
}

#: Default scoring period (in trust flushes) per ensemble source.  The
#: AR source charges per rating, so its period is moot; the graph and
#: iterative-filtering sources run whole-structure sweeps, and pricing
#: those every flush is what would blow the <=2x ingest budget
#: (benchmarks/bench_ensemble.py) -- they score every 4th flush.
_DEFAULT_SOURCE_PERIODS: Dict[str, int] = {
    "ar": 1,
    "cograph": 4,
    "iterfilter": 4,
}


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the :class:`~repro.service.engine.RatingEngine`.

    Attributes:
        n_shards: number of independently locked shards; products are
            hashed across them, so unrelated products never contend.
        batch_max_ratings: flush a shard's pending observations into
            the trust manager after this many ingested ratings (the
            ``K`` of flush-every-K-or-T).
        batch_max_seconds: also flush when this much wall time passed
            since the shard's last flush (None disables the deadline;
            deterministic replays should disable it).
        detector_order: AR model order of the per-product streaming
            detector.
        detector_threshold: normalized model-error alarm threshold.
            *Deprecated alias*: this is now just the default for the
            AR entry of :attr:`ensemble_thresholds`; new configs
            should set per-source thresholds there.
        detector_window: ratings per streaming analysis window.
        detector_stride: arrivals between AR refits.
        detector_method: AR estimator name (see ``repro.signal.ar``).
        detector_scale: suspicion level charged per flagged rating.
        detector_incremental: refit through the incremental
            sliding-window normal equations
            (:class:`~repro.signal.sliding.SlidingCovarianceFitter`)
            instead of rebuilding the least-squares problem per
            evaluation.  ``None`` (the default) enables it exactly
            when ``detector_method`` is ``"covariance"``; ``True``
            with another method is a configuration error.
        ensemble_sources: enabled online suspicion sources, by name
            (see :data:`repro.service.ensemble.SOURCE_NAMES`); order
            is the flush/combine order.  The default, ``("ar",)``,
            reproduces the pre-ensemble engine bit-for-bit.
        ensemble_weights: per-source combiner weights, aligned with
            ``ensemble_sources`` (None = all 1.0).  Weights are
            non-negative and must not all be zero.
        ensemble_thresholds: per-source alarm thresholds, aligned with
            ``ensemble_sources``; a ``None`` entry (or a ``None``
            tuple) picks the source default -- for ``"ar"`` that is
            the deprecated :attr:`detector_threshold`.
        ensemble_periods: per-source scoring period in flushes,
            aligned with ``ensemble_sources``; a ``None`` tuple picks
            the source defaults (AR every flush; the graph and
            iterative-filtering sweeps every 4th flush, which is what
            keeps the full ensemble inside its 2x ingest budget).
            The AR source charges per rating and ignores its period.
        ensemble_combiner: how per-source suspicion masses merge
            before the trust update: ``"weighted_mean"`` or ``"max"``
            (see :data:`repro.service.ensemble.COMBINERS`).
        max_raters_per_product: LRU cap on per-product rater
            bookkeeping inside each source (detector position maps,
            co-rating sets); evictions are counted in
            ``repro_ensemble_evictions_total``.
        trust_badness_weight: Procedure 2's ``b``.
        trust_detection_threshold: trust below this marks a rater
            malicious.
        trust_forgetting_factor: evidence discount per trust update.
        store_backend: rating-row storage engine per shard:
            ``"memory"`` (the historical all-in-RAM lists) or
            ``"tiered"`` (full history in sqlite cold storage plus
            per-product numpy hot windows, so resident memory stays
            flat as histories grow -- see
            :class:`~repro.ratings.tiered.TieredRatingBackend`).
        store_hot_window: per-product hot-window capacity of the
            tiered backend; ``None`` resolves to twice
            ``detector_window`` so detector-scale reads never touch
            sqlite.  Ignored by the memory backend.
        wal_dir: directory for the write-ahead log and snapshots
            (None = run without durability).  The tiered backend
            places its per-shard sqlite files in a ``store/``
            subdirectory; without a ``wal_dir`` it falls back to
            in-memory sqlite (no durability).
        wal_fsync_every: fsync the WAL every N appends.
        wal_segment_entries: entries per WAL segment file; the log
            rotates to a new segment after this many appends, and the
            garbage collector reclaims whole segments behind the
            latest snapshot.
        wal_gc: reclaim WAL segments and stale snapshots after each
            snapshot.  Segment deletion needs the durable (tiered)
            backend -- with the memory backend recovery replays the
            whole log, so only superseded snapshots are pruned.
        snapshot_every: write an automatic snapshot every N accepted
            ratings (0 = only explicit :meth:`snapshot` calls).
        cluster_workers: run the multi-process serving tier with this
            many worker processes (0 = the in-process engine; see
            :mod:`repro.service.cluster`).  Products are
            consistent-hashed across workers, each running a
            single-shard engine in its own process with its own WAL
            subdirectory, store, and ensemble; the coordinator owns
            the trust manager and the ingest WAL.  Requires
            ``wal_dir``.
        cluster_queue_depth: bounded per-worker ingest queue; a full
            queue blocks the coordinator's submit (backpressure)
            instead of growing memory without bound.
        cluster_batch_max: max ratings packed into one transport frame
            by the coordinator's per-worker sender thread.
        cluster_ack_fsync_every: fsync the coordinator's ingest WAL
            every N appends -- the ack durability/latency trade, held
            separately from the workers' ``wal_fsync_every`` (group
            commit at the coordinator, per-rating durability at the
            workers by default).
    """

    n_shards: int = 4
    batch_max_ratings: int = 64
    batch_max_seconds: Optional[float] = None
    detector_order: int = 4
    detector_threshold: float = 0.10
    detector_window: int = 50
    detector_stride: int = 5
    detector_method: str = "covariance"
    detector_scale: float = 1.0
    detector_incremental: Optional[bool] = None
    ensemble_sources: Tuple[str, ...] = ("ar",)
    ensemble_weights: Optional[Tuple[float, ...]] = None
    ensemble_thresholds: Optional[Tuple[Optional[float], ...]] = None
    ensemble_periods: Optional[Tuple[int, ...]] = None
    ensemble_combiner: str = "weighted_mean"
    max_raters_per_product: int = 1024
    trust_badness_weight: float = 1.0
    trust_detection_threshold: float = 0.5
    trust_forgetting_factor: float = 1.0
    store_backend: str = "memory"
    store_hot_window: Optional[int] = None
    wal_dir: Optional[str] = None
    wal_fsync_every: int = 1
    wal_segment_entries: int = 100_000
    wal_gc: bool = True
    snapshot_every: int = 0
    cluster_workers: int = 0
    cluster_queue_depth: int = 4096
    cluster_batch_max: int = 64
    cluster_ack_fsync_every: int = 64

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.batch_max_ratings < 1:
            raise ConfigurationError(
                f"batch_max_ratings must be >= 1, got {self.batch_max_ratings}"
            )
        if self.batch_max_seconds is not None and self.batch_max_seconds < 0:
            raise ConfigurationError(
                f"batch_max_seconds must be >= 0 or None, got {self.batch_max_seconds}"
            )
        if self.detector_method not in AR_METHODS:
            raise ConfigurationError(
                f"unknown AR method {self.detector_method!r}; "
                f"choose from {sorted(AR_METHODS)}"
            )
        if self.store_backend not in ("memory", "tiered"):
            raise ConfigurationError(
                f"unknown store_backend {self.store_backend!r}; "
                f"choose from ['memory', 'tiered']"
            )
        if self.store_hot_window is not None and self.store_hot_window < 1:
            raise ConfigurationError(
                f"store_hot_window must be >= 1 or None, got {self.store_hot_window}"
            )
        if self.wal_fsync_every < 1:
            raise ConfigurationError(
                f"wal_fsync_every must be >= 1, got {self.wal_fsync_every}"
            )
        if self.wal_segment_entries < 1:
            raise ConfigurationError(
                f"wal_segment_entries must be >= 1, got {self.wal_segment_entries}"
            )
        if self.snapshot_every < 0:
            raise ConfigurationError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )
        if self.cluster_workers < 0:
            raise ConfigurationError(
                f"cluster_workers must be >= 0, got {self.cluster_workers}"
            )
        if self.cluster_workers and self.wal_dir is None:
            raise ConfigurationError(
                "cluster_workers needs a wal_dir (the coordinator acks from "
                "its ingest WAL; there is no non-durable cluster mode)"
            )
        if self.cluster_queue_depth < 1:
            raise ConfigurationError(
                f"cluster_queue_depth must be >= 1, got {self.cluster_queue_depth}"
            )
        if self.cluster_batch_max < 1:
            raise ConfigurationError(
                f"cluster_batch_max must be >= 1, got {self.cluster_batch_max}"
            )
        if self.cluster_ack_fsync_every < 1:
            raise ConfigurationError(
                f"cluster_ack_fsync_every must be >= 1, "
                f"got {self.cluster_ack_fsync_every}"
            )
        self._validate_ensemble()
        # Detector / trust ranges are validated by their owners; fail
        # fast here so a bad config surfaces at construction, not at
        # the first rating of a previously unseen product.  Building
        # the sources also validates per-source thresholds/periods.
        from repro.detectors.online import OnlineARDetector
        from repro.service.ensemble import build_sources
        from repro.trust.manager import TrustManagerConfig

        OnlineARDetector(
            order=self.detector_order,
            threshold=self.source_thresholds.get("ar", self.detector_threshold),
            window_size=self.detector_window,
            stride=self.detector_stride,
            method=self.detector_method,
            scale=self.detector_scale,
            incremental=self.incremental_enabled,
            max_raters_per_product=self.max_raters_per_product,
        )
        build_sources(self)
        TrustManagerConfig(
            badness_weight=self.trust_badness_weight,
            detection_threshold=self.trust_detection_threshold,
            forgetting_factor=self.trust_forgetting_factor,
        )

    def _validate_ensemble(self) -> None:
        # Tuple-ify sequence fields so JSON round-trips (lists) compare
        # and hash like freshly-built configs.
        object.__setattr__(self, "ensemble_sources", tuple(self.ensemble_sources))
        for field_name in ("ensemble_weights", "ensemble_thresholds", "ensemble_periods"):
            value = getattr(self, field_name)
            if value is not None:
                object.__setattr__(self, field_name, tuple(value))
        from repro.service.ensemble import SOURCE_NAMES
        from repro.service.ensemble.base import COMBINERS

        sources = self.ensemble_sources
        if not sources:
            raise ConfigurationError("ensemble_sources must name at least one source")
        unknown = [name for name in sources if name not in SOURCE_NAMES]
        if unknown:
            raise ConfigurationError(
                f"unknown ensemble sources {unknown}; choose from {list(SOURCE_NAMES)}"
            )
        if len(set(sources)) != len(sources):
            raise ConfigurationError(f"duplicate ensemble sources in {sources}")
        for field_name in ("ensemble_weights", "ensemble_thresholds", "ensemble_periods"):
            value = getattr(self, field_name)
            if value is not None and len(value) != len(sources):
                raise ConfigurationError(
                    f"{field_name} has {len(value)} entries for "
                    f"{len(sources)} sources"
                )
        if self.ensemble_weights is not None:
            if any(w < 0 for w in self.ensemble_weights):
                raise ConfigurationError(
                    f"ensemble_weights must be >= 0, got {self.ensemble_weights}"
                )
            if sum(self.ensemble_weights) <= 0:
                raise ConfigurationError("ensemble_weights must not all be zero")
        if self.ensemble_periods is not None and any(
            p < 1 for p in self.ensemble_periods
        ):
            raise ConfigurationError(
                f"ensemble_periods must be >= 1, got {self.ensemble_periods}"
            )
        if self.ensemble_combiner not in COMBINERS:
            raise ConfigurationError(
                f"unknown combiner {self.ensemble_combiner!r}; "
                f"choose from {sorted(COMBINERS)}"
            )
        if self.max_raters_per_product < 1:
            raise ConfigurationError(
                f"max_raters_per_product must be >= 1, "
                f"got {self.max_raters_per_product}"
            )

    @property
    def resolved_hot_window(self) -> int:
        """Resolved tiered hot-window size (auto = 2x detector window)."""
        if self.store_hot_window is not None:
            return int(self.store_hot_window)
        return max(2 * self.detector_window, 1)

    @property
    def incremental_enabled(self) -> bool:
        """Resolved ``detector_incremental`` (auto = covariance only)."""
        if self.detector_incremental is None:
            return self.detector_method == "covariance"
        return bool(self.detector_incremental)

    @property
    def source_weights(self) -> Dict[str, float]:
        """Resolved source -> combiner weight (default 1.0 each)."""
        if self.ensemble_weights is None:
            return {name: 1.0 for name in self.ensemble_sources}
        return {
            name: float(weight)
            for name, weight in zip(self.ensemble_sources, self.ensemble_weights)
        }

    @property
    def source_thresholds(self) -> Dict[str, float]:
        """Resolved source -> alarm threshold.

        ``None`` entries fall back to the per-source default; for the
        AR source the default is the deprecated
        :attr:`detector_threshold` field, so configs written before
        per-source thresholds behave unchanged.
        """
        explicit = self.ensemble_thresholds or (None,) * len(self.ensemble_sources)
        resolved = {}
        for name, value in zip(self.ensemble_sources, explicit):
            if value is None:
                value = _DEFAULT_SOURCE_THRESHOLDS.get(name)
            if value is None:  # the "ar" default defers to the alias
                value = self.detector_threshold
            resolved[name] = float(value)
        return resolved

    @property
    def source_periods(self) -> Dict[str, int]:
        """Resolved source -> scoring period in flushes."""
        if self.ensemble_periods is None:
            return {
                name: _DEFAULT_SOURCE_PERIODS.get(name, 1)
                for name in self.ensemble_sources
            }
        return {
            name: int(period)
            for name, period in zip(self.ensemble_sources, self.ensemble_periods)
        }

    def worker_config(self, index: int) -> "ServiceConfig":
        """Derive worker ``index``'s engine config from this cluster config.

        Each worker runs a plain single-shard engine: its own WAL
        subdirectory (``<wal_dir>/worker-NNN``), ``n_shards=1`` (the
        cluster's sharding happens at the coordinator's hash ring),
        ``cluster_workers=0`` (a worker never nests a cluster), and
        automatic snapshots disabled -- snapshotting is coordinated
        cluster-wide so the coordinator's state and the workers' never
        disagree about which trust digests a snapshot covers.
        """
        if not 0 <= index < max(self.cluster_workers, 1):
            raise ConfigurationError(
                f"worker index {index} out of range for "
                f"{self.cluster_workers} workers"
            )
        if self.wal_dir is None:
            raise ConfigurationError("worker_config needs a wal_dir")
        return ServiceConfig.from_dict(
            {
                **self.to_dict(),
                "n_shards": 1,
                "cluster_workers": 0,
                "wal_dir": f"{self.wal_dir}/worker-{index:03d}",
                "snapshot_every": 0,
            }
        )

    def to_dict(self) -> dict:
        """Plain-dict form (embedded in snapshots)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are ignored so snapshots written by newer versions
        with extra knobs still load.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(data).items() if k in known})
