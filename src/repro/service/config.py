"""Configuration for the serving engine.

One frozen dataclass collects every knob of the long-running service:
sharding, batching, the per-product streaming detector, the trust
manager, and durability.  It round-trips through plain dicts so
snapshots can embed the exact configuration they were taken under and
recovery can rebuild an identically-behaving engine.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Optional

from repro.errors import ConfigurationError
from repro.signal.ar import AR_METHODS

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the :class:`~repro.service.engine.RatingEngine`.

    Attributes:
        n_shards: number of independently locked shards; products are
            hashed across them, so unrelated products never contend.
        batch_max_ratings: flush a shard's pending observations into
            the trust manager after this many ingested ratings (the
            ``K`` of flush-every-K-or-T).
        batch_max_seconds: also flush when this much wall time passed
            since the shard's last flush (None disables the deadline;
            deterministic replays should disable it).
        detector_order: AR model order of the per-product streaming
            detector.
        detector_threshold: normalized model-error alarm threshold.
        detector_window: ratings per streaming analysis window.
        detector_stride: arrivals between AR refits.
        detector_method: AR estimator name (see ``repro.signal.ar``).
        detector_scale: suspicion level charged per flagged rating.
        detector_incremental: refit through the incremental
            sliding-window normal equations
            (:class:`~repro.signal.sliding.SlidingCovarianceFitter`)
            instead of rebuilding the least-squares problem per
            evaluation.  ``None`` (the default) enables it exactly
            when ``detector_method`` is ``"covariance"``; ``True``
            with another method is a configuration error.
        trust_badness_weight: Procedure 2's ``b``.
        trust_detection_threshold: trust below this marks a rater
            malicious.
        trust_forgetting_factor: evidence discount per trust update.
        wal_dir: directory for the write-ahead log and snapshots
            (None = run without durability).
        wal_fsync_every: fsync the WAL every N appends.
        snapshot_every: write an automatic snapshot every N accepted
            ratings (0 = only explicit :meth:`snapshot` calls).
    """

    n_shards: int = 4
    batch_max_ratings: int = 64
    batch_max_seconds: Optional[float] = None
    detector_order: int = 4
    detector_threshold: float = 0.10
    detector_window: int = 50
    detector_stride: int = 5
    detector_method: str = "covariance"
    detector_scale: float = 1.0
    detector_incremental: Optional[bool] = None
    trust_badness_weight: float = 1.0
    trust_detection_threshold: float = 0.5
    trust_forgetting_factor: float = 1.0
    wal_dir: Optional[str] = None
    wal_fsync_every: int = 1
    snapshot_every: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.batch_max_ratings < 1:
            raise ConfigurationError(
                f"batch_max_ratings must be >= 1, got {self.batch_max_ratings}"
            )
        if self.batch_max_seconds is not None and self.batch_max_seconds < 0:
            raise ConfigurationError(
                f"batch_max_seconds must be >= 0 or None, got {self.batch_max_seconds}"
            )
        if self.detector_method not in AR_METHODS:
            raise ConfigurationError(
                f"unknown AR method {self.detector_method!r}; "
                f"choose from {sorted(AR_METHODS)}"
            )
        if self.wal_fsync_every < 1:
            raise ConfigurationError(
                f"wal_fsync_every must be >= 1, got {self.wal_fsync_every}"
            )
        if self.snapshot_every < 0:
            raise ConfigurationError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )
        # Detector / trust ranges are validated by their owners; fail
        # fast here so a bad config surfaces at construction, not at
        # the first rating of a previously unseen product.
        from repro.detectors.online import OnlineARDetector
        from repro.trust.manager import TrustManagerConfig

        OnlineARDetector(
            order=self.detector_order,
            threshold=self.detector_threshold,
            window_size=self.detector_window,
            stride=self.detector_stride,
            method=self.detector_method,
            scale=self.detector_scale,
            incremental=self.incremental_enabled,
        )
        TrustManagerConfig(
            badness_weight=self.trust_badness_weight,
            detection_threshold=self.trust_detection_threshold,
            forgetting_factor=self.trust_forgetting_factor,
        )

    @property
    def incremental_enabled(self) -> bool:
        """Resolved ``detector_incremental`` (auto = covariance only)."""
        if self.detector_incremental is None:
            return self.detector_method == "covariance"
        return bool(self.detector_incremental)

    def to_dict(self) -> dict:
        """Plain-dict form (embedded in snapshots)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are ignored so snapshots written by newer versions
        with extra knobs still load.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(data).items() if k in known})
