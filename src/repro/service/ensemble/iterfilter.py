"""Online iterative-filtering suspicion source.

De Kerchove & Van Dooren's iterative filtering (PAPERS.md) jointly
estimates object quality and rater reliability: qualities are
reliability-weighted means, reliabilities shrink with a rater's
distance from the estimated qualities, iterate.  Raters who
consistently rate far from the consensus -- ballot stuffers, slow
Sybil ramps pulling an item's score -- end up with low weight no
matter how smooth their individual rating stream looks to the AR
model.

The online adaptation keeps a bounded *hot window* of recent ratings
per product and runs a few damped reweighting sweeps over those
windows at scoring time (every ``score_every`` flushes).  Weights
persist across flushes (damping makes them a slow EWMA of the batch
estimate) but are pruned to raters still present in some hot window,
so memory is bounded by ``n_products x hot_window``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.ratings.models import Rating
from repro.service.ensemble.base import OnlineSuspicionSource, unit_suspicion

__all__ = ["IterativeFilterSource"]


class IterativeFilterSource(OnlineSuspicionSource):
    """Damped reciprocal-distance iterative filtering over hot windows.

    Args:
        threshold: minimum suspicion score (``1 - w / max_w``, in
            ``[0, 1]``) for a rater to be charged.
        score_every: run the reweighting sweeps every N-th flush.
        hot_window: recent ratings kept per product.
        n_sweeps: reweighting sweeps per scoring pass.
        damping: blend factor for new weights (0 = frozen, 1 = jump to
            the batch estimate each pass).
        eps: distance regularizer; keeps perfectly-agreeing raters'
            reciprocal-distance weights finite.
        min_ratings: products with fewer hot ratings are skipped (a
            two-rating "consensus" is noise).
    """

    name = "iterfilter"

    def __init__(
        self,
        threshold: float = 0.5,
        score_every: int = 1,
        hot_window: int = 64,
        n_sweeps: int = 3,
        damping: float = 0.5,
        eps: float = 1e-3,
        min_ratings: int = 3,
    ) -> None:
        super().__init__(threshold=threshold, score_every=score_every)
        if hot_window < 2:
            raise ConfigurationError(f"hot_window must be >= 2, got {hot_window}")
        if n_sweeps < 1:
            raise ConfigurationError(f"n_sweeps must be >= 1, got {n_sweeps}")
        if not 0.0 < damping <= 1.0:
            raise ConfigurationError(f"damping must lie in (0, 1], got {damping}")
        if eps <= 0.0:
            raise ConfigurationError(f"eps must be > 0, got {eps}")
        if min_ratings < 2:
            raise ConfigurationError(f"min_ratings must be >= 2, got {min_ratings}")
        self.hot_window = int(hot_window)
        self.n_sweeps = int(n_sweeps)
        self.damping = float(damping)
        self.eps = float(eps)
        self.min_ratings = int(min_ratings)
        # product -> deque of (rater_id, value), most recent last.
        self._hot: Dict[int, Deque[Tuple[int, float]]] = {}
        # rater -> reliability weight in (0, 1].
        self._weights: Dict[int, float] = {}
        # rater -> ratings since the last scoring pass.
        self._counts: Dict[int, int] = {}
        self._since_score = 0

    # -- protocol ----------------------------------------------------------

    def observe(self, rating: Rating) -> None:
        window = self._hot.get(rating.product_id)
        if window is None:
            window = deque(maxlen=self.hot_window)
            self._hot[rating.product_id] = window
        window.append((rating.rater_id, rating.value))
        self._counts[rating.rater_id] = self._counts.get(rating.rater_id, 0) + 1

    def flush(self) -> Dict[int, float]:
        self._since_score += 1
        if self._since_score < self.score_every:
            return {}
        self._since_score = 0
        mass = self._score()
        self._counts = {}
        return mass

    # -- scoring -----------------------------------------------------------

    def _score(self) -> Dict[int, float]:
        """Run the damped sweeps; charge low-weight raters.

        Suspicion score = ``1 - w / max_w``: the rater whose weight
        collapsed relative to the most reliable rater is the most
        suspicious.  Mass is the score times the rater's ratings since
        the last scoring pass (level-per-rating accounting, like the
        other sources).
        """
        windows = [w for w in self._hot.values() if len(w) >= self.min_ratings]
        if not windows:
            return {}
        # Seed weights for newly-seen raters; prune raters that left
        # every hot window (bounded memory).
        active: Dict[int, float] = {}
        for window in windows:
            for rater_id, _ in window:
                if rater_id not in active:
                    active[rater_id] = self._weights.get(rater_id, 1.0)
        weights = active

        for _ in range(self.n_sweeps):
            distances: Dict[int, List[float]] = {}
            for window in windows:
                denominator = sum(weights[r] for r, _ in window)
                if denominator <= 0.0:
                    continue
                quality = (
                    sum(weights[r] * v for r, v in window) / denominator
                )
                for rater_id, value in window:
                    distances.setdefault(rater_id, []).append(
                        (value - quality) ** 2
                    )
            raw = {
                rater_id: 1.0 / (sum(sq) / len(sq) + self.eps)
                for rater_id, sq in distances.items()
            }
            top = max(raw.values())
            damping = self.damping
            for rater_id, value in raw.items():
                weights[rater_id] = (1.0 - damping) * weights[
                    rater_id
                ] + damping * (value / top)

        self._weights = weights
        max_weight = max(weights.values())
        if max_weight <= 0.0:
            return {}
        mass: Dict[int, float] = {}
        for rater_id, weight in weights.items():
            score = 1.0 - weight / max_weight
            if score < self.threshold:
                continue
            charged = self._counts.get(rater_id, 0)
            if charged:
                mass[rater_id] = unit_suspicion(score) * charged
        return mass

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "hot": {
                str(pid): [[r, v] for r, v in window]
                for pid, window in self._hot.items()
            },
            "weights": {str(k): v for k, v in self._weights.items()},
            "counts": {str(k): v for k, v in self._counts.items()},
            "since_score": self._since_score,
        }

    def load_state(self, state: dict) -> None:
        self._hot = {}
        for pid_str, rows in state["hot"].items():
            window: Deque[Tuple[int, float]] = deque(maxlen=self.hot_window)
            for rid, value in rows:
                window.append((int(rid), float(value)))
            self._hot[int(pid_str)] = window
        self._weights = {int(k): float(v) for k, v in state["weights"].items()}
        self._counts = {int(k): int(v) for k, v in state["counts"].items()}
        self._since_score = int(state["since_score"])
