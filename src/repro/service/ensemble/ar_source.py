"""The paper's AR signal-model detector as an ensemble source.

Wraps one :class:`~repro.detectors.online.OnlineARDetector` per active
product plus the charge-once-per-position accounting that used to live
inside the engine shard: each suspicious window verdict charges every
not-yet-charged position of the detector's current window with the
constant ``scale`` level, so the mass returned by :meth:`flush` equals
:meth:`OnlineARDetector.suspicious_raters` for an identical stream --
the equivalence the engine's trust pipeline was built on.

Beyond the protocol, the source exposes :attr:`last_flagged` (did the
most recent ``observe`` emit a suspicious verdict?, feeding
``SubmitResult.flagged``) and :meth:`flush_counts` (per-rater flagged
rating counts, the ``s_i`` term of Procedure 2) -- AR is the one
source whose alarms map one-to-one onto individual ratings, so it
alone reports them.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Set, Tuple

from repro.detectors.online import OnlineARDetector
from repro.ratings.models import Rating
from repro.service.ensemble.base import OnlineSuspicionSource, unit_suspicion

__all__ = ["ARSuspicionSource"]


class ARSuspicionSource(OnlineSuspicionSource):
    """Per-product streaming AR detectors behind the source protocol.

    Args:
        order: AR model order.
        threshold: normalized model-error alarm threshold (in (0, 1)).
        window_size: ratings per streaming analysis window.
        stride: arrivals between AR refits.
        method: AR estimator name (see ``repro.signal.ar``).
        scale: suspicion level charged per flagged rating.
        incremental: refit through the sliding-window normal equations.
        max_raters_per_product: bound on each detector's
            position -> rater map (LRU eviction, see
            :meth:`OnlineARDetector.prune`).
    """

    name = "ar"

    def __init__(
        self,
        order: int = 4,
        threshold: float = 0.10,
        window_size: int = 50,
        stride: int = 5,
        method: str = "covariance",
        scale: float = 1.0,
        incremental: bool = False,
        max_raters_per_product: Optional[int] = None,
    ) -> None:
        super().__init__(threshold=threshold, score_every=1)
        self.order = int(order)
        self.window_size = int(window_size)
        self.stride = int(stride)
        self.method = method
        self.scale = unit_suspicion(scale)
        self.incremental = bool(incremental)
        self.max_raters_per_product = max_raters_per_product
        self.detectors: Dict[int, OnlineARDetector] = {}
        # Last window_size (position, rater_id) pairs per product: the
        # positions a future verdict's window can still cover.
        self.recent: Dict[int, Deque[Tuple[int, int]]] = {}
        self.charged: Dict[int, Set[int]] = {}
        self._pending_mass: Dict[int, float] = {}
        self._pending_counts: Dict[int, int] = {}
        self.last_flagged = False
        self.n_evaluations = 0
        self.n_flagged = 0
        self.on_evaluation: Optional[Callable[[], None]] = None
        self.on_flag: Optional[Callable[[], None]] = None
        self.on_new_product: Optional[Callable[[], None]] = None

    def _make_detector(self) -> OnlineARDetector:
        return OnlineARDetector(
            order=self.order,
            threshold=self.threshold,
            window_size=self.window_size,
            stride=self.stride,
            method=self.method,
            scale=self.scale,
            incremental=self.incremental,
            max_raters_per_product=self.max_raters_per_product,
            on_eviction=self._record_evictions,
        )

    # -- protocol ----------------------------------------------------------

    def observe(self, rating: Rating) -> None:
        pid, rid = rating.product_id, rating.rater_id
        detector = self.detectors.get(pid)
        if detector is None:
            detector = self._make_detector()
            self.detectors[pid] = detector
            self.recent[pid] = deque(maxlen=self.window_size)
            self.charged[pid] = set()
            if self.on_new_product is not None:
                self.on_new_product()
        self.recent[pid].append((detector.n_seen, rid))
        verdict = detector.observe(rating)
        self.last_flagged = False
        if verdict is not None:
            self.n_evaluations += 1
            if self.on_evaluation is not None:
                self.on_evaluation()
            if verdict.suspicious:
                self.last_flagged = True
                self.n_flagged += 1
                if self.on_flag is not None:
                    self.on_flag()
                self._charge_window(pid, detector)

    def _charge_window(self, pid: int, detector: OnlineARDetector) -> None:
        """Charge the detector's current window, once per position.

        The verdict's window is exactly the last ``len(buffer)``
        positions, which is what ``self.recent[pid]`` holds; each
        never-charged position adds ``scale`` suspicion to its rater
        -- the batch max-then-sum rule for a constant scale.
        """
        charged = self.charged[pid]
        scale = self.scale
        for position, rater_id in self.recent[pid]:
            if position in charged:
                continue
            charged.add(position)
            self._pending_mass[rater_id] = (
                self._pending_mass.get(rater_id, 0.0) + scale
            )
            self._pending_counts[rater_id] = (
                self._pending_counts.get(rater_id, 0) + 1
            )
        # Positions that fell out of the window can never be charged
        # again; keep the set bounded.
        cutoff = detector.n_seen - self.window_size
        if cutoff > 0:
            charged -= {p for p in charged if p < cutoff}

    def flush(self) -> Dict[int, float]:
        mass = self._pending_mass
        self._pending_mass = {}
        return mass

    def flush_counts(self) -> Dict[int, int]:
        """Per-rater flagged-rating counts since the last call."""
        counts = self._pending_counts
        self._pending_counts = {}
        return counts

    def prune(self) -> None:
        for detector in self.detectors.values():
            detector.prune()

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        products = {}
        for pid, detector in self.detectors.items():
            products[str(pid)] = {
                "detector": detector.state_dict(),
                "recent": [[p, r] for p, r in self.recent[pid]],
                "charged": sorted(self.charged[pid]),
            }
        return {
            "products": products,
            "pending_mass": {str(k): v for k, v in self._pending_mass.items()},
            "pending_counts": {str(k): v for k, v in self._pending_counts.items()},
            "n_evaluations": self.n_evaluations,
            "n_flagged": self.n_flagged,
        }

    def load_state(self, state: dict) -> None:
        self.detectors = {}
        self.recent = {}
        self.charged = {}
        for pid_str, product_state in state["products"].items():
            pid = int(pid_str)
            detector = self._make_detector()
            detector.load_state(product_state["detector"])
            self.detectors[pid] = detector
            self.recent[pid] = deque(
                ((int(p), int(r)) for p, r in product_state["recent"]),
                maxlen=self.window_size,
            )
            self.charged[pid] = {int(p) for p in product_state["charged"]}
            if self.on_new_product is not None:
                self.on_new_product()
        self._pending_mass = {
            int(k): float(v) for k, v in state["pending_mass"].items()
        }
        self._pending_counts = {
            int(k): int(v) for k, v in state["pending_counts"].items()
        }
        self.n_evaluations = int(state.get("n_evaluations", 0))
        self.n_flagged = int(state.get("n_flagged", 0))
        self.last_flagged = False
