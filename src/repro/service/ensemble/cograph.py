"""Incremental rater-rater co-rating graph collusion source.

Collusion rings (Allahbakhsh et al., PAPERS.md) are invisible to the
per-product AR signal model: each colluder's ratings can look smooth,
but the *set* of colluders keeps rating the same products with the
same values.  This source maintains a bounded rater-rater graph at
ingest -- an edge per pair that rated a common product, weighted by
co-rating count and rating agreement -- and periodically scores its
connected components: a dense component whose edges mostly agree is a
candidate ring, and its members are charged suspicion proportional to
the component's density times its mean agreement.

Everything is bounded so the hot path stays O(1)-ish:

* per-product rater memory is an LRU dict capped at
  ``max_raters_per_product`` (evictions feed the ensemble eviction
  metric);
* each arrival co-rates against at most ``co_fanout`` of the product's
  most recent raters;
* the edge set is capped at ``max_edges`` (weakest edges dropped at
  scoring time);
* component scoring runs only every ``score_every`` flushes.

Plain dicts and union-find only -- the serving tier takes no graph
library dependency.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.ratings.models import Rating
from repro.service.ensemble.base import OnlineSuspicionSource, unit_suspicion

__all__ = ["CoRatingGraphSource"]

Edge = Tuple[int, int]


class CoRatingGraphSource(OnlineSuspicionSource):
    """Bounded incremental co-rating graph with component scoring.

    Args:
        threshold: minimum component score (density x mean agreement,
            in ``[0, 1]``) for its members to be charged.
        score_every: run component scoring every N-th flush.
        agreement_eps: two co-ratings of a product *agree* when their
            values differ by at most this much.
        min_edge_weight: edges with fewer co-ratings are ignored by
            scoring (one shared product is not evidence).
        min_agreement: edges whose agreeing fraction is below this are
            ignored by scoring -- it is what separates a colluding
            clique from honest raters who merely share products: the
            honest-to-colluder edges disagree and drop out, so the
            ring forms its own component.
        min_component_size: smaller components are never charged
            (a single agreeing pair is not a ring).
        max_raters_per_product: LRU cap on each product's remembered
            raters.
        co_fanout: max recent co-raters each arrival links against.
        max_edges: cap on the global edge set; the weakest edges are
            evicted at scoring time.
    """

    name = "cograph"

    def __init__(
        self,
        threshold: float = 0.5,
        score_every: int = 1,
        agreement_eps: float = 0.1,
        min_edge_weight: int = 2,
        min_agreement: float = 0.75,
        min_component_size: int = 3,
        max_raters_per_product: int = 1024,
        co_fanout: int = 16,
        max_edges: int = 50_000,
    ) -> None:
        super().__init__(threshold=threshold, score_every=score_every)
        if agreement_eps < 0:
            raise ConfigurationError(
                f"agreement_eps must be >= 0, got {agreement_eps}"
            )
        if min_edge_weight < 1:
            raise ConfigurationError(
                f"min_edge_weight must be >= 1, got {min_edge_weight}"
            )
        if not 0.0 <= min_agreement <= 1.0:
            raise ConfigurationError(
                f"min_agreement must lie in [0, 1], got {min_agreement}"
            )
        if min_component_size < 2:
            raise ConfigurationError(
                f"min_component_size must be >= 2, got {min_component_size}"
            )
        if max_raters_per_product < 1:
            raise ConfigurationError(
                f"max_raters_per_product must be >= 1, got {max_raters_per_product}"
            )
        if co_fanout < 1:
            raise ConfigurationError(f"co_fanout must be >= 1, got {co_fanout}")
        if max_edges < 1:
            raise ConfigurationError(f"max_edges must be >= 1, got {max_edges}")
        self.agreement_eps = float(agreement_eps)
        self.min_edge_weight = int(min_edge_weight)
        self.min_agreement = float(min_agreement)
        self.min_component_size = int(min_component_size)
        self.max_raters_per_product = int(max_raters_per_product)
        self.co_fanout = int(co_fanout)
        self.max_edges = int(max_edges)
        # product -> LRU of rater -> last rating value (most recent last).
        self._products: Dict[int, "OrderedDict[int, float]"] = {}
        # (low_rater, high_rater) -> [co_count, agree_count].
        self._edges: Dict[Edge, List[int]] = {}
        # rater -> ratings seen since the last scoring pass.
        self._counts: Dict[int, int] = {}
        self._since_score = 0

    # -- protocol ----------------------------------------------------------

    def observe(self, rating: Rating) -> None:
        rid, value = rating.rater_id, rating.value
        raters = self._products.get(rating.product_id)
        if raters is None:
            raters = OrderedDict()
            self._products[rating.product_id] = raters
        if rid in raters:
            del raters[rid]  # re-insert at the recent end below
        else:
            # Link against the product's most recent raters (bounded
            # fanout keeps the hot path constant-time).
            linked = 0
            for other, other_value in reversed(raters.items()):
                edge = (rid, other) if rid < other else (other, rid)
                weights = self._edges.get(edge)
                if weights is None:
                    weights = [0, 0]
                    self._edges[edge] = weights
                weights[0] += 1
                if abs(value - other_value) <= self.agreement_eps:
                    weights[1] += 1
                linked += 1
                if linked >= self.co_fanout:
                    break
        raters[rid] = value
        if len(raters) > self.max_raters_per_product:
            raters.popitem(last=False)
            self._record_evictions(1)
        self._counts[rid] = self._counts.get(rid, 0) + 1

    def flush(self) -> Dict[int, float]:
        self._since_score += 1
        if self._since_score < self.score_every:
            return {}
        self._since_score = 0
        mass = self._score_components()
        self._counts = {}
        self._trim_edges()
        return mass

    # -- scoring -----------------------------------------------------------

    def _qualifying_edges(self) -> List[Tuple[Edge, List[int]]]:
        return [
            (edge, weights)
            for edge, weights in self._edges.items()
            if weights[0] >= self.min_edge_weight
            and weights[1] / weights[0] >= self.min_agreement
        ]

    def _score_components(self) -> Dict[int, float]:
        """Charge members of dense, agreeing components.

        Component score = edge density (``2|E| / n(n-1)``) times the
        mean per-edge agreement ratio -- both in ``[0, 1]``, so the
        product is a valid per-rating suspicion level.  A member's
        mass is the level times the ratings they contributed since the
        last scoring pass, mirroring the AR source's
        level-per-charged-rating accounting.
        """
        qualifying = self._qualifying_edges()
        if not qualifying:
            return {}
        parent: Dict[int, int] = {}

        def find(node: int) -> int:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:
                parent[node], node = root, parent[node]
            return root

        for (a, b), _ in qualifying:
            parent.setdefault(a, a)
            parent.setdefault(b, b)
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        members: Dict[int, List[int]] = {}
        for node in parent:
            members.setdefault(find(node), []).append(node)
        edges_of: Dict[int, List[List[int]]] = {}
        for (a, b), weights in qualifying:
            edges_of.setdefault(find(a), []).append(weights)

        mass: Dict[int, float] = {}
        for root, nodes in members.items():
            n = len(nodes)
            if n < self.min_component_size:
                continue
            component_edges = edges_of.get(root, [])
            density = 2.0 * len(component_edges) / (n * (n - 1))
            agreement = sum(w[1] / w[0] for w in component_edges) / len(
                component_edges
            )
            score = min(1.0, density) * agreement
            if score < self.threshold:
                continue
            level = unit_suspicion(score)
            for rater_id in nodes:
                charged = self._counts.get(rater_id, 0)
                if charged:
                    mass[rater_id] = mass.get(rater_id, 0.0) + level * charged
        return mass

    def _trim_edges(self) -> None:
        """Evict the weakest edges once over the cap (deterministic)."""
        overflow = len(self._edges) - self.max_edges
        if overflow <= 0:
            return
        ranked = sorted(
            self._edges.items(), key=lambda item: (item[1][0], item[0])
        )
        for edge, _ in ranked[:overflow]:
            del self._edges[edge]
        self._record_evictions(overflow)

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "products": {
                str(pid): [[r, v] for r, v in raters.items()]
                for pid, raters in self._products.items()
            },
            "edges": [
                [a, b, w[0], w[1]] for (a, b), w in self._edges.items()
            ],
            "counts": {str(k): v for k, v in self._counts.items()},
            "since_score": self._since_score,
            "n_evictions": self.n_evictions,
        }

    def load_state(self, state: dict) -> None:
        self._products = {}
        for pid_str, rows in state["products"].items():
            raters: "OrderedDict[int, float]" = OrderedDict()
            for rid, value in rows:
                raters[int(rid)] = float(value)
            self._products[int(pid_str)] = raters
        self._edges = {
            (int(a), int(b)): [int(co), int(agree)]
            for a, b, co, agree in state["edges"]
        }
        self._counts = {int(k): int(v) for k, v in state["counts"].items()}
        self._since_score = int(state["since_score"])
        self.n_evictions = int(state.get("n_evictions", 0))
