"""The online-detector ensemble protocol and suspicion combiners.

The serving tier originally hard-wired one detector family (the
paper's AR signal model) into the ingest path.  This module defines
the small protocol that makes serve-time detection pluggable:

* :class:`OnlineSuspicionSource` -- one streaming detector.  The
  engine calls :meth:`~OnlineSuspicionSource.observe` for every
  accepted rating (hot path: must be O(1)-ish and never raise on
  ordinary data) and :meth:`~OnlineSuspicionSource.flush` at every
  trust-batch boundary.  ``flush`` returns the per-rater **suspicion
  mass** accumulated since the previous flush: each individual rating
  a source charges contributes a level in ``[0, 1]`` (validated by
  :func:`unit_suspicion`), and a rater's mass is the sum over their
  charged ratings -- the same accounting Procedure 1 feeds Procedure 2
  with.  ``state_dict``/``load_state`` round-trip the bounded
  streaming state through snapshots so crash recovery reproduces the
  pre-crash ensemble bit-for-bit.
* Combiners -- :func:`combine_weighted_mean` and :func:`combine_max`
  merge the per-source flush masses into the single per-rater value
  handed to the trust manager.  With a single enabled source of
  weight 1 the weighted mean is exactly that source's mass, so an
  AR-only ensemble behaves identically to the pre-ensemble engine.

Sources are registered by name in
:data:`repro.service.ensemble.SOURCE_NAMES`; the engine instantiates
them per shard from :class:`~repro.service.config.ServiceConfig`.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.ratings.models import Rating

__all__ = [
    "OnlineSuspicionSource",
    "combine_weighted_mean",
    "combine_max",
    "unit_suspicion",
    "COMBINERS",
]

# Domain contracts checked by `repro lint` (rule family DI): a single
# rating's suspicion charge is a probability-like level in [0, 1];
# combiner weights are non-negative.
__lint_contracts__ = {
    "unit_suspicion": {
        "params": {"suspicion": "[0, 1]"},
        "returns": "[0, 1]",
        "validates": ["suspicion"],
    },
    "OnlineSuspicionSource.__init__": {
        "params": {"threshold": "[0, 1]", "score_every": "[1, inf)"},
    },
}


def unit_suspicion(suspicion: float) -> float:
    """Validate one rating's suspicion level lies in ``[0, 1]``.

    Every source charges individual ratings with a level from this
    domain; masses returned by :meth:`OnlineSuspicionSource.flush` are
    sums of validated levels.  Raises
    :class:`~repro.errors.ConfigurationError` outside the domain.
    """
    if not 0.0 <= suspicion <= 1.0:
        raise ConfigurationError(
            f"suspicion level must lie in [0, 1], got {suspicion}"
        )
    return float(suspicion)


class OnlineSuspicionSource(abc.ABC):
    """One pluggable serve-time suspicion detector.

    Subclasses set :attr:`name` (the config/metrics label) and
    implement the four protocol methods.  The optional
    :attr:`on_eviction` callback reports bounded-memory evictions
    (the engine wires it to the
    ``repro_ensemble_evictions_total{source=...}`` counter).

    Args:
        threshold: source-specific alarm threshold in ``[0, 1]``
            (its precise meaning is up to the subclass).
        score_every: run the (possibly expensive) scoring step only on
            every N-th flush; in between, :meth:`flush` returns no
            mass while cheap per-rating state keeps accumulating.
    """

    #: Registry/config/metrics label; subclasses override.
    name: str = "source"

    def __init__(self, threshold: float = 0.5, score_every: int = 1) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"{self.name}: threshold must lie in [0, 1], got {threshold}"
            )
        if score_every < 1:
            raise ConfigurationError(
                f"{self.name}: score_every must be >= 1, got {score_every}"
            )
        self.threshold = float(threshold)
        self.score_every = int(score_every)
        self.n_evictions = 0
        self.on_eviction: Optional[Callable[[int], None]] = None

    def _record_evictions(self, count: int) -> None:
        """Tally ``count`` evictions and notify the engine hook."""
        if count <= 0:
            return
        self.n_evictions += count
        if self.on_eviction is not None:
            self.on_eviction(count)

    # -- protocol ----------------------------------------------------------

    @abc.abstractmethod
    def observe(self, rating: Rating) -> None:
        """Feed one accepted rating (engine hot path, shard lock held)."""

    @abc.abstractmethod
    def flush(self) -> Dict[int, float]:
        """Return and clear rater -> suspicion mass since the last flush."""

    @abc.abstractmethod
    def state_dict(self) -> dict:
        """JSON-serializable bounded state (see module docstring)."""

    @abc.abstractmethod
    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output; replaces current state."""

    def prune(self) -> None:
        """Drop stale bookkeeping after a flush (default: nothing)."""


def combine_weighted_mean(
    per_source: Mapping[str, Mapping[int, float]],
    weights: Mapping[str, float],
) -> Dict[int, float]:
    """Weight-averaged suspicion mass across sources.

    Every enabled source participates in the denominator (a source
    that did not mention a rater contributes 0 mass), so one noisy
    source cannot dominate just by being the only one to fire.  With a
    single source of weight 1 the result is bit-for-bit that source's
    mass, which is what keeps an AR-only ensemble identical to the
    pre-ensemble engine.
    """
    total_weight = sum(weights[name] for name in per_source)
    if total_weight <= 0.0:
        raise ConfigurationError("combined source weights must sum to > 0")
    combined: Dict[int, float] = {}
    for name, masses in per_source.items():
        weight = weights[name]
        for rater_id, mass in masses.items():
            combined[rater_id] = combined.get(rater_id, 0.0) + weight * mass
    return {rater_id: value / total_weight for rater_id, value in combined.items()}


def combine_max(
    per_source: Mapping[str, Mapping[int, float]],
    weights: Mapping[str, float],
) -> Dict[int, float]:
    """Most-alarmed-source-wins: the max of weighted per-source masses."""
    combined: Dict[int, float] = {}
    for name, masses in per_source.items():
        weight = weights[name]
        for rater_id, mass in masses.items():
            weighted = weight * mass
            if weighted > combined.get(rater_id, 0.0):
                combined[rater_id] = weighted
    return combined


#: Combiner name (the ``ensemble_combiner`` config value) -> function.
COMBINERS: Dict[str, Callable[..., Dict[int, float]]] = {
    "weighted_mean": combine_weighted_mean,
    "max": combine_max,
}
