"""Pluggable online detector ensemble for the serving tier.

Public surface:

* :class:`OnlineSuspicionSource` -- the protocol every serve-time
  detector implements (see :mod:`repro.service.ensemble.base`).
* The shipped sources: :class:`ARSuspicionSource` (the paper's AR
  signal model), :class:`CoRatingGraphSource` (incremental collusion
  graph), :class:`IterativeFilterSource` (online iterative filtering).
* :func:`build_sources` -- instantiate the sources a
  :class:`~repro.service.config.ServiceConfig` enables; the engine
  calls this once per shard.
* The combiners (:func:`combine_weighted_mean`, :func:`combine_max`,
  :data:`COMBINERS`) that merge per-source suspicion masses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.errors import ConfigurationError
from repro.service.ensemble.ar_source import ARSuspicionSource
from repro.service.ensemble.base import (
    COMBINERS,
    OnlineSuspicionSource,
    combine_max,
    combine_weighted_mean,
    unit_suspicion,
)
from repro.service.ensemble.cograph import CoRatingGraphSource
from repro.service.ensemble.iterfilter import IterativeFilterSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.config import ServiceConfig

__all__ = [
    "OnlineSuspicionSource",
    "ARSuspicionSource",
    "CoRatingGraphSource",
    "IterativeFilterSource",
    "SOURCE_NAMES",
    "build_sources",
    "combine_weighted_mean",
    "combine_max",
    "unit_suspicion",
    "COMBINERS",
]

#: Names accepted by ``ServiceConfig.ensemble_sources``, in canonical
#: order.
SOURCE_NAMES = ("ar", "cograph", "iterfilter")


def build_sources(config: "ServiceConfig") -> Dict[str, OnlineSuspicionSource]:
    """Instantiate the sources ``config`` enables, in config order.

    Duck-types the config (it only reads attributes) so this module
    never imports :mod:`repro.service.config` at runtime -- the config
    module itself calls this for fail-fast validation.
    """
    thresholds = config.source_thresholds
    periods = config.source_periods
    sources: Dict[str, OnlineSuspicionSource] = {}
    for name in config.ensemble_sources:
        if name == "ar":
            sources[name] = ARSuspicionSource(
                order=config.detector_order,
                threshold=thresholds[name],
                window_size=config.detector_window,
                stride=config.detector_stride,
                method=config.detector_method,
                scale=config.detector_scale,
                incremental=config.incremental_enabled,
                max_raters_per_product=config.max_raters_per_product,
            )
        elif name == "cograph":
            sources[name] = CoRatingGraphSource(
                threshold=thresholds[name],
                score_every=periods[name],
                max_raters_per_product=config.max_raters_per_product,
            )
        elif name == "iterfilter":
            sources[name] = IterativeFilterSource(
                threshold=thresholds[name],
                score_every=periods[name],
            )
        else:  # pragma: no cover - config validation rejects these
            raise ConfigurationError(
                f"unknown ensemble source {name!r}; "
                f"choose from {list(SOURCE_NAMES)}"
            )
    return sources
