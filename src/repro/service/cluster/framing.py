"""Length-prefixed JSON framing over ``multiprocessing.connection``.

One frame = one JSON object, UTF-8 encoded, carried as a single
``send_bytes``/``recv_bytes`` unit (the stdlib connection layer adds
the length prefix and never delivers a torn frame).  JSON rather than
pickle keeps the protocol inspectable and closed against arbitrary
code execution if the socket is ever misused; the ``authkey`` HMAC
handshake of :class:`multiprocessing.connection.Listener` rejects
strangers before the first frame.

Every message is a dict with a ``"type"`` key.  Coordinator -> worker:
``ingest`` (batched ``[coordinator_seq, rating_dict]`` entries),
``rpc`` (id + op), ``trust`` (reply to a digest), ``welcome`` (reply
to ``hello``, carrying the current trust table).  Worker ->
coordinator: ``connect``, ``hello`` (post-recovery watermark),
``digest`` (trust flush digest), ``processed`` (cumulative ingest
credit), ``reply`` (rpc response).

Float fidelity: ``json`` round-trips Python floats bit-for-bit
(repr-based shortest-form encoding), which is what lets the cluster
make bit-for-bit state guarantees across the wire.
"""

from __future__ import annotations

import json
from multiprocessing.connection import Connection
from typing import Any, Dict

__all__ = ["send_msg", "recv_msg"]


def send_msg(conn: Connection, msg: Dict[str, Any]) -> None:
    """Send one JSON frame (not thread-safe; callers hold a write lock)."""
    conn.send_bytes(json.dumps(msg, separators=(",", ":")).encode("utf-8"))


def recv_msg(conn: Connection) -> Dict[str, Any]:
    """Receive one JSON frame (raises ``EOFError`` on a closed peer)."""
    return json.loads(conn.recv_bytes().decode("utf-8"))
