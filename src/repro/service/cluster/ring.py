"""Consistent-hash ring routing products to cluster workers.

The coordinator places ``replicas`` virtual nodes per worker on a
ring keyed by md5 (stable across processes and Python builds, unlike
the salted builtin ``hash``), and each product is owned by the first
virtual node clockwise from its own hash point.  Routing is therefore
a pure function of ``(n_workers, replicas, product_id)``: every
coordinator restart, and every redelivery pass over the ingest WAL,
routes each entry to the same worker.

Changing ``n_workers`` over an existing WAL directory changes the
ownership map and is rejected by the coordinator (the embedded
snapshot config is compared at recovery); consistent hashing still
earns its keep by keeping the map *mostly* stable for the day that
migration support makes resizing legal, and by spreading load evenly
at small worker counts.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

__all__ = ["ConsistentHashRing"]

__lint_contracts__ = {
    "ConsistentHashRing.__init__": {
        "params": {"n_workers": "[1, inf)", "replicas": "[1, inf)"},
    },
}


def _point(key: str) -> int:
    """Stable 64-bit ring position for a string key."""
    return int.from_bytes(hashlib.md5(key.encode("ascii")).digest()[:8], "big")


class ConsistentHashRing:
    """Maps product ids onto worker indexes via consistent hashing.

    Args:
        n_workers: number of workers (ring members), ``>= 1``.
        replicas: virtual nodes per worker; more replicas smooth the
            load split at the cost of a larger (still tiny) ring.
    """

    def __init__(self, n_workers: int, replicas: int = 64) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.n_workers = int(n_workers)
        self.replicas = int(replicas)
        points: List[Tuple[int, int]] = []
        for worker in range(self.n_workers):
            for replica in range(self.replicas):
                points.append((_point(f"worker-{worker}:{replica}"), worker))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [w for _, w in points]

    def owner(self, product_id: int) -> int:
        """Worker index owning a product (first vnode clockwise)."""
        position = _point(f"product:{product_id}")
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):  # wrap past the top of the ring
            index = 0
        return self._owners[index]

    def spread(self, product_ids) -> Dict[int, int]:
        """Worker index -> owned-product count over an id collection."""
        counts = {worker: 0 for worker in range(self.n_workers)}
        for product_id in product_ids:
            counts[self.owner(product_id)] += 1
        return counts
