"""Cluster worker process: a single-shard engine behind a socket.

``worker_main`` is the spawn target for one worker.  The worker owns a
plain :class:`~repro.service.engine.RatingEngine` (one shard, its own
WAL subdirectory and tiered store, its own detector ensemble) built in
**trust-delegate mode**: every trust flush becomes a digest frame sent
to the coordinator, whose reply is the authoritative trust table.

Startup sequence (identical for a cold start and a post-crash
restart, which is what makes supervision simple):

1. connect to the coordinator and send ``connect`` -- the connection
   must exist *before* recovery because replayed flushes re-emit their
   digests through it (the coordinator deduplicates by digest seq);
2. recover (or freshly create) the engine from the worker's WAL
   subdirectory;
3. compute the **watermark** -- the highest coordinator sequence
   number this worker has durably processed: the snapshot's
   ``client_meta["coord_seq"]`` covers the garbage-collected prefix,
   and the ``meta={"g": ...}`` stamps on the on-disk WAL suffix cover
   everything since;
4. send ``hello`` with the watermark; the coordinator replies
   ``welcome`` with the current trust table (without this a recovered
   worker would serve scores from an empty mirror until its next
   flush) and then redelivers every owned ingest-WAL entry above the
   watermark;
5. run the frame loop: apply ``ingest`` batches through
   ``engine.submit`` (stamping each entry's coordinator seq into the
   WAL meta and ``client_meta``), answer ``rpc`` frames, and report
   cumulative ``processed`` counts for the coordinator's credit-based
   backpressure window.

A dropped coordinator connection is treated as a crash of the pair:
the worker syncs what it has and exits; recovery truth lives in the
WALs on both sides.
"""

from __future__ import annotations

import collections
import queue
import sys
import threading
import traceback
from multiprocessing.connection import Client, Connection
from pathlib import Path
from typing import Dict, Optional

from repro.errors import UnknownProductError
from repro.ratings.models import Rating
from repro.service.cluster.framing import recv_msg, send_msg
from repro.service.config import ServiceConfig
from repro.service.engine import RatingEngine
from repro.service.wal import rating_from_dict, replay_wal_meta, wal_exists

__all__ = ["worker_main", "compute_watermark"]


def compute_watermark(engine: RatingEngine) -> int:
    """Highest coordinator seq durably processed by this worker.

    ``client_meta["coord_seq"]`` from the latest snapshot covers every
    entry the snapshot saw (including rejected ones, which never reach
    the worker WAL); the ``g`` metas on the on-disk WAL suffix cover
    accepted entries since.  ``-1`` means "nothing yet" -- the
    coordinator redelivers from sequence 0.
    """
    watermark = int(engine.client_meta.get("coord_seq", -1))
    if engine.wal is not None:
        for _, _, meta in replay_wal_meta(
            engine.wal.directory, start=engine.wal.first_seq
        ):
            if meta is not None and "g" in meta:
                watermark = max(watermark, int(meta["g"]))
    return watermark


class _WorkerRuntime:
    """The worker process's threads, queues, and engine."""

    def __init__(self, index: int, conn: Connection) -> None:
        self.index = index
        self.conn = conn
        self.engine: Optional[RatingEngine] = None
        self._send_lock = threading.Lock()
        # Replies to synchronous sends (digest -> trust, hello ->
        # welcome) bypass the work queue so the engine can block on
        # them mid-flush while ingest frames keep queueing behind.
        self._control: "queue.Queue[dict]" = queue.Queue()
        self._work: "collections.deque[dict]" = collections.deque()
        self._work_ready = threading.Condition()
        self._processed = 0  # cumulative ingest entries applied

    # -- transport ---------------------------------------------------------

    def send(self, msg: dict) -> None:
        with self._send_lock:
            send_msg(self.conn, msg)

    def recv_loop(self) -> None:
        """Socket -> queues; runs on a daemon thread.

        Never blocks on anything but the socket itself: the work deque
        is unbounded in-process, and is bounded in practice by the
        coordinator's credit window (it stops sending when
        ``sent - processed`` exceeds the queue depth).
        """
        while True:
            try:
                msg = recv_msg(self.conn)
            except (EOFError, OSError):
                msg = {"type": "coordinator_lost"}
            kind = msg.get("type")
            if kind in ("trust", "welcome"):
                self._control.put(msg)
            else:
                with self._work_ready:
                    self._work.append(msg)
                    self._work_ready.notify()
            if kind == "coordinator_lost":
                self._control.put(msg)
                return

    def next_work(self) -> dict:
        with self._work_ready:
            while not self._work:
                self._work_ready.wait()
            return self._work.popleft()

    # -- engine hooks ------------------------------------------------------

    def trust_delegate(self, digest: dict) -> Dict[int, float]:
        """Ship one flush digest; block for the authoritative table."""
        self.send({"type": "digest", "worker": self.index, "digest": digest})
        reply = self._control.get()
        if reply.get("type") != "trust":
            raise EOFError("coordinator connection lost mid-flush")
        return {int(k): float(v) for k, v in reply["table"].items()}

    # -- frame handlers ----------------------------------------------------

    def handle_ingest(self, msg: dict) -> None:
        assert self.engine is not None
        for g, row in msg["entries"]:
            rating = rating_from_dict(row)
            # Stamp the coordinator seq before the submit: accepted
            # entries carry it in their WAL meta, and the snapshot's
            # client_meta covers rejected ones (which are never
            # logged locally but must not be redelivered forever).
            self.engine.client_meta["coord_seq"] = int(g)
            self.engine.submit(rating, wal_meta={"g": int(g)})
        self._processed += len(msg["entries"])
        self.send(
            {"type": "processed", "worker": self.index, "n": self._processed}
        )

    def handle_rpc(self, msg: dict) -> bool:
        """Answer one rpc frame; returns False when the loop should end."""
        assert self.engine is not None
        op = msg["op"]
        reply: dict = {"type": "reply", "id": msg["id"]}
        keep_running = True
        try:
            if op == "score":
                try:
                    reply["value"] = self.engine.score(int(msg["product_id"]))
                except UnknownProductError:
                    reply["error"] = "unknown_product"
            elif op == "has_product":
                reply["value"] = self.engine.has_product(int(msg["product_id"]))
            elif op == "flush":
                self.engine.flush()
                reply["ok"] = True
            elif op == "stats":
                reply["value"] = self.engine.snapshot_stats()
            elif op == "storage":
                reply["value"] = self.engine.storage_stats()
            elif op == "ensemble":
                reply["value"] = self.engine.ensemble_stats()
            elif op == "prepare_snapshot":
                # Phase 1: flush so the coordinator's snapshot covers
                # every digest this worker will ever emit for its
                # current WAL contents.  No ingest frames can arrive
                # between prepare and commit -- the coordinator holds
                # its route lock across the whole protocol.
                self.engine.flush()
                reply["ok"] = True
            elif op == "commit_snapshot":
                # Phase 2: persist local state; the reported watermark
                # lets the coordinator GC its ingest WAL.
                self.engine.snapshot()
                reply["watermark"] = int(
                    self.engine.client_meta.get("coord_seq", -1)
                )
            elif op == "shutdown":
                # close() flushes first, so the final digests reach the
                # coordinator while its reader still serves replies.
                self.engine.close()
                reply["ok"] = True
                keep_running = False
            else:
                reply["error"] = f"unknown rpc op {op!r}"
        except Exception as exc:  # noqa: BLE001 - rpc boundary: the
            # coordinator turns this into a ReproError; the worker
            # process must survive a failing query.
            reply["error"] = f"{type(exc).__name__}: {exc}"
        self.send(reply)
        return keep_running

    def run(self) -> None:
        while True:
            msg = self.next_work()
            kind = msg["type"]
            if kind == "ingest":
                self.handle_ingest(msg)
            elif kind == "rpc":
                if not self.handle_rpc(msg):
                    return
            elif kind == "coordinator_lost":
                # Crash semantics by design: durable truth is in the
                # WALs.  Sync what we have and leave.
                if self.engine is not None and self.engine.wal is not None:
                    self.engine.wal.sync()
                return


def worker_main(index: int, address: str, authkey: bytes, config: dict) -> None:
    """Process entry point for worker ``index`` (spawn target).

    ``config`` is the worker's own engine config
    (:meth:`ServiceConfig.worker_config` output) as a plain dict --
    spawn pickles the args, and a dict keeps the pickle surface
    minimal.
    """
    try:
        worker_config = ServiceConfig.from_dict(config)
        conn = Client(address, authkey=authkey)
        runtime = _WorkerRuntime(index, conn)
        runtime.send({"type": "connect", "worker": index})
        receiver = threading.Thread(
            target=runtime.recv_loop, name=f"worker-{index}-recv", daemon=True
        )
        receiver.start()
        assert worker_config.wal_dir is not None
        wal_dir = Path(worker_config.wal_dir)
        if wal_exists(wal_dir):
            engine = RatingEngine.recover(
                wal_dir,
                config=worker_config,
                trust_delegate=runtime.trust_delegate,
            )
        else:
            engine = RatingEngine(
                config=worker_config, trust_delegate=runtime.trust_delegate
            )
        watermark = compute_watermark(engine)
        # Fold the scanned watermark back into client_meta so a later
        # snapshot (and its GC horizon report) cannot regress below
        # entries the recovery replay already covered.
        engine.client_meta["coord_seq"] = watermark
        runtime.engine = engine
        runtime.send({"type": "hello", "worker": index, "watermark": watermark})
        welcome = runtime._control.get()
        if welcome.get("type") != "welcome":
            raise EOFError("coordinator connection lost during handshake")
        engine.install_trust_mirror(
            {int(k): float(v) for k, v in welcome["table"].items()}
        )
        runtime.run()
    except Exception:  # noqa: BLE001 - process boundary: leave a trace
        traceback.print_exc(file=sys.stderr)
        sys.exit(1)
