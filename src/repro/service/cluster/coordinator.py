"""The cluster coordinator: durable async ingest over worker processes.

:class:`ClusterCoordinator` presents the :class:`RatingEngine` serving
surface (``submit``/``score``/``trust``/``snapshot_stats``/...) while
fanning the actual work out to ``cluster_workers`` single-shard engine
processes (:mod:`repro.service.cluster.worker`), so AR refits and
ensemble sweeps run on real parallel cores instead of time-slicing one
GIL.

**Ack path** (the latency-critical line): ``submit`` appends the
rating to the coordinator's own ingest WAL (group-committed every
``cluster_ack_fsync_every`` appends) and enqueues it on the owning
worker's bounded queue -- the ack means *durably queued*, detection
and trust updates happen asynchronously in the worker
(:attr:`SubmitResult.queued`).  A full queue blocks the submit:
backpressure, not unbounded memory.

**Trust** is coordinator-side: workers send per-flush digests
(provided counts, combined suspicion, flagged counts) and receive the
authoritative post-update trust table in reply.  Digests carry the
worker's deterministic flush counter, so redelivered digests after a
crash are recognized and skipped while the reply still refreshes the
worker's read mirror.

**Failure model**: every acked rating is in the ingest WAL.  Workers
stamp each applied entry with its coordinator sequence number (WAL
meta + snapshot ``client_meta``), and report that *watermark* on
(re)connect; the coordinator redelivers owned entries above it.  A
worker death therefore costs a restart + bounded replay, never an
acked rating: the supervisor restarts the process, the worker recovers
its engine from its own WAL, and redelivery closes the gap.

**Snapshots** are a two-phase, cluster-wide protocol (see
:meth:`snapshot`): pause ingest, drain, have every worker flush
(phase 1 -- so the coordinator state about to be written covers every
digest the workers' durable state can regenerate), write the
coordinator snapshot, then have every worker snapshot locally
(phase 2) and garbage-collect the ingest WAL up to the lowest
watermark.  Writing the coordinator state *between* the two phases is
what makes a crash at any point recoverable without losing or
double-applying a digest.
"""

from __future__ import annotations

import itertools
import logging
import os
import queue
import tempfile
import threading
import time
from multiprocessing import get_context
from multiprocessing.connection import Connection, Listener
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, ReproError, UnknownProductError
from repro.ratings.models import Rating
from repro.service.cluster.framing import recv_msg, send_msg
from repro.service.cluster.ring import ConsistentHashRing
from repro.service.cluster.worker import worker_main
from repro.service.config import ServiceConfig
from repro.service.engine import SubmitResult
from repro.service.metrics import MetricsRegistry
from repro.service.wal import (
    WriteAheadLog,
    latest_snapshot,
    prune_snapshots,
    rating_to_dict,
    read_snapshot,
    replay_wal,
    write_snapshot,
)
from repro.trust.manager import TrustManager, TrustManagerConfig

__all__ = ["ClusterCoordinator"]

logger = logging.getLogger(__name__)

# Durability contracts (lint rules DP01-DP03): an ack may only follow
# the rating's append to the ingest WAL, and the snapshot protocol
# syncs the WAL before writing state and only GCs segments the written
# snapshot (plus the workers' own snapshots) covers.
__effect_contracts__ = {
    "ack_providers": ["ClusterCoordinator._ack"],
    "orderings": {
        "ClusterCoordinator.submit": [["wal_append", "ack"]],
        "ClusterCoordinator.snapshot": [
            ["wal_fsync", "snapshot_write"],
            ["snapshot_write", "wal_gc"],
        ],
    },
}

#: Sentinel closing a worker's send queue.
_STOP = object()

_HELLO_TIMEOUT = 300.0
_RPC_TIMEOUT = 120.0


class _WorkerHandle:
    """Coordinator-side state for one worker process.

    Credit-window fields (``sent``/``processed``/``busy``) are guarded
    by the ``credit`` condition; ``digest_seq`` by the coordinator's
    trust lock; the rest is mutated only under the route/restart locks
    or before the worker is visible.
    """

    def __init__(self, index: int, depth: int) -> None:
        self.index = index
        self.process = None
        self.conn: Optional[Connection] = None
        self.queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self.send_lock = threading.Lock()
        self.credit = threading.Condition()
        self.sent = 0  # entries sent on the current connection
        self.processed = 0  # entries the worker confirmed applying
        self.busy = False  # sender holds a popped, unsent batch
        self.discard = False  # drop queued entries (redelivery owns them)
        self.watermark = -1  # highest coordinator seq worker durably holds
        self.digest_seq = 0  # last trust digest applied (trust lock)
        self.hello = threading.Event()
        self.up = False
        self.reader: Optional[threading.Thread] = None
        self.sender: Optional[threading.Thread] = None


class ClusterCoordinator:
    """Multi-process serving tier behind the engine's interface.

    Args:
        config: cluster config -- ``cluster_workers >= 1`` and a
            ``wal_dir`` are required; per-worker engine configs are
            derived via :meth:`ServiceConfig.worker_config`.
        metrics: registry for coordinator-side metrics (ack latency,
            per-worker queue depth and liveness, ingest WAL fsyncs).

    The constructor doubles as recovery: if the coordinator
    subdirectory holds a snapshot, trust state and per-worker digest
    dedup seqs are restored from it, workers recover their own engines
    from their WAL subdirectories, and the handshake's watermark
    exchange redelivers whatever the workers missed.
    """

    _GUARDED_BY = {
        "trust_manager": "_trust_lock",
        "_suspicion_totals": "_trust_lock",
        "_n_trust_updates": "_trust_lock",
    }

    def __init__(
        self,
        config: ServiceConfig,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if config.cluster_workers < 1:
            raise ConfigurationError(
                "ClusterCoordinator needs cluster_workers >= 1 "
                "(use RatingEngine for the in-process tier)"
            )
        assert config.wal_dir is not None  # enforced by ServiceConfig
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ring = ConsistentHashRing(config.cluster_workers)
        self.trust_manager = TrustManager(
            config=TrustManagerConfig(
                badness_weight=config.trust_badness_weight,
                detection_threshold=config.trust_detection_threshold,
                forgetting_factor=config.trust_forgetting_factor,
            )
        )
        self._trust_lock = threading.Lock()
        self._suspicion_totals: Dict[int, float] = {}
        self._n_trust_updates = 0
        self._route_lock = threading.RLock()
        self._restart_lock = threading.Lock()
        self._rpc_ids = itertools.count(1)
        self._rpcs: Dict[int, tuple] = {}
        self._rpcs_lock = threading.Lock()
        self._closing = False
        self._started = time.monotonic()

        m = self.metrics
        self._m_latency = m.histogram(
            "repro_ingest_latency_seconds", "Wall time spent per submit() call."
        )
        self._m_accepted = m.counter(
            "repro_ratings_accepted_total", "Ratings acked (WAL-logged and queued)."
        )
        self._m_rejected = m.counter(
            "repro_ratings_rejected_total",
            "Ratings refused at worker ingest (aggregated across workers).",
        )
        self._m_refits = m.counter(
            "repro_ar_refits_total",
            "Streaming AR model evaluations (aggregated across workers).",
        )
        self._m_flagged = m.counter(
            "repro_windows_flagged_total",
            "Suspicious window verdicts (aggregated across workers).",
        )
        self._m_trust_updates = m.counter(
            "repro_trust_updates_total", "Worker digests applied (Procedure 2 runs)."
        )
        self._m_fsync = m.histogram(
            "repro_wal_fsync_seconds", "Duration of ingest-WAL fsync calls."
        )
        self._m_wal_segments = m.gauge(
            "repro_wal_segments", "Ingest-WAL segment files currently on disk."
        )
        self._m_queue_depth = [
            m.gauge(
                "repro_ingest_queue_depth",
                "Acked ratings waiting in a worker's bounded ingest queue.",
                labels={"worker": str(i)},
            )
            for i in range(config.cluster_workers)
        ]
        self._m_worker_up = [
            m.gauge(
                "repro_worker_up",
                "1 while the worker process is connected and serving.",
                labels={"worker": str(i)},
            )
            for i in range(config.cluster_workers)
        ]

        coordinator_dir = Path(config.wal_dir) / "coordinator"
        state: Optional[dict] = None
        snapshot_path = latest_snapshot(coordinator_dir)
        if snapshot_path is not None:
            state = read_snapshot(snapshot_path)
            saved = ServiceConfig.from_dict(state["config"])
            if saved.cluster_workers != config.cluster_workers:
                raise ConfigurationError(
                    f"WAL directory was written by a "
                    f"{saved.cluster_workers}-worker cluster; resizing to "
                    f"{config.cluster_workers} workers is not supported "
                    f"(the hash ring would reroute owned products)"
                )
        self.wal: WriteAheadLog = WriteAheadLog(
            coordinator_dir,
            fsync_every=config.cluster_ack_fsync_every,
            segment_entries=config.wal_segment_entries,
            on_fsync=self._m_fsync.observe,
            on_rotate=self._m_wal_segments.set,
        )
        self._m_wal_segments.set(self.wal.n_segments)

        self._handles = [
            _WorkerHandle(i, config.cluster_queue_depth)
            for i in range(config.cluster_workers)
        ]
        if state is not None:
            self._load_snapshot_state(state)

        # AF_UNIX socket in a private temp dir: path length stays under
        # the sockaddr_un limit no matter how deep wal_dir nests.
        self._sockdir = tempfile.mkdtemp(prefix="repro-cluster-")
        self._address = os.path.join(self._sockdir, "coordinator.sock")
        self._authkey = os.urandom(16)
        self._listener = Listener(self._address, "AF_UNIX", authkey=self._authkey)
        self._ctx = get_context("spawn")

        started = False
        try:
            for handle in self._handles:
                self._spawn(handle)
            pending: Dict[int, Connection] = {}
            for _ in self._handles:
                index, conn = self._accept(timeout=_HELLO_TIMEOUT)
                pending[index] = conn
            if sorted(pending) != list(range(len(self._handles))):
                raise ReproError(
                    f"cluster handshake mismatch: got connects from "
                    f"{sorted(pending)}"
                )
            for handle in self._handles:
                handle.conn = pending[handle.index]
                self._start_reader(handle)
            for handle in self._handles:
                self._await_hello(handle)
            self._reconcile_lost_tail()
            for handle in self._handles:
                self._welcome(handle)
                self._redeliver(handle)
                handle.up = True
                self._m_worker_up[handle.index].set(1.0)
            for handle in self._handles:
                self._start_sender(handle)
            started = True
        finally:
            if not started:
                self._teardown_transport()

    # -- process / transport plumbing -------------------------------------

    def _spawn(self, handle: _WorkerHandle) -> None:
        worker_config = self.config.worker_config(handle.index)
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(
                handle.index,
                self._address,
                self._authkey,
                worker_config.to_dict(),
            ),
            name=f"repro-cluster-worker-{handle.index}",
        )
        handle.process.start()

    def _accept(self, timeout: float) -> tuple:
        """Accept one worker connection and read its ``connect`` frame."""
        result: dict = {}
        done = threading.Event()

        def run() -> None:
            try:
                conn = self._listener.accept()
                msg = recv_msg(conn)
                result["conn"] = conn
                result["index"] = int(msg["worker"])
            except Exception as exc:  # noqa: BLE001 - reported below
                result["error"] = exc
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        if not done.wait(timeout) or "conn" not in result:
            codes = {
                h.index: (h.process.exitcode if h.process is not None else None)
                for h in self._handles
            }
            raise ReproError(
                f"cluster worker failed to connect within {timeout:.0f}s "
                f"(worker exit codes: {codes}; error: {result.get('error')})"
            )
        return result["index"], result["conn"]

    def _start_reader(self, handle: _WorkerHandle) -> None:
        handle.reader = threading.Thread(
            target=self._reader_loop,
            args=(handle, handle.conn),
            name=f"cluster-reader-{handle.index}",
            daemon=True,
        )
        handle.reader.start()

    def _start_sender(self, handle: _WorkerHandle) -> None:
        handle.sender = threading.Thread(
            target=self._sender_loop,
            args=(handle,),
            name=f"cluster-sender-{handle.index}",
            daemon=True,
        )
        handle.sender.start()

    def _await_hello(self, handle: _WorkerHandle) -> None:
        if not handle.hello.wait(_HELLO_TIMEOUT):
            exitcode = (
                handle.process.exitcode if handle.process is not None else None
            )
            raise ReproError(
                f"cluster worker {handle.index} did not finish recovery "
                f"within {_HELLO_TIMEOUT:.0f}s (exit code: {exitcode})"
            )

    def _reconcile_lost_tail(self) -> None:
        """Keep ingest sequence numbers unique across a torn WAL tail.

        A coordinator crash can lose the unsynced tail of the ingest
        WAL -- acks inside the ``cluster_ack_fsync_every`` group-commit
        window -- while the owning workers already applied (and
        durably logged) those very entries.  The ratings themselves
        are safe in the worker WALs; the danger is sequence reuse: a
        fresh append would hand a new rating a sequence number some
        worker has already stamped on an old one, aliasing the two in
        every watermark/redelivery computation from then on.  Pad the
        log with control rows (bounded by the fsync window) so the
        next real append lands above every worker's watermark.
        """
        top = max(handle.watermark for handle in self._handles)
        lost = top + 1 - self.wal.n_entries
        if lost <= 0:
            return
        logger.warning(
            "ingest WAL lost %d acked entries to a crash (worker "
            "watermark %d, WAL end %d); padding to keep sequence "
            "numbers unique",
            lost,
            top,
            self.wal.n_entries,
        )
        for _ in range(lost):
            self.wal.append_control({"lost_ack_tail": True})
        self.wal.sync()

    def _welcome(self, handle: _WorkerHandle) -> None:
        """Push the current trust table so a recovered worker's read
        mirror is warm before it serves a single score."""
        with self._trust_lock:
            table = {
                str(rid): value
                for rid, value in self.trust_manager.trust_table().items()
            }
        with handle.send_lock:
            send_msg(handle.conn, {"type": "welcome", "table": table})

    def _teardown_transport(self) -> None:
        """Best-effort cleanup for a failed startup or final close."""
        for handle in self._handles:
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=10)
        try:
            self._listener.close()
        except OSError:
            pass
        try:
            # Ephemeral rendezvous socket in a mkdtemp dir -- losing
            # the unlink to a power failure is harmless, so no
            # directory fsync is owed here.
            os.unlink(self._address)  # repro: lint-disable[DP01]
        except OSError:
            pass
        try:
            os.rmdir(self._sockdir)
        except OSError:
            pass

    # -- background threads -------------------------------------------------

    def _reader_loop(self, handle: _WorkerHandle, conn: Connection) -> None:
        """Dispatch frames from one worker connection until it drops."""
        while True:
            try:
                msg = recv_msg(conn)
            except (EOFError, OSError):
                break
            kind = msg.get("type")
            if kind == "digest":
                self._apply_digest(handle, msg["digest"], conn)
            elif kind == "hello":
                handle.watermark = int(msg["watermark"])
                handle.hello.set()
            elif kind == "processed":
                with handle.credit:
                    handle.processed = int(msg["n"])
                    handle.credit.notify_all()
            elif kind == "reply":
                self._complete_rpc(msg)
        if conn is not handle.conn:
            return  # superseded by a restart; the new reader owns the handle
        self._on_worker_down(handle)

    def _sender_loop(self, handle: _WorkerHandle) -> None:
        """Drain the bounded queue into batched ingest frames.

        Honors the credit window (``sent - processed`` never exceeds
        the queue depth, so worker-side buffering stays bounded) and
        the ``discard`` flag: while a worker is down its acked entries
        are simply dropped here -- the ingest WAL owns them and the
        restart path redelivers everything above the watermark, so
        discarding can never lose an acked rating, and it is what
        keeps a full queue from deadlocking the restart.
        """
        batch_max = self.config.cluster_batch_max
        while True:
            item = self.queue_get(handle)
            stop = item is _STOP
            batch: List[list] = [] if stop else [item]
            while not stop and len(batch) < batch_max:
                try:
                    extra = handle.queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stop = True
                    break
                batch.append(extra)
            if batch and not handle.discard:
                try:
                    self._send_ingest(handle, batch)
                except (OSError, ValueError):
                    pass  # worker dropped mid-send; redelivery owns the batch
            with handle.credit:
                handle.busy = False
                handle.credit.notify_all()
            if stop:
                return

    def queue_get(self, handle: _WorkerHandle):
        """Blocking pop that marks the handle busy atomically-enough:
        the ``busy`` flag is raised before this returns, so drain loops
        never observe an empty queue while a batch is in flight."""
        item = handle.queue.get()
        with handle.credit:
            handle.busy = True
        return item

    def _send_ingest(self, handle: _WorkerHandle, batch: List[list]) -> None:
        with handle.credit:
            while (
                not handle.discard
                and handle.sent - handle.processed + len(batch)
                > self.config.cluster_queue_depth
            ):
                handle.credit.wait(0.1)
            if handle.discard:
                return
        with handle.send_lock:
            send_msg(handle.conn, {"type": "ingest", "entries": batch})
        with handle.credit:
            handle.sent += len(batch)

    def _apply_digest(
        self, handle: _WorkerHandle, digest: dict, conn: Connection
    ) -> None:
        """Procedure-2 update from one worker flush digest.

        Application order matches the in-process engine's
        ``_flush_shard`` exactly (provided, then suspicion values, then
        flagged counts, then ``update()``), which is what makes a
        single-worker cluster bit-for-bit equal to the in-process
        engine.  Digests at or below the worker's last applied seq are
        replays after a crash: skipped, but still answered with the
        current table so the worker's mirror refreshes.
        """
        seq = int(digest["seq"])
        with self._trust_lock:
            if seq > handle.digest_seq:
                observations = self.trust_manager.observations
                for rid, count in digest["provided"].items():
                    observations.record_provided(int(rid), int(count))
                for rid, value in digest["suspicion"].items():
                    observations.record_suspicion_value(int(rid), float(value))
                    key = int(rid)
                    self._suspicion_totals[key] = (
                        self._suspicion_totals.get(key, 0.0) + float(value)
                    )
                for rid, count in digest["flagged"].items():
                    observations.record_suspicious(int(rid), int(count))
                self.trust_manager.update()
                handle.digest_seq = seq
                self._n_trust_updates += 1
                self._m_trust_updates.inc()
            table = {
                str(rid): value
                for rid, value in self.trust_manager.trust_table().items()
            }
        with handle.send_lock:
            send_msg(conn, {"type": "trust", "table": table})

    # -- supervision ---------------------------------------------------------

    def _on_worker_down(self, handle: _WorkerHandle) -> None:
        if self._closing:
            return
        handle.up = False
        self._m_worker_up[handle.index].set(0.0)
        with handle.credit:
            handle.discard = True
            handle.credit.notify_all()
        self._fail_rpcs(handle)
        try:
            self._restart_worker(handle)
        except Exception:  # noqa: BLE001 - supervisor boundary: a failed
            # restart leaves the worker down (acked entries stay safe in
            # the ingest WAL and redeliver on the next successful start).
            logger.exception("cluster worker %d restart failed", handle.index)

    def _fail_rpcs(self, handle: _WorkerHandle) -> None:
        with self._rpcs_lock:
            doomed = [
                rid
                for rid, (owner, _, _) in self._rpcs.items()
                if owner is handle
            ]
            for rid in doomed:
                _, event, slot = self._rpcs.pop(rid)
                slot["msg"] = {"error": f"worker {handle.index} connection lost"}
                event.set()

    def _restart_worker(self, handle: _WorkerHandle) -> None:
        """Supervisor: respawn a dead worker and close its ingest gap.

        Holding the route lock across the respawn freezes the ingest
        WAL end, so the redelivery range ``(watermark, end)`` is exact;
        the discarding sender has already drained (or is draining) the
        bounded queue, so waiting on it cannot deadlock against a
        blocked submit.
        """
        with self._restart_lock:
            logger.warning("cluster worker %d died; restarting", handle.index)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
            if handle.process is not None:
                handle.process.join(timeout=30)
            with self._route_lock:
                self._drain_handle(handle)
                handle.hello.clear()
                with handle.credit:
                    handle.sent = 0
                    handle.processed = 0
                self._spawn(handle)
                index, conn = self._accept(timeout=_HELLO_TIMEOUT)
                if index != handle.index:
                    raise ReproError(
                        f"restart handshake: expected worker {handle.index}, "
                        f"got {index}"
                    )
                handle.conn = conn
                self._start_reader(handle)
                self._await_hello(handle)
                self._welcome(handle)
                self._redeliver(handle)
                with handle.credit:
                    handle.discard = False
                    handle.credit.notify_all()
                handle.up = True
                self._m_worker_up[handle.index].set(1.0)
                logger.warning(
                    "cluster worker %d recovered (watermark %d)",
                    handle.index,
                    handle.watermark,
                )

    def _redeliver(self, handle: _WorkerHandle) -> None:
        """Resend owned ingest-WAL entries above the worker's watermark.

        Callers hold the route lock, so ``wal.n_entries`` is frozen and
        every replayed entry either reached the worker durably (``<=``
        watermark, skipped) or is resent here in original ack order.
        Re-sent entries the worker *did* process but could not fsync
        are re-applied idempotently: rejected ones reject again
        deterministically, and accepted ones were lost with the torn
        WAL tail they would have occupied.
        """
        self.wal.sync()
        end = self.wal.n_entries
        start = handle.watermark + 1
        if start >= end:
            return
        batch: List[list] = []
        resent = 0
        for seq, rating in replay_wal(self.wal.directory, start=start):
            if self.ring.owner(rating.product_id) != handle.index:
                continue
            batch.append([seq, rating_to_dict(rating)])
            resent += 1
            if len(batch) >= self.config.cluster_batch_max:
                self._send_ingest_direct(handle, batch)
                batch = []
        if batch:
            self._send_ingest_direct(handle, batch)
        if resent:
            logger.info(
                "cluster worker %d: redelivered %d entries from seq %d",
                handle.index,
                resent,
                start,
            )

    def _send_ingest_direct(self, handle: _WorkerHandle, batch: List[list]) -> None:
        """Redelivery send: same credit window, but never discards."""
        with handle.credit:
            while (
                handle.sent - handle.processed + len(batch)
                > self.config.cluster_queue_depth
            ):
                handle.credit.wait(0.1)
        with handle.send_lock:
            send_msg(handle.conn, {"type": "ingest", "entries": batch})
        with handle.credit:
            handle.sent += len(batch)

    def _drain_handle(self, handle: _WorkerHandle, timeout: float = 600.0) -> None:
        """Wait until the worker's queue is empty and all sent entries
        are confirmed applied (or discarded).  Route lock held."""
        deadline = time.monotonic() + timeout
        while True:
            with handle.credit:
                idle = handle.queue.empty() and not handle.busy and (
                    handle.discard or handle.sent <= handle.processed
                )
            if idle:
                return
            if time.monotonic() > deadline:
                raise ReproError(
                    f"cluster worker {handle.index} failed to drain within "
                    f"{timeout:.0f}s"
                )
            time.sleep(0.001)

    # -- rpc ----------------------------------------------------------------

    def _rpc(
        self,
        handle: _WorkerHandle,
        op: str,
        timeout: float = _RPC_TIMEOUT,
        **kwargs,
    ) -> dict:
        if not handle.up:
            raise ReproError(f"cluster worker {handle.index} is down")
        rpc_id = next(self._rpc_ids)
        event = threading.Event()
        slot: dict = {}
        with self._rpcs_lock:
            self._rpcs[rpc_id] = (handle, event, slot)
        try:
            with handle.send_lock:
                send_msg(
                    handle.conn, {"type": "rpc", "id": rpc_id, "op": op, **kwargs}
                )
        except (OSError, ValueError) as exc:
            with self._rpcs_lock:
                self._rpcs.pop(rpc_id, None)
            raise ReproError(
                f"cluster worker {handle.index} unreachable: {exc}"
            ) from exc
        if not event.wait(timeout):
            with self._rpcs_lock:
                self._rpcs.pop(rpc_id, None)
            raise ReproError(
                f"cluster worker {handle.index} rpc {op!r} timed out "
                f"after {timeout:.0f}s"
            )
        msg = slot["msg"]
        error = msg.get("error")
        if error == "unknown_product":
            raise UnknownProductError(
                f"product {kwargs.get('product_id')} is not registered"
            )
        if error:
            raise ReproError(f"cluster worker {handle.index} {op}: {error}")
        return msg

    def _complete_rpc(self, msg: dict) -> None:
        with self._rpcs_lock:
            entry = self._rpcs.pop(int(msg["id"]), None)
        if entry is None:
            return  # timed out and abandoned
        _, event, slot = entry
        slot["msg"] = msg
        event.set()

    # -- ingest ---------------------------------------------------------------

    def submit(self, rating: Rating) -> SubmitResult:
        """Durably log one rating and queue it to its owning worker.

        The ack means *durably queued*: the rating is in the ingest WAL
        (fsynced every ``cluster_ack_fsync_every`` appends) and will
        reach the owning worker even across worker crashes.  Rejection
        (out-of-order time) happens asynchronously at the worker, so an
        acked rating can still be refused later -- mirroring any
        at-least-once ingestion pipeline.  A full worker queue blocks
        here (backpressure).
        """
        start = time.perf_counter()
        if self._closing:
            raise ReproError("cluster is shutting down")
        handle = self._handles[self.ring.owner(rating.product_id)]
        with self._route_lock:
            seq = self.wal.append(rating)
            handle.queue.put([seq, rating_to_dict(rating)])
        result = self._ack(seq)
        self._m_latency.observe(time.perf_counter() - start)
        return result

    def _ack(self, seq: int) -> SubmitResult:
        """Acknowledge a durably-queued rating (lint DP02 ack provider)."""
        self._m_accepted.inc()
        return SubmitResult(accepted=True, seq=seq, queued=True)

    def submit_many(self, ratings) -> List[SubmitResult]:
        """Ingest a batch; returns one (queued) result per rating."""
        return [self.submit(rating) for rating in ratings]

    @property
    def n_accepted(self) -> int:
        """Ratings ever acked (= ingest WAL entries)."""
        return self.wal.n_entries

    @property
    def n_workers(self) -> int:
        return len(self._handles)

    # -- queries --------------------------------------------------------------

    def _owner_handle(self, product_id: int) -> _WorkerHandle:
        return self._handles[self.ring.owner(product_id)]

    def _wait_applied(self, handle: _WorkerHandle, timeout: float = 30.0) -> None:
        """Best-effort read-your-writes: let the worker catch up to the
        entries already queued before serving the read."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with handle.credit:
                caught_up = handle.queue.empty() and not handle.busy and (
                    handle.sent <= handle.processed
                )
            if caught_up or not handle.up:
                return
            time.sleep(0.001)

    def score(self, product_id: int) -> Optional[float]:
        """Trust-weighted score from the owning worker.

        Waits (bounded) for the worker to apply already-acked entries
        first, so a score read right after an ack sees the rating.
        """
        handle = self._owner_handle(product_id)
        self._wait_applied(handle)
        return self._rpc(handle, "score", product_id=int(product_id))["value"]

    def has_product(self, product_id: int) -> bool:
        """True when the owning worker has seen the product."""
        handle = self._owner_handle(product_id)
        self._wait_applied(handle)
        return bool(
            self._rpc(handle, "has_product", product_id=int(product_id))["value"]
        )

    def trust(self, rater_id: int) -> float:
        """Current trust in a rater (authoritative, coordinator-side)."""
        with self._trust_lock:
            return self.trust_manager.trust(rater_id)

    def trust_table(self) -> Dict[int, float]:
        """rater_id -> trust for every rater with a record."""
        with self._trust_lock:
            return dict(self.trust_manager.trust_table())

    def detected_malicious(self) -> List[int]:
        """Raters currently below the detection threshold."""
        with self._trust_lock:
            return self.trust_manager.detected_malicious()

    def suspicion_table(self) -> Dict[int, float]:
        """rater_id -> combined suspicion mass ever applied via digests."""
        with self._trust_lock:
            return dict(self._suspicion_totals)

    def _await_workers(self, deadline: float) -> None:
        """Block until every worker is up (a restart may be in flight).

        Must be called *without* the route lock: a supervisor restart
        needs that lock to finish, so waiting while holding it would
        deadlock against the recovery this wait is waiting for.
        """
        while True:
            down = [h.index for h in self._handles if not h.up]
            if not down:
                return
            if time.monotonic() > deadline:
                raise ReproError(f"cluster workers {down} did not recover")
            time.sleep(0.005)

    def flush(self, timeout: float = 600.0) -> None:
        """Drain every queue and flush every worker's pending tallies.

        Rides out worker restarts: if a worker dies mid-flush (or was
        already mid-restart when flush was called), waits for the
        supervisor to bring it back and retries, failing only after
        ``timeout`` seconds without a full healthy pass.
        """
        deadline = time.monotonic() + timeout
        while True:
            self._await_workers(deadline)
            try:
                with self._route_lock:
                    for handle in self._handles:
                        self._drain_handle(handle)
                    for handle in self._handles:
                        self._rpc(handle, "flush")
                return
            except ReproError:
                # Only a concurrent worker death is retryable; a worker
                # that answered with an error would fail again anyway.
                if all(h.up for h in self._handles) or time.monotonic() > deadline:
                    raise

    def ensemble_stats(self) -> dict:
        """Merged detector-ensemble config + counters across workers."""
        merged: Optional[dict] = None
        for handle in self._handles:
            if not handle.up:
                continue
            try:
                stats = self._rpc(handle, "ensemble")["value"]
            except ReproError:
                continue
            if merged is None:
                merged = stats
            else:
                for name, source in stats["sources"].items():
                    merged["sources"][name]["n_evictions"] += source["n_evictions"]
        if merged is None:
            merged = {"combiner": self.config.ensemble_combiner, "sources": {}}
        return merged

    def snapshot_stats(self) -> dict:
        """Cluster-wide counters: coordinator view + per-worker stats."""
        workers = []
        totals = {"evaluations": 0, "flagged": 0, "rejected": 0, "products": 0}
        ensemble: Optional[dict] = None
        for handle in self._handles:
            entry: dict = {"worker": handle.index, "up": handle.up}
            if handle.up:
                try:
                    stats = self._rpc(handle, "stats")["value"]
                except ReproError:
                    entry["up"] = False
                else:
                    entry.update(stats)
                    totals["evaluations"] += int(stats["ar_evaluations"])
                    totals["flagged"] += int(stats["windows_flagged"])
                    totals["rejected"] += int(stats["n_rejected"])
                    totals["products"] += int(stats["n_products"])
                    worker_ensemble = stats.get("ensemble")
                    if worker_ensemble is not None:
                        if ensemble is None:
                            ensemble = worker_ensemble
                        else:
                            for name, source in worker_ensemble["sources"].items():
                                ensemble["sources"][name]["n_evictions"] += (
                                    source["n_evictions"]
                                )
            workers.append(entry)
        self._m_rejected.inc_to(totals["rejected"])
        self._m_flagged.inc_to(totals["flagged"])
        self._m_refits.inc_to(totals["evaluations"])
        uptime = time.monotonic() - self._started
        with self._trust_lock:
            n_raters = len(self.trust_manager.rater_ids)
            trust_updates = self._n_trust_updates
        accepted = self.n_accepted
        if ensemble is None:
            ensemble = {"combiner": self.config.ensemble_combiner, "sources": {}}
        return {
            "uptime_seconds": uptime,
            "n_accepted": accepted,
            "n_rejected": totals["rejected"],
            "n_products": totals["products"],
            "n_raters": n_raters,
            "n_shards": len(self._handles),
            "n_workers": len(self._handles),
            "ar_evaluations": totals["evaluations"],
            "windows_flagged": totals["flagged"],
            "trust_updates": trust_updates,
            "ratings_per_second": accepted / uptime if uptime > 0 else 0.0,
            "workers": workers,
            "ensemble": ensemble,
            "wal_entries": self.wal.n_entries,
        }

    def storage_stats(self) -> dict:
        """Tier occupancy per worker plus the coordinator's ingest WAL."""
        workers = []
        hot = cold = pending = 0
        for handle in self._handles:
            entry: dict = {"worker": handle.index, "up": handle.up}
            if handle.up:
                try:
                    stats = self._rpc(handle, "storage")["value"]
                except ReproError:
                    entry["up"] = False
                else:
                    entry.update(stats)
                    hot += int(stats.get("hot_ratings", 0))
                    cold += int(stats.get("cold_ratings", 0))
                    pending += int(stats.get("pending_ratings", 0))
            workers.append(entry)
        segments = self.wal.segments()
        self._m_wal_segments.set(len(segments))
        return {
            "backend": self.config.store_backend,
            "hot_ratings": hot,
            "cold_ratings": cold,
            "pending_ratings": pending,
            "workers": workers,
            "wal": {
                "directory": str(self.wal.directory),
                "n_entries": self.wal.n_entries,
                "first_seq": self.wal.first_seq,
                "n_segments": len(segments),
                "segment_entries": self.wal.segment_entries,
                "segments": [
                    {"start": start, "file": path.name}
                    for start, path in segments
                ],
                "gc_enabled": bool(self.config.wal_gc),
            },
        }

    def render_metrics(self) -> str:
        """Refresh per-worker gauges and render the Prometheus text."""
        for handle in self._handles:
            self._m_queue_depth[handle.index].set(handle.queue.qsize())
            self._m_worker_up[handle.index].set(1.0 if handle.up else 0.0)
        return self.metrics.render()

    # -- durability -----------------------------------------------------------

    def _state_dict(self) -> dict:
        with self._trust_lock:
            trust_state = {
                str(rid): {
                    "successes": record.successes,
                    "failures": record.failures,
                    "history": list(record.history),
                }
                for rid, record in (
                    (rid, self.trust_manager.record(rid))
                    for rid in self.trust_manager.rater_ids
                )
            }
            suspicion_state = {
                str(rid): value for rid, value in self._suspicion_totals.items()
            }
            digest_seqs = {
                str(handle.index): handle.digest_seq for handle in self._handles
            }
            n_trust_updates = self._n_trust_updates
        return {
            "version": 1,
            "config": self.config.to_dict(),
            "wal_position": self.wal.n_entries,
            "n_trust_updates": n_trust_updates,
            "trust": trust_state,
            "suspicion_totals": suspicion_state,
            "digest_seqs": digest_seqs,
        }

    def _load_snapshot_state(self, state: dict) -> None:
        with self._trust_lock:
            for rid_str, record_state in state["trust"].items():
                record = self.trust_manager.register_rater(int(rid_str))
                record.successes = float(record_state["successes"])
                record.failures = float(record_state["failures"])
                record.history = [float(v) for v in record_state["history"]]
            self._suspicion_totals = {
                int(k): float(v)
                for k, v in state.get("suspicion_totals", {}).items()
            }
            self._n_trust_updates = int(state.get("n_trust_updates", 0))
            for index_str, seq in state.get("digest_seqs", {}).items():
                self._handles[int(index_str)].digest_seq = int(seq)

    def snapshot(self) -> Path:
        """Cluster-wide two-phase snapshot; returns the coordinator's path.

        Under the route lock (no new acks) and after a full drain:

        1. **prepare** -- every worker flushes, so every digest its
           durable WAL can ever regenerate is applied here *before*
           the coordinator state is written;
        2. the coordinator writes its own snapshot (trust records,
           suspicion totals, per-worker digest dedup seqs);
        3. **commit** -- every worker snapshots locally and reports
           its watermark;
        4. the ingest WAL is GC'd below the lowest watermark (each
           entry at or below it is durably inside some worker's
           snapshot+WAL) and superseded coordinator snapshots pruned.

        A crash between 2 and 3 is safe: workers replay their WALs and
        re-emit post-snapshot digests, which the restored dedup seqs
        admit exactly once.  A crash between 1 and 2 merely loses the
        coordinator's progress -- the previous snapshot plus
        redelivered digests still reconstruct the same state.
        """
        self._await_workers(time.monotonic() + _RPC_TIMEOUT)
        with self._route_lock:
            for handle in self._handles:
                self._drain_handle(handle)
            for handle in self._handles:
                self._rpc(handle, "prepare_snapshot", timeout=_RPC_TIMEOUT)
            # fsync under the route lock on purpose: releasing it first
            # would let new appends blur the snapshot's cut point.
            self.wal.sync()  # repro: lint-disable[CC02]
            state = self._state_dict()
            path = write_snapshot(self.wal.directory, state)
            watermarks = []
            for handle in self._handles:
                reply = self._rpc(handle, "commit_snapshot", timeout=_RPC_TIMEOUT)
                watermarks.append(int(reply["watermark"]))
            if self.config.wal_gc:
                horizon = min(watermarks) + 1
                if horizon > 0:
                    # GC (and its directory fsync) stays under the
                    # route lock so the watermark-derived horizon
                    # cannot race a concurrent append's rotation.
                    self.wal.gc(horizon)  # repro: lint-disable[CC02]
                prune_snapshots(self.wal.directory, keep=1)
            return path

    def close(self) -> None:
        """Drain, snapshot, stop every worker, and release the WAL."""
        if self._closing:
            return
        try:
            self.flush()
        except ReproError:
            logger.exception("cluster close: flush failed")
        try:
            self.snapshot()
        except (ReproError, ConfigurationError):
            logger.exception("cluster close: final snapshot failed")
        self._closing = True
        for handle in self._handles:
            handle.queue.put(_STOP)
        for handle in self._handles:
            if handle.sender is not None:
                handle.sender.join(timeout=30)
            if handle.up:
                try:
                    self._rpc(handle, "shutdown", timeout=_RPC_TIMEOUT)
                except ReproError:
                    logger.exception(
                        "cluster close: worker %d shutdown rpc failed",
                        handle.index,
                    )
            handle.up = False
        self._teardown_transport()
        self.wal.close()
