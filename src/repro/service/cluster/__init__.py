"""Multi-process sharded serving tier.

The cluster escapes the GIL by running ``cluster_workers`` single-shard
:class:`~repro.service.engine.RatingEngine` processes behind a
:class:`~repro.service.cluster.coordinator.ClusterCoordinator` that
routes products over a consistent-hash ring, acks ratings after its
own WAL append (async ingest), aggregates trust centrally from worker
flush digests, and supervises worker restarts with watermark-based
redelivery so a crash never loses an acked rating.

Transport is pure stdlib: ``multiprocessing.connection`` over an
AF_UNIX socket with HMAC handshake, carrying length-prefixed JSON
frames (:mod:`repro.service.cluster.framing`).
"""

from repro.service.cluster.coordinator import ClusterCoordinator
from repro.service.cluster.framing import recv_msg, send_msg
from repro.service.cluster.ring import ConsistentHashRing
from repro.service.cluster.worker import compute_watermark, worker_main

__all__ = [
    "ClusterCoordinator",
    "ConsistentHashRing",
    "compute_watermark",
    "recv_msg",
    "send_msg",
    "worker_main",
]
