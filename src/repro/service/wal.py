"""Durability for the rating service: write-ahead log + snapshots.

The serving engine must survive a crash with its trust and suspicion
state intact.  Two stdlib-only mechanisms provide that:

* :class:`WriteAheadLog` -- an append-only JSON-Lines file of every
  *accepted* rating, written before the rating mutates any in-memory
  state.  Replaying the log through a fresh engine reproduces the
  exact pre-crash state, because the whole pipeline is deterministic
  in arrival order.
* Snapshots -- periodic JSON dumps of the engine's bounded state
  (trust records, the per-source state of the detector ensemble,
  pending batch tallies, counters) written atomically via
  ``os.replace``.  A snapshot records the WAL position it covers, so
  recovery only has to *re-process* the WAL suffix; the prefix is
  merely re-inserted into the rating store.  Snapshot version 2 added
  the ensemble state; version-1 snapshots (single AR detector) are
  upgraded transparently on load.

File layout inside a WAL directory::

    wal.jsonl                   append-only rating log
    snapshot-000000000420.json  state through the first 420 WAL entries

Recovery (:meth:`repro.service.engine.RatingEngine.recover`) loads the
highest-numbered snapshot and replays the WAL from its position.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.ratings.models import Rating

__all__ = [
    "WriteAheadLog",
    "rating_to_dict",
    "rating_from_dict",
    "write_snapshot",
    "read_snapshot",
    "latest_snapshot",
    "WAL_FILENAME",
]

PathLike = Union[str, Path]

WAL_FILENAME = "wal.jsonl"
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")


def rating_to_dict(rating: Rating) -> dict:
    """JSON-ready dict for one rating (inverse of :func:`rating_from_dict`)."""
    return asdict(rating)


def rating_from_dict(row: dict) -> Rating:
    """Rebuild a rating from its WAL/snapshot dict form."""
    try:
        return Rating(
            rating_id=int(row["rating_id"]),
            rater_id=int(row["rater_id"]),
            product_id=int(row["product_id"]),
            value=float(row["value"]),
            time=float(row["time"]),
            unfair=bool(row.get("unfair", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed WAL rating {row!r}: {exc}") from exc


class WriteAheadLog:
    """Append-only JSONL log of accepted ratings.

    Args:
        path: the log file; created (with parents) if absent, appended
            to if present.
        fsync_every: ``os.fsync`` after every N appends (1 = maximum
            durability, larger values trade a bounded tail of possibly
            lost ratings for throughput).
        on_fsync: optional callback receiving each fsync's duration in
            seconds (the engine feeds this into a histogram).
    """

    # Lint contract (CC03): the append path's state is owned by _lock.
    _GUARDED_BY = {
        "_count": "_lock",
        "_since_sync": "_lock",
        "_handle": "_lock",
    }

    def __init__(
        self,
        path: PathLike,
        fsync_every: int = 1,
        on_fsync: Optional[Callable[[float], None]] = None,
    ) -> None:
        if fsync_every < 1:
            raise ConfigurationError(f"fsync_every must be >= 1, got {fsync_every}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync_every = int(fsync_every)
        self._on_fsync = on_fsync
        self._lock = threading.Lock()
        self._count = self._count_existing()
        self._since_sync = 0
        self._handle = self._path.open("a", encoding="utf-8")

    def _count_existing(self) -> int:
        if not self._path.exists():
            return 0
        with self._path.open("r", encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())

    @property
    def path(self) -> Path:
        return self._path

    @property
    def n_entries(self) -> int:
        """Entries currently in the log (existing + appended)."""
        with self._lock:
            return self._count

    # -- writing ----------------------------------------------------------

    def append(self, rating: Rating) -> int:
        """Append one rating; returns its zero-based sequence number."""
        line = json.dumps(rating_to_dict(rating), separators=(",", ":"))
        with self._lock:
            if self._handle.closed:
                raise ConfigurationError(f"WAL {self._path} is closed")
            self._handle.write(line + "\n")
            seq = self._count
            self._count += 1
            self._since_sync += 1
            if self._since_sync >= self.fsync_every:
                self._sync_locked()
        return seq

    def _sync_locked(self) -> None:
        start = time.perf_counter()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_sync = 0
        if self._on_fsync is not None:
            self._on_fsync(time.perf_counter() - start)

    def sync(self) -> None:
        """Flush and fsync any buffered appends."""
        with self._lock:
            if not self._handle.closed:
                self._sync_locked()

    def close(self) -> None:
        """Sync and close the underlying file."""
        with self._lock:
            if not self._handle.closed:
                self._sync_locked()
                self._handle.close()

    # -- reading ----------------------------------------------------------

    def replay(self) -> Iterator[Tuple[int, Rating]]:
        """Yield ``(seq, rating)`` for every entry currently on disk."""
        return replay_wal(self._path)


def replay_wal(path: PathLike) -> Iterator[Tuple[int, Rating]]:
    """Stream ``(seq, rating)`` pairs from a WAL file (empty if absent)."""
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        seq = 0
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: corrupt WAL line: {exc}"
                ) from exc
            yield seq, rating_from_dict(row)
            seq += 1


# -- snapshots ------------------------------------------------------------


def _snapshot_path(directory: Path, wal_position: int) -> Path:
    return directory / f"snapshot-{wal_position:012d}.json"


def write_snapshot(directory: PathLike, state: dict) -> Path:
    """Atomically write an engine state snapshot.

    The state dict must carry a ``wal_position`` key (number of WAL
    entries it covers); the snapshot is written to a temp file and
    moved into place with ``os.replace`` so readers never observe a
    torn snapshot.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    try:
        wal_position = int(state["wal_position"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"snapshot state needs a wal_position: {exc}") from exc
    final = _snapshot_path(directory, wal_position)
    tmp = final.with_suffix(".json.tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(state, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    return final


def read_snapshot(path: PathLike) -> dict:
    """Load a snapshot written by :func:`write_snapshot`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            state = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable snapshot {path}: {exc}") from exc
    if "wal_position" not in state:
        raise ConfigurationError(f"snapshot {path} lacks wal_position")
    return state


def list_snapshots(directory: PathLike) -> List[Path]:
    """Snapshot files in a WAL directory, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        if _SNAPSHOT_RE.match(entry.name):
            found.append(entry)
    return sorted(found)


def latest_snapshot(directory: PathLike) -> Optional[Path]:
    """The highest-position snapshot in a WAL directory, if any."""
    snapshots = list_snapshots(directory)
    return snapshots[-1] if snapshots else None
