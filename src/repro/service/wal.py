"""Durability for the rating service: segmented WAL + snapshots.

The serving engine must survive a crash with its trust and suspicion
state intact, and must recover in time bounded by the work since its
last snapshot -- never by total history.  Two stdlib-only mechanisms
provide that:

* :class:`WriteAheadLog` -- an append-only JSON-Lines log of every
  *accepted* rating, written before the rating mutates any in-memory
  state.  The log is split into numbered **segments**
  (``wal-000000000012.jsonl`` holds entries from sequence 12 up), a
  new segment starting every ``segment_entries`` appends.  Replaying
  the log through a fresh engine reproduces the exact pre-crash
  state, because the whole pipeline is deterministic in arrival
  order.  Segments whose every entry is covered by the latest durable
  snapshot (and, with a durable rating backend, by the cold storage
  tier) can be garbage-collected with :meth:`WriteAheadLog.gc`, so
  disk usage and recovery time stay proportional to the suffix since
  the last snapshot.
* Snapshots -- periodic JSON dumps of the engine's bounded state
  (trust records, the per-source state of the detector ensemble,
  pending batch tallies, counters) written atomically via
  ``os.replace`` followed by a **directory fsync**, so a power loss
  after the rename cannot silently lose the file.  A snapshot records
  the WAL position it covers, so recovery only has to *re-process*
  the WAL suffix.  Snapshot version 2 added the ensemble state;
  version-1 snapshots (single AR detector) are upgraded transparently
  on load.

Crash tolerance at the byte level:

* A crash mid-append can leave one torn (truncated) final line in the
  newest segment.  :func:`replay_wal` tolerates exactly that -- the
  torn trailing line is logged and dropped -- and
  :class:`WriteAheadLog` truncates it away on open so a later append
  can never concatenate onto the partial record.  Corruption anywhere
  else still fails recovery loudly.
* Opening a WAL derives its entry count from segment names plus the
  newest segment only (O(segment), not O(history)), and takes an
  exclusive ``wal.lock`` so two engines can never silently interleave
  appends into one directory.

File layout inside a WAL directory::

    wal-000000000000.jsonl      entries [0, 12)   (rotated, GC-able)
    wal-000000000012.jsonl      entries [12, ...) (active segment)
    wal.lock                    exclusive-owner lockfile
    snapshot-000000000420.json  state through the first 420 WAL entries
    store/                      cold tier of the tiered rating backend

A legacy single-file ``wal.jsonl`` is adopted as the first segment
the next time a :class:`WriteAheadLog` opens the directory.

Recovery (:meth:`repro.service.engine.RatingEngine.recover`) loads the
highest-numbered snapshot and replays the WAL from its position.
"""

from __future__ import annotations

import json
import logging
import os
import re
import threading
import time
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple, Union

try:  # POSIX-only; the lockfile degrades to advisory-absent elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.errors import ConfigurationError
from repro.ratings.models import Rating

__all__ = [
    "WriteAheadLog",
    "rating_to_dict",
    "rating_from_dict",
    "replay_wal",
    "replay_wal_meta",
    "write_snapshot",
    "read_snapshot",
    "latest_snapshot",
    "list_snapshots",
    "prune_snapshots",
    "list_segments",
    "wal_exists",
    "WAL_FILENAME",
    "WAL_LOCK_FILENAME",
]

# Domain contracts checked by `repro lint` (rule family DI): sequence
# positions and GC horizons are non-negative; rotation/batching knobs
# are positive counts.
__lint_contracts__ = {
    "WriteAheadLog.__init__": {
        "params": {"fsync_every": "[1, inf)", "segment_entries": "[1, inf)"},
    },
    "WriteAheadLog.gc": {"params": {"horizon": "[0, inf)"}},
    "replay_wal": {"params": {"start": "[0, inf)"}},
    "replay_wal_meta": {"params": {"start": "[0, inf)"}},
    "prune_snapshots": {"params": {"keep": "[1, inf)"}},
}

logger = logging.getLogger(__name__)

PathLike = Union[str, Path]

#: Legacy single-file log name (pre-segment layouts; auto-migrated).
WAL_FILENAME = "wal.jsonl"
WAL_LOCK_FILENAME = "wal.lock"
_SEGMENT_RE = re.compile(r"^wal-(\d{12})\.jsonl$")
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")


def rating_to_dict(rating: Rating) -> dict:
    """JSON-ready dict for one rating (inverse of :func:`rating_from_dict`)."""
    return asdict(rating)


def rating_from_dict(row: dict) -> Rating:
    """Rebuild a rating from its WAL/snapshot dict form."""
    try:
        return Rating(
            rating_id=int(row["rating_id"]),
            rater_id=int(row["rater_id"]),
            product_id=int(row["product_id"]),
            value=float(row["value"]),
            time=float(row["time"]),
            unfair=bool(row.get("unfair", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed WAL rating {row!r}: {exc}") from exc


# -- directory plumbing ----------------------------------------------------


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table (renames/creates/unlinks)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - directory fsync unsupported
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync on dirs not permitted
        pass
    finally:
        os.close(fd)


def _segment_path(directory: Path, start: int) -> Path:
    return directory / f"wal-{start:012d}.jsonl"


def _resolve_directory(path: PathLike) -> Path:
    """Accept a WAL directory, or a legacy ``.../wal.jsonl`` file path."""
    path = Path(path)
    if path.name == WAL_FILENAME:
        return path.parent
    return path


def list_segments(directory: PathLike) -> List[Tuple[int, Path]]:
    """``(first_seq, path)`` per segment, oldest first.

    A legacy single-file ``wal.jsonl`` (not yet adopted by a
    :class:`WriteAheadLog`) is reported as a segment starting at 0.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _SEGMENT_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    if not found:
        legacy = directory / WAL_FILENAME
        if legacy.exists():
            found.append((0, legacy))
    return sorted(found)


def wal_exists(directory: PathLike) -> bool:
    """True when a directory holds WAL segments, a legacy log, or snapshots."""
    directory = Path(directory)
    if not directory.is_dir():
        return False
    return bool(list_segments(directory)) or latest_snapshot(directory) is not None


def _scan_segment(path: Path) -> Tuple[int, int, Optional[str]]:
    """Inspect one segment's tail: ``(n_entries, valid_bytes, torn)``.

    ``n_entries`` counts the non-blank lines that are safe to replay;
    ``valid_bytes`` is the byte length of that prefix; ``torn``
    describes a truncated/garbled *final* record when one exists (the
    signature of a crash mid-append).  Corruption before the final
    record is not this function's business -- replay detects it.
    """
    data = path.read_bytes()
    if not data:
        return 0, 0, None
    if data.endswith(b"\n"):
        body, partial = data, b""
    else:
        cut = data.rfind(b"\n") + 1
        body, partial = data[:cut], data[cut:]
    lines = body.split(b"\n")[:-1] if body else []
    n_entries = sum(1 for line in lines if line.strip())
    if partial:
        return n_entries, len(body), f"{len(partial)}-byte partial final line"
    # A torn write can also persist a garbled-but-newline-terminated
    # final record; validate just that one line (O(1), not O(segment)).
    offset = len(body)
    for line in reversed(lines):
        offset -= len(line) + 1  # the line plus its newline
        if not line.strip():
            continue
        try:
            json.loads(line)
        except json.JSONDecodeError:
            return n_entries - 1, offset, "unparseable final line"
        break
    return n_entries, len(data), None


class WriteAheadLog:
    """Append-only segmented JSONL log of accepted ratings.

    Args:
        path: the WAL directory; created (with parents) if absent.  A
            legacy ``.../wal.jsonl`` file path is accepted and resolves
            to its parent directory (the file itself is adopted as the
            first segment).
        fsync_every: ``os.fsync`` after every N appends (1 = maximum
            durability, larger values trade a bounded tail of possibly
            lost ratings for throughput).
        segment_entries: start a new segment after this many entries in
            the current one.  Smaller segments give the garbage
            collector finer granularity at the cost of more files.
        on_fsync: optional callback receiving each fsync's duration in
            seconds (the engine feeds this into a histogram).
        on_rotate: optional callback receiving the segment count after
            each rotation or garbage collection (the engine feeds this
            into the ``repro_wal_segments`` gauge).

    Opening the directory takes an exclusive ``wal.lock`` (via
    ``flock``): a second engine opening the same WAL fails fast with
    :class:`~repro.errors.ConfigurationError` instead of silently
    interleaving appends.  Opening also repairs a torn final line left
    by a crash mid-append -- the partial record is logged, truncated
    away, and the next append starts on a clean boundary.
    """

    # Lint contract (CC03): the append path's state is owned by _lock.
    _GUARDED_BY = {
        "_count": "_lock",
        "_since_sync": "_lock",
        "_handle": "_lock",
        "_segment_start": "_lock",
        "_segment_count": "_lock",
        "_segment_starts": "_lock",
    }

    def __init__(
        self,
        path: PathLike,
        fsync_every: int = 1,
        segment_entries: int = 100_000,
        on_fsync: Optional[Callable[[float], None]] = None,
        on_rotate: Optional[Callable[[int], None]] = None,
    ) -> None:
        if fsync_every < 1:
            raise ConfigurationError(f"fsync_every must be >= 1, got {fsync_every}")
        if segment_entries < 1:
            raise ConfigurationError(
                f"segment_entries must be >= 1, got {segment_entries}"
            )
        self._directory = _resolve_directory(path)
        self._directory.mkdir(parents=True, exist_ok=True)
        self.fsync_every = int(fsync_every)
        self.segment_entries = int(segment_entries)
        self._on_fsync = on_fsync
        self._on_rotate = on_rotate
        self._lock = threading.Lock()
        self._lock_fd = self._acquire_lockfile()
        try:
            self._cleanup_stale_tmp()
            self._migrate_legacy()
            self._open_segments()
        except Exception:
            self._release_lockfile()
            raise

    # -- open-time housekeeping -------------------------------------------

    def _acquire_lockfile(self) -> Optional[int]:
        """Take the directory's exclusive owner lock (fail fast if held)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return None
        lock_path = self._directory / WAL_LOCK_FILENAME
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise ConfigurationError(
                f"WAL directory {self._directory} is locked by another engine "
                f"(stale engines release {WAL_LOCK_FILENAME} when they exit)"
            ) from None
        os.ftruncate(fd, 0)
        os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        return fd

    def _release_lockfile(self) -> None:
        if self._lock_fd is not None:
            os.close(self._lock_fd)  # closing the fd drops the flock
            self._lock_fd = None

    def _cleanup_stale_tmp(self) -> None:
        """Remove snapshot temp files left by a crash mid-write."""
        removed = False
        for stale in self._directory.glob("*.json.tmp"):
            logger.warning("WAL %s: removing stale temp file %s", self._directory, stale.name)
            stale.unlink(missing_ok=True)
            removed = True
        if removed:
            # Make the removals durable: without a directory fsync a
            # power failure can resurrect the half-written temp files.
            _fsync_dir(self._directory)

    def _migrate_legacy(self) -> None:
        """Adopt a pre-segment ``wal.jsonl`` as the first segment."""
        legacy = self._directory / WAL_FILENAME
        if not legacy.exists():
            return
        segments = [
            (start, path)
            for start, path in list_segments(self._directory)
            if path.name != WAL_FILENAME
        ]
        if segments:
            raise ConfigurationError(
                f"{self._directory} holds both a legacy {WAL_FILENAME} and "
                f"numbered segments; remove one before opening"
            )
        os.replace(legacy, _segment_path(self._directory, 0))
        _fsync_dir(self._directory)

    def _open_segments(self) -> None:
        """Index segments, repair the newest one's tail, open for append.

        Only the newest segment is read (its name gives the sequence
        base, its lines the offset), so opening costs O(one segment)
        regardless of total history.  Runs single-threaded during
        construction -- no appender can exist yet.
        """
        segments = list_segments(self._directory)
        if not segments:
            segments = [(0, _segment_path(self._directory, 0))]
            segments[0][1].touch()
            _fsync_dir(self._directory)
        self._segment_starts = [start for start, _ in segments]
        start, newest = segments[-1]
        n_entries, valid_bytes, torn = _scan_segment(newest)
        if torn is not None:
            logger.warning(
                "WAL %s: dropping torn final record (%s) left by a crash "
                "mid-append", newest.name, torn
            )
            with newest.open("r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        self._segment_start = start
        self._segment_count = n_entries
        self._count = start + n_entries
        self._since_sync = 0
        self._handle = newest.open("a", encoding="utf-8")

    # -- introspection ----------------------------------------------------

    @property
    def directory(self) -> Path:
        """The WAL directory."""
        return self._directory

    @property
    def path(self) -> Path:
        """The active (newest) segment file."""
        with self._lock:
            return _segment_path(self._directory, self._segment_start)

    @property
    def n_entries(self) -> int:
        """Entries ever logged (existing + appended; GC does not lower it)."""
        with self._lock:
            return self._count

    @property
    def n_segments(self) -> int:
        """Segment files currently on disk."""
        with self._lock:
            return len(self._segment_starts)

    @property
    def first_seq(self) -> int:
        """Sequence number of the oldest entry still on disk."""
        with self._lock:
            return self._segment_starts[0]

    def segments(self) -> List[Tuple[int, Path]]:
        """``(first_seq, path)`` per live segment, oldest first."""
        with self._lock:
            return [
                (start, _segment_path(self._directory, start))
                for start in self._segment_starts
            ]

    # -- writing ----------------------------------------------------------

    def append(self, rating: Rating, meta: Optional[dict] = None) -> int:
        """Append one rating; returns its zero-based sequence number.

        ``meta`` is an optional JSON-serializable dict stored alongside
        the rating under a ``"meta"`` key.  Readers that only want the
        rating (:func:`replay_wal`, :func:`rating_from_dict`) ignore
        it; :func:`replay_wal_meta` surfaces it.  The cluster tier uses
        this to persist each entry's coordinator sequence number in the
        worker's local log.
        """
        row = rating_to_dict(rating)
        if meta is not None:
            row["meta"] = meta
        line = json.dumps(row, separators=(",", ":"))
        with self._lock:
            if self._handle.closed:
                raise ConfigurationError(f"WAL {self._directory} is closed")
            if self._segment_count >= self.segment_entries:
                self._rotate_locked()
            self._handle.write(line + "\n")
            seq = self._count
            self._count += 1
            self._segment_count += 1
            self._since_sync += 1
            if self._since_sync >= self.fsync_every:
                self._sync_locked()
        return seq

    def append_control(self, payload: dict) -> int:
        """Append a non-rating **control row**; returns its sequence number.

        Control rows record replayable events that are not ratings --
        the cluster tier writes ``{"flush": shard_index}`` markers so a
        recovering worker reproduces its explicit trust-digest flushes
        at exactly the positions they originally happened.  They share
        the rating rows' sequence space (so snapshot positions and GC
        horizons stay consistent) and the same rotation/fsync policy.
        :func:`replay_wal` skips them; :func:`replay_wal_meta` yields
        them as ``(seq, None, {"control": payload})``.
        """
        line = json.dumps({"control": payload}, separators=(",", ":"))
        with self._lock:
            if self._handle.closed:
                raise ConfigurationError(f"WAL {self._directory} is closed")
            if self._segment_count >= self.segment_entries:
                self._rotate_locked()
            self._handle.write(line + "\n")
            seq = self._count
            self._count += 1
            self._segment_count += 1
            self._since_sync += 1
            if self._since_sync >= self.fsync_every:
                self._sync_locked()
        return seq

    def _rotate_locked(self) -> None:
        """Seal the active segment and start the next one.

        The old segment is synced before the cutover so rotation never
        weakens durability, and the directory is fsynced after the new
        file is created so the rotation itself survives a power loss.
        """
        self._sync_locked()
        self._handle.close()
        self._segment_start = self._count
        self._segment_count = 0
        new_path = _segment_path(self._directory, self._segment_start)
        self._handle = new_path.open("a", encoding="utf-8")
        _fsync_dir(self._directory)
        self._segment_starts.append(self._segment_start)
        if self._on_rotate is not None:
            self._on_rotate(len(self._segment_starts))

    def _sync_locked(self) -> None:
        start = time.perf_counter()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_sync = 0
        if self._on_fsync is not None:
            self._on_fsync(time.perf_counter() - start)

    def sync(self) -> None:
        """Flush and fsync any buffered appends."""
        with self._lock:
            if not self._handle.closed:
                self._sync_locked()

    def close(self) -> None:
        """Sync, close the active segment, and release the owner lock."""
        with self._lock:
            if not self._handle.closed:
                self._sync_locked()
                self._handle.close()
            self._release_lockfile()

    def __del__(self) -> None:
        # Best-effort resource release for dropped (never-closed)
        # instances -- without it the raw lockfile fd would pin the
        # directory's flock for the rest of the process.  No fsync:
        # a dropped WAL is crash semantics, not a clean shutdown.
        handle = getattr(self, "_handle", None)
        if handle is not None and not handle.closed:
            try:
                handle.close()
            except OSError:  # pragma: no cover - interpreter teardown
                pass
        if getattr(self, "_lock_fd", None) is not None:
            self._release_lockfile()

    # -- garbage collection ------------------------------------------------

    def gc(self, horizon: int) -> int:
        """Delete segments whose every entry lies below ``horizon``.

        ``horizon`` is a WAL position that recovery will never read
        behind -- the latest durable snapshot's position, *provided*
        the rating rows themselves live in durable cold storage (the
        tiered backend).  The active segment is never deleted.
        Returns the number of segments removed.
        """
        if horizon < 0:
            raise ConfigurationError(f"gc horizon must be >= 0, got {horizon}")
        removed = 0
        with self._lock:
            while len(self._segment_starts) > 1:
                end = self._segment_starts[1]  # oldest segment covers [s0, s1)
                if end > horizon:
                    break
                oldest = self._segment_starts.pop(0)
                _segment_path(self._directory, oldest).unlink(missing_ok=True)
                removed += 1
            if removed:
                _fsync_dir(self._directory)
                if self._on_rotate is not None:
                    self._on_rotate(len(self._segment_starts))
        return removed

    # -- reading ----------------------------------------------------------

    def replay(self, start: int = 0) -> Iterator[Tuple[int, Rating]]:
        """Yield ``(seq, rating)`` for entries on disk with ``seq >= start``."""
        return replay_wal(self._directory, start=start)


def replay_wal(path: PathLike, start: int = 0) -> Iterator[Tuple[int, Rating]]:
    """Stream ``(seq, rating)`` pairs from a WAL (empty if absent).

    ``path`` may be a WAL directory (segments and/or a legacy
    ``wal.jsonl``) or a single log file.  Segments that end at or
    before ``start`` are skipped without being read, so replay cost is
    proportional to the suffix requested, not total history.

    Exactly one torn trailing record -- a crash mid-append -- is
    tolerated: it is logged and dropped.  A corrupt line anywhere else
    raises :class:`~repro.errors.ConfigurationError`, as does a gap
    between consecutive segments.

    Control rows (:meth:`WriteAheadLog.append_control`) occupy
    sequence numbers but carry no rating; they are skipped here.
    """
    if start < 0:
        raise ConfigurationError(f"replay start must be >= 0, got {start}")
    for seq, rating, _ in replay_wal_meta(path, start=start):
        if rating is not None:
            yield seq, rating


def replay_wal_meta(
    path: PathLike, start: int = 0
) -> Iterator[Tuple[int, Optional[Rating], Optional[dict]]]:
    """Like :func:`replay_wal`, but also yields each entry's ``meta``.

    Yields ``(seq, rating, meta)`` where ``meta`` is the dict passed to
    :meth:`WriteAheadLog.append` for that entry, or ``None`` for
    entries written without one.  The cluster tier reads it to recover
    each worker-log entry's coordinator sequence number.

    Control rows (:meth:`WriteAheadLog.append_control`) are yielded as
    ``(seq, None, {"control": payload})`` so replay-driven recovery can
    reproduce non-rating events (e.g. trust-digest flush markers) at
    their original positions.
    """
    if start < 0:
        raise ConfigurationError(f"replay start must be >= 0, got {start}")
    path = Path(path)
    if path.name == WAL_FILENAME:
        # A legacy ``.../wal.jsonl`` path keeps working after the file
        # was adopted as segment 0: read the owning directory instead.
        path = path.parent
    if path.is_file():
        segments: List[Tuple[int, Path]] = [(0, path)]
    else:
        segments = list_segments(path)
    if not segments:
        return
    if start < segments[0][0]:
        raise ConfigurationError(
            f"{path}: WAL replay from {start} requested but the oldest "
            f"segment starts at {segments[0][0]} -- the prefix was "
            f"garbage-collected (recovery must start from a snapshot that "
            f"covers it)"
        )
    last_index = len(segments) - 1
    expected: Optional[int] = None
    for index, (seg_start, seg_path) in enumerate(segments):
        if expected is not None and seg_start != expected:
            raise ConfigurationError(
                f"{seg_path.parent}: WAL gap -- segment {seg_path.name} starts "
                f"at {seg_start} but the previous segment ended at {expected}"
            )
        next_start = segments[index + 1][0] if index < last_index else None
        if next_start is not None and next_start <= start:
            expected = next_start  # fully below the requested suffix
            continue
        is_last = index == last_index
        tolerated = None
        if is_last:
            n_entries, _, tolerated = _scan_segment(seg_path)
            if tolerated is not None:
                logger.warning(
                    "WAL %s: ignoring torn final record (%s) during replay",
                    seg_path.name, tolerated,
                )
        seq = seg_start
        with seg_path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                if is_last and tolerated is not None and seq - seg_start >= n_entries:
                    break  # the torn tail
                if seq >= start:
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise ConfigurationError(
                            f"{seg_path}:{line_number}: corrupt WAL line: {exc}"
                        ) from exc
                    if "control" in row:
                        yield seq, None, {"control": row["control"]}
                    else:
                        yield seq, rating_from_dict(row), row.get("meta")
                seq += 1
        expected = seq


# -- snapshots ------------------------------------------------------------


def _snapshot_path(directory: Path, wal_position: int) -> Path:
    return directory / f"snapshot-{wal_position:012d}.json"


def write_snapshot(directory: PathLike, state: dict) -> Path:
    """Atomically and durably write an engine state snapshot.

    The state dict must carry a ``wal_position`` key (number of WAL
    entries it covers); the snapshot is written to a temp file, fsynced,
    moved into place with ``os.replace``, and the directory is fsynced
    -- so readers never observe a torn snapshot and a power loss right
    after the rename cannot roll the file back.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    try:
        wal_position = int(state["wal_position"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"snapshot state needs a wal_position: {exc}") from exc
    final = _snapshot_path(directory, wal_position)
    tmp = final.with_suffix(".json.tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(state, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    _fsync_dir(directory)
    return final


def read_snapshot(path: PathLike) -> dict:
    """Load a snapshot written by :func:`write_snapshot`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            state = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable snapshot {path}: {exc}") from exc
    if "wal_position" not in state:
        raise ConfigurationError(f"snapshot {path} lacks wal_position")
    return state


def list_snapshots(directory: PathLike) -> List[Path]:
    """Snapshot files in a WAL directory, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        if _SNAPSHOT_RE.match(entry.name):
            found.append(entry)
    return sorted(found)


def latest_snapshot(directory: PathLike) -> Optional[Path]:
    """The highest-position snapshot in a WAL directory, if any."""
    snapshots = list_snapshots(directory)
    return snapshots[-1] if snapshots else None


def prune_snapshots(directory: PathLike, keep: int = 1) -> int:
    """Delete snapshots superseded by the newest ``keep`` of them.

    Every snapshot below the latest is fully covered by it (recovery
    only ever loads the highest position), so the garbage collector
    prunes them together with the WAL segments behind the snapshot.
    Returns the number of files removed.
    """
    if keep < 1:
        raise ConfigurationError(f"prune_snapshots keep must be >= 1, got {keep}")
    directory = Path(directory)
    snapshots = list_snapshots(directory)
    stale = snapshots[:-keep] if len(snapshots) > keep else []
    for path in stale:
        path.unlink(missing_ok=True)
    if stale:
        _fsync_dir(directory)
    return len(stale)
