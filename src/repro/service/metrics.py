"""Dependency-free service metrics with a Prometheus text renderer.

A production rating portal needs to answer "is the service healthy and
how hard is it working?" without growing a metrics dependency.  This
module provides the three Prometheus primitives the service layer uses
-- :class:`Counter`, :class:`Gauge`, :class:`Histogram` -- behind a
:class:`MetricsRegistry` that renders the Prometheus text exposition
format (version 0.0.4), the format scraped from ``GET /metrics``.

All mutations are thread-safe: the registry guards family creation and
each metric guards its own samples, so hot ingest paths never contend
on a global lock.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_LabelKey = Tuple[Tuple[str, str], ...]

DEFAULT_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (integers without a dot)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_suffix(labels: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    items = list(labels) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in items)
    return "{" + body + "}"


class _Metric:
    """Base class: one sample of one metric family (fixed labels)."""

    def __init__(self, labels: _LabelKey) -> None:
        self._labels = labels
        self._lock = threading.Lock()


class Counter(_Metric):
    """Monotonically increasing count (events, ratings, flushes)."""

    _GUARDED_BY = {"_value": "_lock"}

    def __init__(self, labels: _LabelKey) -> None:
        super().__init__(labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    def inc_to(self, value: float) -> None:
        """Raise the counter to ``value`` if it is below it.

        Monotone-set for mirroring an external cumulative counter
        (e.g. aggregated worker-process totals) without double
        counting: re-applying the same total is a no-op, and a stale
        lower total never moves the counter backwards.
        """
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _render(self, name: str) -> List[str]:
        return [f"{name}{_label_suffix(self._labels)} {_format_value(self.value)}"]


class Gauge(_Metric):
    """A value that can go up and down (queue depth, active products)."""

    _GUARDED_BY = {"_value": "_lock"}

    def __init__(self, labels: _LabelKey) -> None:
        super().__init__(labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _render(self, name: str) -> List[str]:
        return [f"{name}{_label_suffix(self._labels)} {_format_value(self.value)}"]


class Histogram(_Metric):
    """Distribution over fixed buckets (latencies, fsync times).

    Buckets are cumulative upper bounds; a ``+Inf`` bucket is always
    appended, so ``observe`` never drops a sample.
    """

    _GUARDED_BY = {"_counts": "_lock", "_count": "_lock", "_sum": "_lock"}

    def __init__(self, labels: _LabelKey, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(labels)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ConfigurationError(f"duplicate histogram buckets: {bounds}")
        self._bounds = bounds
        self._counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[i] += 1

    def time(self) -> "_HistogramTimer":
        """Context manager that observes the elapsed wall time."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _render(self, name: str) -> List[str]:
        with self._lock:
            counts = list(self._counts)
            total, acc = self._count, self._sum
        lines = []
        for bound, cumulative in zip(self._bounds, counts):
            suffix = _label_suffix(self._labels, [("le", _format_value(bound))])
            lines.append(f"{name}_bucket{suffix} {cumulative}")
        inf_suffix = _label_suffix(self._labels, [("le", "+Inf")])
        lines.append(f"{name}_bucket{inf_suffix} {total}")
        lines.append(f"{name}_sum{_label_suffix(self._labels)} {_format_value(acc)}")
        lines.append(f"{name}_count{_label_suffix(self._labels)} {total}")
        return lines


class _HistogramTimer:
    """Times a ``with`` block into a histogram."""

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _Family:
    """One named metric family with per-labelset children."""

    def __init__(self, name: str, metric_type: str, help_text: str) -> None:
        self.name = name
        self.metric_type = metric_type
        self.help_text = help_text
        self.children: Dict[_LabelKey, _Metric] = {}


class MetricsRegistry:
    """Creates, deduplicates, and renders metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for
    the same name and labels twice returns the same object, so call
    sites never need to share references explicitly.  Asking for an
    existing name with a different type raises.
    """

    _GUARDED_BY = {"_families": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- creation ---------------------------------------------------------

    def _family(self, name: str, metric_type: str, help_text: str) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, metric_type, help_text)
                self._families[name] = family
            elif family.metric_type != metric_type:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {family.metric_type}, "
                    f"not {metric_type}"
                )
            return family

    @staticmethod
    def _label_key(labels: Optional[Dict[str, str]]) -> _LabelKey:
        if not labels:
            return ()
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def counter(
        self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        """Get or create a counter sample."""
        family = self._family(name, "counter", help_text)
        key = self._label_key(labels)
        with self._lock:
            if key not in family.children:
                family.children[key] = Counter(key)
            return family.children[key]  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Gauge:
        """Get or create a gauge sample."""
        family = self._family(name, "gauge", help_text)
        key = self._label_key(labels)
        with self._lock:
            if key not in family.children:
                family.children[key] = Gauge(key)
            return family.children[key]  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram sample."""
        family = self._family(name, "histogram", help_text)
        key = self._label_key(labels)
        with self._lock:
            if key not in family.children:
                family.children[key] = Histogram(key, buckets=buckets)
            return family.children[key]  # type: ignore[return-value]

    # -- introspection ----------------------------------------------------

    def names(self) -> List[str]:
        """Sorted family names currently registered."""
        with self._lock:
            return sorted(self._families)

    def render(self) -> str:
        """Render every family in the Prometheus text format."""
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
            snapshots: List[Tuple[_Family, List[_Metric]]] = [
                (family, [family.children[k] for k in sorted(family.children)])
                for family in families
            ]
        lines: List[str] = []
        for family, children in snapshots:
            if family.help_text:
                lines.append(f"# HELP {family.name} {family.help_text}")
            lines.append(f"# TYPE {family.name} {family.metric_type}")
            for child in children:
                lines.extend(child._render(family.name))
        return "\n".join(lines) + "\n"
