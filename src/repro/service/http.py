"""Stdlib HTTP API over the rating engine.

A thin JSON layer (``http.server.ThreadingHTTPServer``, no runtime
dependencies) exposing the portal surface of Fig. 1:

==========================  ===============================================
``POST /ratings``           submit one rating
``GET /products/{id}/score``  trust-weighted score of a product
``GET /raters/{id}/trust``  current trust in a rater
``GET /healthz``            liveness + uptime
``GET /metrics``            Prometheus text exposition
``GET /stats``              the engine's ``snapshot_stats()`` as JSON
``GET /ensemble``           detector ensemble config + counters
``GET /storage``            storage tiers + WAL segments (``storage_stats()``)
==========================  ===============================================

``POST /ratings`` accepts ``{"rater_id": int, "product_id": int,
"value": float}`` plus optional ``time`` (seconds since engine start
when omitted) and ``rating_id`` (auto-assigned when omitted).  Invalid
payloads return 400; rejected ratings (out of time order for their
product) return 409 with the reason; behind a cluster coordinator
(``repro serve --workers N``) accepted ratings return **202** -- the
rating is durably logged and queued, with detection applied
asynchronously by the owning worker.

The ``engine`` may be any object with the :class:`RatingEngine`
serving surface -- in particular
:class:`~repro.service.cluster.coordinator.ClusterCoordinator`.  When
it offers ``render_metrics()`` (the coordinator does, to refresh
per-worker gauges), ``GET /metrics`` uses that instead of the bare
registry render.

``serve`` installs SIGTERM/SIGINT handlers so ``kill <pid>`` and
Ctrl-C both take the drain-then-exit path: the HTTP socket closes
first (no new acks), then the engine flushes, snapshots, and closes --
an acked rating is never dropped by a graceful stop.
"""

from __future__ import annotations

import json
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.errors import ReproError, UnknownProductError
from repro.ratings.models import Rating, fresh_rating_id
from repro.service.engine import RatingEngine

__all__ = ["RatingServiceServer", "make_server", "serve"]

# Durability contract (checked by lint rule DP02): a 2xx response to
# POST /ratings may only be sent after the rating reached the WAL.
__effect_contracts__ = {
    "orderings": {"_Handler.do_POST": [["wal_append", "ack"]]},
}

_SCORE_RE = re.compile(r"^/products/(-?\d+)/score$")
_TRUST_RE = re.compile(r"^/raters/(-?\d+)/trust$")

MAX_BODY_BYTES = 1 << 20


class RatingServiceServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`RatingEngine`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], engine: RatingEngine, quiet: bool = True):
        super().__init__(address, _Handler)
        self.engine = engine
        self.quiet = quiet
        self.started = time.monotonic()


class _Handler(BaseHTTPRequestHandler):
    """Routes portal requests onto the engine."""

    server: RatingServiceServer  # narrowed for type checkers

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- GET --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        engine = self.server.engine
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "uptime_seconds": time.monotonic() - self.server.started,
                    "n_accepted": engine.n_accepted,
                },
            )
            return
        if self.path == "/metrics":
            render = getattr(engine, "render_metrics", None)
            text = render() if render is not None else engine.metrics.render()
            self._send_text(
                200, text, "text/plain; version=0.0.4; charset=utf-8"
            )
            return
        if self.path == "/stats":
            self._send_json(200, engine.snapshot_stats())
            return
        if self.path == "/ensemble":
            self._send_json(200, engine.ensemble_stats())
            return
        if self.path == "/storage":
            self._send_json(200, engine.storage_stats())
            return
        match = _SCORE_RE.match(self.path)
        if match:
            product_id = int(match.group(1))
            try:
                score = engine.score(product_id)
            except UnknownProductError:
                self._send_json(404, {"error": f"unknown product {product_id}"})
                return
            self._send_json(200, {"product_id": product_id, "score": score})
            return
        match = _TRUST_RE.match(self.path)
        if match:
            rater_id = int(match.group(1))
            self._send_json(
                200, {"rater_id": rater_id, "trust": engine.trust(rater_id)}
            )
            return
        self._send_json(404, {"error": f"no route for {self.path}"})

    # -- POST -------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/ratings":
            self._send_json(404, {"error": f"no route for {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"})
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "body required (max 1 MiB)"})
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._send_json(400, {"error": f"invalid JSON: {exc}"})
            return
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return
        rating, error = self._parse_rating(payload)
        if rating is None:
            self._send_json(400, {"error": error})
            return
        try:
            result = self.server.engine.submit(rating)
        except ReproError as exc:
            self._send_json(400, {"accepted": False, "error": str(exc)})
            return
        if not result.accepted:
            self._send_json(409, {"accepted": False, "error": result.reason})
            return
        # 202 for cluster ingest: durably logged + queued, detection is
        # asynchronous.  201 for the in-process engine: fully applied.
        self._send_json(
            202 if result.queued else 201,
            {
                "accepted": True,
                "seq": result.seq,
                "rating_id": rating.rating_id,
                "flagged": result.flagged,
                "queued": result.queued,
            },
        )

    def _parse_rating(self, payload: dict) -> Tuple[Optional[Rating], Optional[str]]:
        try:
            rater_id = int(payload["rater_id"])
            product_id = int(payload["product_id"])
            value = float(payload["value"])
        except (KeyError, TypeError, ValueError) as exc:
            return None, f"need integer rater_id/product_id and float value: {exc}"
        when = payload.get("time")
        if when is None:
            when = time.monotonic() - self.server.started
        rating_id = payload.get("rating_id")
        if rating_id is None:
            rating_id = fresh_rating_id()
        try:
            rating = Rating(
                rating_id=int(rating_id),
                rater_id=rater_id,
                product_id=product_id,
                value=value,
                time=float(when),
            )
        except (ReproError, TypeError, ValueError) as exc:
            return None, str(exc)
        return rating, None


def make_server(
    engine: RatingEngine, host: str = "127.0.0.1", port: int = 8080, quiet: bool = True
) -> RatingServiceServer:
    """Build a server (``port=0`` binds an ephemeral port for tests)."""
    return RatingServiceServer((host, port), engine, quiet=quiet)


def serve(
    engine: RatingEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = False,
) -> None:
    """Serve until SIGTERM/SIGINT; drains and closes the engine on exit.

    The stop path is ordered for durability: stop accepting requests
    (no new acks can race the drain), then ``engine.close()`` -- which
    flushes pending work, takes a final snapshot, and for a cluster
    coordinator drains every worker queue and shuts the workers down.
    Every acked rating is therefore applied-or-WAL-durable before the
    process exits.
    """
    server = make_server(engine, host=host, port=port, quiet=quiet)

    def request_stop(signum, frame):  # noqa: ARG001 - signal signature
        # shutdown() waits for serve_forever to exit, and signal
        # handlers run on the thread that runs serve_forever -- hand
        # the call to a helper thread to avoid the self-deadlock.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, request_stop)
    except ValueError:
        pass  # not the main thread (tests); Ctrl-C still works below
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        try:
            # Final snapshot while the engine is still open (close()
            # releases the WAL); the coordinator also snapshots inside
            # close(), but doing it here surfaces failures loudly
            # instead of swallowing them in best-effort shutdown.
            if getattr(engine, "wal", None) is not None:
                engine.snapshot()
        finally:
            engine.close()


def start_background(
    engine: RatingEngine, host: str = "127.0.0.1", port: int = 0
) -> Tuple[RatingServiceServer, threading.Thread]:
    """Start a server on a daemon thread (used by tests and notebooks)."""
    server = make_server(engine, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
