"""Production serving subsystem: the long-running rating platform.

Everything before this package was batch -- re-processing intervals
offline.  ``repro.service`` is the live half of the paper's Fig. 1
portal: a sharded, thread-safe :class:`RatingEngine` streaming ratings
through a pluggable online detector ensemble
(:mod:`repro.service.ensemble`: the paper's AR signal model, an
incremental co-rating collusion graph, online iterative filtering)
and batched Procedure 2 trust updates, segmented write-ahead-log
durability with atomic snapshots and segment garbage collection
(:mod:`repro.service.wal`), tiered rating storage (sqlite cold tier +
numpy hot windows, :mod:`repro.ratings.tiered`), dependency-free
Prometheus metrics (:mod:`repro.service.metrics`), and a stdlib JSON
HTTP API (:mod:`repro.service.http`).

When one process is not enough, :mod:`repro.service.cluster` runs the
same engine as a multi-process sharded tier -- a coordinator process
acking ratings from its own WAL and routing them to single-shard
worker processes over a consistent-hash ring (true multi-core scaling,
no GIL contention between shards).

Run it from the command line::

    repro serve --port 8080 --shards 4 --wal-dir ./wal
    repro serve --port 8080 --workers 4 --wal-dir ./wal   # multi-process
    repro replay trace.csv --shards 4

or embed it::

    from repro.service import RatingEngine, ServiceConfig
    engine = RatingEngine(ServiceConfig(n_shards=4, wal_dir="./wal"))
    engine.submit(rating)
    engine.score(rating.product_id)
"""

from repro.service.config import ServiceConfig
from repro.service.engine import RatingEngine, SubmitResult
from repro.service.ensemble import OnlineSuspicionSource
from repro.service.http import RatingServiceServer, make_server, serve
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.wal import (
    WriteAheadLog,
    latest_snapshot,
    list_segments,
    prune_snapshots,
    read_snapshot,
    replay_wal,
    wal_exists,
    write_snapshot,
)

__all__ = [
    "ServiceConfig",
    "RatingEngine",
    "SubmitResult",
    "OnlineSuspicionSource",
    "RatingServiceServer",
    "make_server",
    "serve",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WriteAheadLog",
    "latest_snapshot",
    "list_segments",
    "prune_snapshots",
    "read_snapshot",
    "replay_wal",
    "wal_exists",
    "write_snapshot",
]
