"""Pluggable rating-storage backends.

:class:`~repro.ratings.store.RatingStore` is the library's MySQL
substitute; this module extracts the part of it that actually holds
rating rows into a :class:`RatingStoreBackend` interface so the
serving tier can swap the all-in-RAM default for the tiered
sqlite/numpy implementation (:mod:`repro.ratings.tiered`) without any
caller noticing.

The split is deliberate: product and rater *registries* stay in
:class:`~repro.ratings.store.RatingStore` (one small record per id),
while the backend owns the unbounded part -- the rating rows
themselves -- plus everything whose cost scales with history length
(per-product streams, per-rater streams, membership tests).

Backends index rows by an optional *sequence number*.  The serving
engine passes each accepted rating's write-ahead-log position, which
lets a durable backend line its contents up against a WAL suffix at
recovery time; standalone users may omit it and the backend assigns a
monotone counter itself.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from repro.ratings.models import Rating

__all__ = ["RatingStoreBackend", "InMemoryBackend"]

# Domain contracts checked by `repro lint` (rule family DI): sequence
# numbers are non-negative log positions.
__lint_contracts__ = {
    "RatingStoreBackend.add": {"params": {"seq": "[0, inf)"}},
}


class RatingStoreBackend(abc.ABC):
    """Storage engine behind a :class:`~repro.ratings.store.RatingStore`.

    Implementations must preserve **insertion order per product and
    per rater** (the order :meth:`add` was called in), because the
    deterministic replay guarantees of the serving tier are defined
    over arrival order.  All methods are called with the owning
    store's external synchronization (the engine's shard lock);
    implementations that share OS resources across threads must add
    their own internal locking on top.
    """

    #: short label used in stats payloads and metrics ("memory", "tiered").
    name: str = "abstract"

    @abc.abstractmethod
    def add(self, rating: Rating, seq: Optional[int] = None) -> None:
        """Store one rating.

        Args:
            rating: the validated rating row.
            seq: its global log position (non-negative, strictly
                increasing across calls when provided); ``None`` lets
                the backend assign its own monotone counter.
        """

    @property
    @abc.abstractmethod
    def n_ratings(self) -> int:
        """Total ratings stored."""

    @abc.abstractmethod
    def product_ratings(self, product_id: int) -> Sequence[Rating]:
        """One product's ratings in insertion order (empty if none)."""

    @abc.abstractmethod
    def rater_ratings(self, rater_id: int) -> Sequence[Rating]:
        """One rater's ratings in insertion order (empty if none)."""

    @abc.abstractmethod
    def all_ratings(self) -> Sequence[Rating]:
        """Every stored rating in insertion order."""

    @abc.abstractmethod
    def has_rated(self, rater_id: int, product_id: int) -> bool:
        """True when a rating by ``rater_id`` on ``product_id`` exists."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every rating (products/raters are the store's concern)."""

    def commit(self) -> None:
        """Flush any buffered rows to durable storage (no-op default)."""

    def close(self) -> None:
        """Release backing resources (no-op default)."""

    def stats(self) -> dict:
        """Storage telemetry: tier sizes, buffering, backing path."""
        return {
            "backend": self.name,
            "hot_ratings": self.n_ratings,
            "cold_ratings": 0,
            "pending_ratings": 0,
        }


class InMemoryBackend(RatingStoreBackend):
    """The historical all-in-RAM backend: plain per-key lists.

    Every rating lives in two Python lists (by product and by rater),
    so reads are O(1) list handoffs but resident memory grows linearly
    with history.  This remains the default -- simulations and tests
    want the speed and never grow histories that matter.
    """

    name = "memory"

    def __init__(self) -> None:
        self._by_product: Dict[int, List[Rating]] = defaultdict(list)
        self._by_rater: Dict[int, List[Rating]] = defaultdict(list)
        self._n_ratings = 0

    def add(self, rating: Rating, seq: Optional[int] = None) -> None:
        """Append to both indexes; ``seq`` is accepted and ignored."""
        self._by_product[rating.product_id].append(rating)
        self._by_rater[rating.rater_id].append(rating)
        self._n_ratings += 1

    @property
    def n_ratings(self) -> int:
        return self._n_ratings

    def product_ratings(self, product_id: int) -> Sequence[Rating]:
        return self._by_product.get(product_id, [])

    def rater_ratings(self, rater_id: int) -> Sequence[Rating]:
        return self._by_rater.get(rater_id, [])

    def all_ratings(self) -> Sequence[Rating]:
        everything: List[Rating] = []
        for ratings in self._by_product.values():
            everything.extend(ratings)
        return everything

    def has_rated(self, rater_id: int, product_id: int) -> bool:
        return any(
            r.product_id == product_id for r in self._by_rater.get(rater_id, ())
        )

    def clear(self) -> None:
        self._by_product.clear()
        self._by_rater.clear()
        self._n_ratings = 0
