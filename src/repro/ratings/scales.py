"""Discrete rating scales.

Real systems collect ratings on a small ordinal scale (Amazon: 5 stars;
the paper's illustrative experiment: 11 levels 0, 0.1, ..., 1; the
marketplace: 10 levels 0.1, ..., 1).  A :class:`RatingScale` maps a raw
real-valued opinion in [0, 1] to the nearest permitted level, and the
quantization it introduces is part of what makes short rating windows
statistically hard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RatingScale", "ELEVEN_LEVEL", "TEN_LEVEL", "FIVE_STAR"]


@dataclass(frozen=True)
class RatingScale:
    """An ordinal rating scale with equally spaced levels in [0, 1].

    Attributes:
        levels: number of permitted values.
        minimum: smallest permitted value (0.0 for the 11-level scale,
            0.1 for the paper's 10-level marketplace scale).
        maximum: largest permitted value.
    """

    levels: int
    minimum: float = 0.0
    maximum: float = 1.0

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ConfigurationError(f"a scale needs >= 2 levels, got {self.levels}")
        if not 0.0 <= self.minimum < self.maximum <= 1.0:
            raise ConfigurationError(
                f"scale range must satisfy 0 <= min < max <= 1, got "
                f"[{self.minimum}, {self.maximum}]"
            )

    @property
    def step(self) -> float:
        return (self.maximum - self.minimum) / (self.levels - 1)

    @property
    def values(self) -> np.ndarray:
        """All permitted rating values, ascending."""
        return self.minimum + self.step * np.arange(self.levels)

    def quantize(self, raw: float) -> float:
        """Snap a raw opinion to the nearest permitted level.

        Values outside [min, max] are clipped first, so a Gaussian
        opinion with a wide variance still yields a legal rating.
        """
        clipped = min(self.maximum, max(self.minimum, float(raw)))
        k = round((clipped - self.minimum) / self.step)
        return float(self.minimum + k * self.step)

    def quantize_array(self, raw: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`quantize`."""
        clipped = np.clip(np.asarray(raw, dtype=float), self.minimum, self.maximum)
        ks = np.round((clipped - self.minimum) / self.step)
        return self.minimum + ks * self.step

    def from_stars(self, stars: int, n_stars: int | None = None) -> float:
        """Map an integer star rating (1..n) onto this scale.

        Used by the Netflix-like trace, whose native unit is 1-5 stars.
        """
        n = self.levels if n_stars is None else n_stars
        if not 1 <= stars <= n:
            raise ConfigurationError(f"stars must lie in [1, {n}], got {stars}")
        if n == 1:
            return self.maximum
        frac = (stars - 1) / (n - 1)
        return self.quantize(self.minimum + frac * (self.maximum - self.minimum))


#: The illustrative experiment's scale: 0, 0.1, ..., 1.0.
ELEVEN_LEVEL = RatingScale(levels=11, minimum=0.0, maximum=1.0)

#: The marketplace scale: 0.1, 0.2, ..., 1.0.
TEN_LEVEL = RatingScale(levels=10, minimum=0.1, maximum=1.0)

#: Netflix-style 5-star scale mapped to 0.2, 0.4, ..., 1.0 -- star k
#: maps to k/5 so the aggregate stays comparable to star averages.
FIVE_STAR = RatingScale(levels=5, minimum=0.2, maximum=1.0)
