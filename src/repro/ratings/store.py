"""Rating database facade over pluggable storage backends.

The authors back their simulator with MySQL; :class:`RatingStore` is
the pure-Python substitute.  It keeps the bounded registries (product
records, rater profiles) itself and delegates the unbounded part --
the rating rows -- to a :class:`~repro.ratings.backend.RatingStoreBackend`:

* :class:`~repro.ratings.backend.InMemoryBackend` (the default)
  keeps everything in Python lists, exactly the historical behavior;
* :class:`~repro.ratings.tiered.TieredRatingBackend` holds full
  history in sqlite with per-product numpy hot windows, so resident
  memory stays flat while histories grow.

Either way the store indexes ratings by product and by rater and
hands out :class:`~repro.ratings.stream.RatingStream` views for
analysis.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional

from repro.errors import UnknownProductError, UnknownRaterError
from repro.ratings.backend import InMemoryBackend, RatingStoreBackend
from repro.ratings.models import Product, RaterProfile, Rating
from repro.ratings.stream import RatingStream

__all__ = ["RatingStore"]


class RatingStore:
    """Mutable container for products, raters, and their ratings.

    Args:
        backend: rating-row storage engine; ``None`` builds a fresh
            :class:`~repro.ratings.backend.InMemoryBackend`.
    """

    def __init__(self, backend: Optional[RatingStoreBackend] = None) -> None:
        self._products: Dict[int, Product] = {}
        self._raters: Dict[int, RaterProfile] = {}
        self._backend: RatingStoreBackend = (
            backend if backend is not None else InMemoryBackend()
        )

    @property
    def backend(self) -> RatingStoreBackend:
        """The storage engine holding this store's rating rows."""
        return self._backend

    # -- registration -----------------------------------------------------

    def add_product(self, product: Product) -> None:
        """Register a product; re-registering the same id overwrites."""
        self._products[product.product_id] = product

    def add_rater(self, profile: RaterProfile) -> None:
        """Register a rater profile; re-registering overwrites."""
        self._raters[profile.rater_id] = profile

    def add_rating(self, rating: Rating, seq: Optional[int] = None) -> None:
        """Record a rating.  Product and rater must be registered.

        ``seq`` is the rating's global log position when the caller
        tracks one (the serving engine passes its WAL sequence number
        so a durable backend can align with the log); standalone users
        omit it.
        """
        if rating.product_id not in self._products:
            raise UnknownProductError(
                f"product {rating.product_id} is not registered"
            )
        if rating.rater_id not in self._raters:
            raise UnknownRaterError(f"rater {rating.rater_id} is not registered")
        self._backend.add(rating, seq=seq)

    def add_ratings(self, ratings: Iterable[Rating]) -> None:
        for rating in ratings:
            self.add_rating(rating)

    # -- container protocol / recycling -----------------------------------

    def __len__(self) -> int:
        """Total number of ratings recorded."""
        return self._backend.n_ratings

    def __contains__(self, product_id: object) -> bool:
        """``product_id in store`` -- membership over *product* ids.

        Products are the store's primary routing key (streams, shard
        hashing); use :meth:`has_rater` for rater membership.
        """
        return product_id in self._products

    def has_product(self, product_id: int) -> bool:
        """True when the product id is registered."""
        return product_id in self._products

    def has_rater(self, rater_id: int) -> bool:
        """True when the rater id is registered."""
        return rater_id in self._raters

    def clear(self) -> None:
        """Drop every rating but keep registered products and raters.

        Long-running services recycle a store between epochs without
        re-registering the catalog; the product/rater indexes survive,
        only the rating rows are emptied.
        """
        self._backend.clear()

    def commit(self) -> None:
        """Flush the backend's buffered rows to durable storage.

        A no-op for the in-memory backend; the serving engine calls
        this inside its snapshot gate so the cold tier is durable
        before WAL segments behind the snapshot are garbage-collected.
        """
        self._backend.commit()

    def close(self) -> None:
        """Commit and release backend resources (no-op for memory)."""
        self._backend.close()

    # -- lookups ----------------------------------------------------------

    @property
    def n_ratings(self) -> int:
        return self._backend.n_ratings

    @property
    def product_ids(self) -> List[int]:
        return sorted(self._products)

    @property
    def rater_ids(self) -> List[int]:
        return sorted(self._raters)

    def product(self, product_id: int) -> Product:
        try:
            return self._products[product_id]
        except KeyError:
            raise UnknownProductError(f"product {product_id} is not registered") from None

    def rater(self, rater_id: int) -> RaterProfile:
        try:
            return self._raters[rater_id]
        except KeyError:
            raise UnknownRaterError(f"rater {rater_id} is not registered") from None

    def has_rated(self, rater_id: int, product_id: int) -> bool:
        """True when the rater already rated the product (one-per-product rule)."""
        return self._backend.has_rated(rater_id, product_id)

    def stream(self, product_id: int) -> RatingStream:
        """Time-sorted stream of one product's ratings."""
        if product_id not in self._products:
            raise UnknownProductError(f"product {product_id} is not registered")
        return RatingStream.from_ratings(self._backend.product_ratings(product_id))

    def rater_stream(self, rater_id: int) -> RatingStream:
        """Time-sorted stream of one rater's ratings across products."""
        if rater_id not in self._raters:
            raise UnknownRaterError(f"rater {rater_id} is not registered")
        return RatingStream.from_ratings(self._backend.rater_ratings(rater_id))

    def all_ratings(self) -> RatingStream:
        """Every rating in the store, time-sorted."""
        return RatingStream.from_ratings(self._backend.all_ratings())

    def raters_by_class(self) -> Dict[object, List[int]]:
        """Map rater class -> sorted rater ids (evaluation convenience)."""
        grouped: Dict[object, List[int]] = defaultdict(list)
        for rater_id in sorted(self._raters):
            grouped[self._raters[rater_id].rater_class].append(rater_id)
        return dict(grouped)
