"""In-memory rating database.

The authors back their simulator with MySQL; :class:`RatingStore` is the
pure-Python substitute.  It indexes ratings by product and by rater,
keeps rater profiles and product records, and hands out
:class:`~repro.ratings.stream.RatingStream` views for analysis.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List

from repro.errors import UnknownProductError, UnknownRaterError
from repro.ratings.models import Product, RaterProfile, Rating
from repro.ratings.stream import RatingStream

__all__ = ["RatingStore"]


class RatingStore:
    """Mutable container for products, raters, and their ratings."""

    def __init__(self) -> None:
        self._products: Dict[int, Product] = {}
        self._raters: Dict[int, RaterProfile] = {}
        self._by_product: Dict[int, List[Rating]] = defaultdict(list)
        self._by_rater: Dict[int, List[Rating]] = defaultdict(list)
        self._n_ratings = 0

    # -- registration -----------------------------------------------------

    def add_product(self, product: Product) -> None:
        """Register a product; re-registering the same id overwrites."""
        self._products[product.product_id] = product

    def add_rater(self, profile: RaterProfile) -> None:
        """Register a rater profile; re-registering overwrites."""
        self._raters[profile.rater_id] = profile

    def add_rating(self, rating: Rating) -> None:
        """Record a rating.  Product and rater must be registered."""
        if rating.product_id not in self._products:
            raise UnknownProductError(
                f"product {rating.product_id} is not registered"
            )
        if rating.rater_id not in self._raters:
            raise UnknownRaterError(f"rater {rating.rater_id} is not registered")
        self._by_product[rating.product_id].append(rating)
        self._by_rater[rating.rater_id].append(rating)
        self._n_ratings += 1

    def add_ratings(self, ratings: Iterable[Rating]) -> None:
        for rating in ratings:
            self.add_rating(rating)

    # -- container protocol / recycling -----------------------------------

    def __len__(self) -> int:
        """Total number of ratings recorded."""
        return self._n_ratings

    def __contains__(self, product_id: object) -> bool:
        """``product_id in store`` -- membership over *product* ids.

        Products are the store's primary routing key (streams, shard
        hashing); use :meth:`has_rater` for rater membership.
        """
        return product_id in self._products

    def has_product(self, product_id: int) -> bool:
        """True when the product id is registered."""
        return product_id in self._products

    def has_rater(self, rater_id: int) -> bool:
        """True when the rater id is registered."""
        return rater_id in self._raters

    def clear(self) -> None:
        """Drop every rating but keep registered products and raters.

        Long-running services recycle a store between epochs without
        re-registering the catalog; the product/rater indexes survive,
        only the rating lists are emptied.
        """
        self._by_product.clear()
        self._by_rater.clear()
        self._n_ratings = 0

    # -- lookups ----------------------------------------------------------

    @property
    def n_ratings(self) -> int:
        return self._n_ratings

    @property
    def product_ids(self) -> List[int]:
        return sorted(self._products)

    @property
    def rater_ids(self) -> List[int]:
        return sorted(self._raters)

    def product(self, product_id: int) -> Product:
        try:
            return self._products[product_id]
        except KeyError:
            raise UnknownProductError(f"product {product_id} is not registered") from None

    def rater(self, rater_id: int) -> RaterProfile:
        try:
            return self._raters[rater_id]
        except KeyError:
            raise UnknownRaterError(f"rater {rater_id} is not registered") from None

    def has_rated(self, rater_id: int, product_id: int) -> bool:
        """True when the rater already rated the product (one-per-product rule)."""
        return any(r.product_id == product_id for r in self._by_rater.get(rater_id, ()))

    def stream(self, product_id: int) -> RatingStream:
        """Time-sorted stream of one product's ratings."""
        if product_id not in self._products:
            raise UnknownProductError(f"product {product_id} is not registered")
        return RatingStream.from_ratings(self._by_product.get(product_id, ()))

    def rater_stream(self, rater_id: int) -> RatingStream:
        """Time-sorted stream of one rater's ratings across products."""
        if rater_id not in self._raters:
            raise UnknownRaterError(f"rater {rater_id} is not registered")
        return RatingStream.from_ratings(self._by_rater.get(rater_id, ()))

    def all_ratings(self) -> RatingStream:
        """Every rating in the store, time-sorted."""
        everything: List[Rating] = []
        for ratings in self._by_product.values():
            everything.extend(ratings)
        return RatingStream.from_ratings(everything)

    def raters_by_class(self) -> Dict[object, List[int]]:
        """Map rater class -> sorted rater ids (evaluation convenience)."""
        grouped: Dict[object, List[int]] = defaultdict(list)
        for rater_id in sorted(self._raters):
            grouped[self._raters[rater_id].rater_class].append(rater_id)
        return dict(grouped)
