"""Time-ordered rating sequences.

A :class:`RatingStream` is an immutable, time-sorted view over a set of
:class:`~repro.ratings.models.Rating` records for (usually) one product.
It exposes parallel numpy arrays -- times, values, rater ids, unfair
flags -- which is the representation every downstream consumer
(windowers, filters, the AR detector, aggregation) works on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.ratings.models import Rating

__all__ = ["RatingStream"]


@dataclass(frozen=True)
class RatingStream:
    """An immutable time-sorted sequence of ratings.

    Construct with :meth:`from_ratings`; direct construction assumes the
    tuple is already time-sorted.
    """

    ratings: tuple = field(default_factory=tuple)

    @classmethod
    def from_ratings(cls, ratings: Iterable[Rating]) -> "RatingStream":
        """Build a stream, sorting by (time, rating_id) for determinism."""
        ordered = tuple(sorted(ratings, key=lambda r: (r.time, r.rating_id)))
        return cls(ratings=ordered)

    def __len__(self) -> int:
        return len(self.ratings)

    def __iter__(self) -> Iterator[Rating]:
        return iter(self.ratings)

    def __getitem__(self, index: int) -> Rating:
        return self.ratings[index]

    @property
    def times(self) -> np.ndarray:
        return np.array([r.time for r in self.ratings], dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.array([r.value for r in self.ratings], dtype=float)

    @property
    def rater_ids(self) -> np.ndarray:
        return np.array([r.rater_id for r in self.ratings], dtype=int)

    @property
    def unfair_flags(self) -> np.ndarray:
        """Ground-truth unfairness labels, parallel to :attr:`values`."""
        return np.array([r.unfair for r in self.ratings], dtype=bool)

    @property
    def product_ids(self) -> np.ndarray:
        return np.array([r.product_id for r in self.ratings], dtype=int)

    def between(self, start: float, end: float) -> "RatingStream":
        """Sub-stream with ``start <= time < end``."""
        return RatingStream(
            ratings=tuple(r for r in self.ratings if start <= r.time < end)
        )

    def by_rater(self, rater_id: int) -> "RatingStream":
        """Sub-stream of one rater's ratings."""
        return RatingStream(
            ratings=tuple(r for r in self.ratings if r.rater_id == rater_id)
        )

    def without(self, rating_ids: Sequence[int]) -> "RatingStream":
        """Sub-stream excluding the given rating ids (filter output)."""
        excluded = set(rating_ids)
        return RatingStream(
            ratings=tuple(r for r in self.ratings if r.rating_id not in excluded)
        )

    def select(self, indices: Sequence[int]) -> "RatingStream":
        """Sub-stream at the given positional indices (kept time-sorted)."""
        positions = sorted(int(i) for i in indices)
        return RatingStream(ratings=tuple(self.ratings[i] for i in positions))

    def merge(self, other: "RatingStream") -> "RatingStream":
        """Time-sorted union of two streams."""
        return RatingStream.from_ratings(self.ratings + other.ratings)

    def fair_only(self) -> "RatingStream":
        """Sub-stream of ground-truth fair ratings (evaluation helper)."""
        return RatingStream(ratings=tuple(r for r in self.ratings if not r.unfair))

    def unfair_only(self) -> "RatingStream":
        """Sub-stream of ground-truth unfair ratings (evaluation helper)."""
        return RatingStream(ratings=tuple(r for r in self.ratings if r.unfair))

    def mean(self) -> float:
        """Plain average of the rating values (0.0 for an empty stream)."""
        if not self.ratings:
            return 0.0
        return float(np.mean(self.values))
