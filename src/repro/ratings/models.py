"""Core record types: ratings, raters, and products.

These are deliberately small frozen dataclasses -- the whole library
passes them around, stores them in :class:`~repro.ratings.store.RatingStore`,
and tags them with ground-truth labels (who was honest, which window was
attacked) so the evaluation layer can score detectors without peeking
into the algorithms themselves.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["RaterClass", "Rating", "RaterProfile", "Product", "fresh_rating_id"]

_rating_counter = itertools.count()


def fresh_rating_id() -> int:
    """Return a process-unique rating id."""
    return next(_rating_counter)


class RaterClass(enum.Enum):
    """Ground-truth behavioural class of a rater (Section II-B / IV-A)."""

    RELIABLE = "reliable"
    CARELESS = "careless"
    INDIVIDUAL_UNFAIR = "individual_unfair"
    TYPE1_COLLABORATIVE = "type1_collaborative"
    TYPE2_COLLABORATIVE = "type2_collaborative"
    POTENTIAL_COLLABORATIVE = "potential_collaborative"

    @property
    def is_honest(self) -> bool:
        """True for classes whose ratings are never intentionally biased.

        Potential-collaborative raters are counted as dishonest here:
        they are the population the marketplace detector is graded on.
        """
        return self in (RaterClass.RELIABLE, RaterClass.CARELESS)


@dataclass(frozen=True)
class Rating:
    """One rating event.

    Attributes:
        rating_id: process-unique id.
        rater_id: id of the rater who produced it.
        product_id: id of the rated object.
        value: rating value in ``[0, 1]`` (already quantized if the
            scenario uses a discrete scale).
        time: timestamp in days since the scenario origin.
        unfair: ground-truth label -- True when the rating was produced
            under collaborative influence (type 1 shift applied, or the
            rater was a recruited type 2 / recruited PC rater).
    """

    rating_id: int
    rater_id: int
    product_id: int
    value: float
    time: float
    unfair: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0:
            raise ConfigurationError(
                f"rating value must lie in [0, 1], got {self.value}"
            )
        if self.time < 0.0:
            raise ConfigurationError(f"rating time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class RaterProfile:
    """Static description of a rater in a scenario.

    Attributes:
        rater_id: unique id.
        rater_class: ground-truth behavioural class.
        variance: variance of this rater's honest rating noise.
    """

    rater_id: int
    rater_class: RaterClass
    variance: float = 0.0

    @property
    def is_honest(self) -> bool:
        return self.rater_class.is_honest


@dataclass(frozen=True)
class Product:
    """An object being rated.

    Attributes:
        product_id: unique id.
        quality: the (possibly time-varying) true quality; evaluated via
            :meth:`quality_at`.  Either a float or a callable
            ``time -> quality``.
        dishonest: True when the product's owner runs rating campaigns.
        available_from: first day raters may rate the product.
        available_until: last day (exclusive) raters may rate it; None
            means forever.
    """

    product_id: int
    quality: object
    dishonest: bool = False
    available_from: float = 0.0
    available_until: float | None = None

    def quality_at(self, time: float) -> float:
        """True quality at the given time (clipped to ``[0, 1]``)."""
        q = self.quality(time) if callable(self.quality) else float(self.quality)
        return min(1.0, max(0.0, q))

    def is_available(self, time: float) -> bool:
        if time < self.available_from:
            return False
        return self.available_until is None or time < self.available_until


@dataclass
class RatingBatch:
    """A mutable accumulation of ratings, convertible to arrays."""

    ratings: list = field(default_factory=list)

    def add(self, rating: Rating) -> None:
        self.ratings.append(rating)

    def extend(self, ratings) -> None:
        self.ratings.extend(ratings)

    def __len__(self) -> int:
        return len(self.ratings)
