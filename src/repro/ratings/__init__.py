"""Rating-system substrate: records, scales, streams, store, arrivals."""

from repro.ratings.arrivals import nonhomogeneous_arrival_times, poisson_arrival_times
from repro.ratings.backend import InMemoryBackend, RatingStoreBackend
from repro.ratings.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.ratings.models import Product, RaterClass, RaterProfile, Rating, fresh_rating_id
from repro.ratings.quality import ConstantQuality, LinearRampQuality, PiecewiseQuality
from repro.ratings.scales import ELEVEN_LEVEL, FIVE_STAR, TEN_LEVEL, RatingScale
from repro.ratings.store import RatingStore
from repro.ratings.stream import RatingStream
from repro.ratings.tiered import TieredRatingBackend

__all__ = [
    "InMemoryBackend",
    "RatingStoreBackend",
    "TieredRatingBackend",
    "nonhomogeneous_arrival_times",
    "poisson_arrival_times",
    "read_csv",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
    "Product",
    "RaterClass",
    "RaterProfile",
    "Rating",
    "fresh_rating_id",
    "ConstantQuality",
    "LinearRampQuality",
    "PiecewiseQuality",
    "ELEVEN_LEVEL",
    "FIVE_STAR",
    "TEN_LEVEL",
    "RatingScale",
    "RatingStore",
    "RatingStream",
]
