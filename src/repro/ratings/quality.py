"""Quality profiles: how an object's true quality evolves over time.

The illustrative experiment (Section III-A.2) uses a linear ramp from
0.7 to 0.8 over 60 days; the marketplace simulation uses constant
qualities drawn uniformly from [0.4, 0.6].  Profiles are callables
``time -> quality`` so :class:`~repro.ratings.models.Product` can hold
either a plain float or one of these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["ConstantQuality", "LinearRampQuality", "PiecewiseQuality"]


@dataclass(frozen=True)
class ConstantQuality:
    """Quality fixed at ``value`` for all time."""

    value: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0:
            raise ConfigurationError(f"quality must lie in [0, 1], got {self.value}")

    def __call__(self, time: float) -> float:
        return self.value


@dataclass(frozen=True)
class LinearRampQuality:
    """Quality interpolating linearly between two endpoints.

    Before ``start_time`` the quality is ``start_value``; after
    ``end_time`` it stays at ``end_value``.
    """

    start_value: float
    end_value: float
    start_time: float
    end_time: float

    def __post_init__(self) -> None:
        if self.end_time <= self.start_time:
            raise ConfigurationError(
                f"ramp needs end_time > start_time, got "
                f"[{self.start_time}, {self.end_time}]"
            )
        for v in (self.start_value, self.end_value):
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(f"quality must lie in [0, 1], got {v}")

    def __call__(self, time: float) -> float:
        if time <= self.start_time:
            return self.start_value
        if time >= self.end_time:
            return self.end_value
        frac = (time - self.start_time) / (self.end_time - self.start_time)
        return self.start_value + frac * (self.end_value - self.start_value)


@dataclass(frozen=True)
class PiecewiseQuality:
    """Step-function quality over breakpoints.

    Args:
        breakpoints: ascending times ``t1 < t2 < ...`` at which the
            quality switches.
        values: ``len(breakpoints) + 1`` quality levels; ``values[i]``
            holds on ``[t_i, t_{i+1})`` with ``t_0 = -inf``.
    """

    breakpoints: Sequence[float]
    values: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.breakpoints) + 1:
            raise ConfigurationError(
                f"need len(values) == len(breakpoints) + 1, got "
                f"{len(self.values)} values for {len(self.breakpoints)} breakpoints"
            )
        if list(self.breakpoints) != sorted(self.breakpoints):
            raise ConfigurationError("breakpoints must be ascending")
        for v in self.values:
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(f"quality must lie in [0, 1], got {v}")

    def __call__(self, time: float) -> float:
        for bp, value in zip(self.breakpoints, self.values):
            if time < bp:
                return value
        return self.values[-1]
