"""Arrival processes for rating events.

The illustrative experiment models honest rating arrivals as a Poisson
process with rate 3/day; recruited type 2 collaborative raters arrive
as an independent Poisson process at ``arrival_rate * recruitpower2``.
Non-homogeneous arrivals (used by the Netflix-like trace) are generated
by thinning.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["poisson_arrival_times", "nonhomogeneous_arrival_times"]


def poisson_arrival_times(
    rate: float,
    start: float,
    end: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on ``[start, end)``.

    Args:
        rate: expected arrivals per unit time; must be >= 0 (a rate of 0
            yields no arrivals).
        start: interval start.
        end: interval end (exclusive).
        rng: numpy random generator (all randomness in the library flows
            through explicitly passed generators for reproducibility).
    """
    if rate < 0:
        raise ConfigurationError(f"arrival rate must be >= 0, got {rate}")
    if end < start:
        raise ConfigurationError(f"need end >= start, got [{start}, {end})")
    if rate == 0 or end == start:
        return np.empty(0)
    n = rng.poisson(rate * (end - start))
    times = rng.uniform(start, end, size=n)
    times.sort()
    return times


def nonhomogeneous_arrival_times(
    rate_fn: Callable[[float], float],
    rate_max: float,
    start: float,
    end: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of a non-homogeneous Poisson process via thinning.

    Args:
        rate_fn: instantaneous rate ``lambda(t)``; must satisfy
            ``0 <= rate_fn(t) <= rate_max`` on the interval.
        rate_max: dominating constant rate for the thinning proposal.
        start: interval start.
        end: interval end (exclusive).
        rng: numpy random generator.
    """
    candidates = poisson_arrival_times(rate_max, start, end, rng)
    if candidates.size == 0:
        return candidates
    accept_probs = np.array([rate_fn(t) for t in candidates]) / rate_max
    if np.any(accept_probs > 1.0 + 1e-9):
        raise ConfigurationError("rate_fn exceeds rate_max; thinning is invalid")
    keep = rng.uniform(size=candidates.size) < accept_probs
    return candidates[keep]
