"""Rating-trace serialization: CSV and JSON Lines.

Real deployments keep rating logs in flat files; these helpers round-
trip :class:`~repro.ratings.stream.RatingStream` objects so traces can
be exported for inspection, shared between runs, or loaded from a real
system's export.  Both formats carry the ground-truth ``unfair`` label
(for synthetic traces) -- consumers auditing real data simply leave it
False.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.errors import ConfigurationError
from repro.ratings.models import Rating
from repro.ratings.stream import RatingStream

__all__ = ["write_csv", "read_csv", "write_jsonl", "read_jsonl"]

_FIELDS = ("rating_id", "rater_id", "product_id", "value", "time", "unfair")

PathLike = Union[str, Path]


def _to_row(rating: Rating) -> dict:
    return {
        "rating_id": rating.rating_id,
        "rater_id": rating.rater_id,
        "product_id": rating.product_id,
        "value": rating.value,
        "time": rating.time,
        "unfair": rating.unfair,
    }


def _from_row(row: dict) -> Rating:
    try:
        return Rating(
            rating_id=int(row["rating_id"]),
            rater_id=int(row["rater_id"]),
            product_id=int(row["product_id"]),
            value=float(row["value"]),
            time=float(row["time"]),
            unfair=str(row.get("unfair", "False")).strip().lower()
            in ("true", "1", "yes"),
        )
    except (KeyError, ValueError) as exc:
        raise ConfigurationError(f"malformed rating row {row!r}: {exc}") from exc


def write_csv(stream: RatingStream, path: PathLike) -> int:
    """Write a stream to CSV; returns the number of rows written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for rating in stream:
            writer.writerow(_to_row(rating))
    return len(stream)


def read_csv(path: PathLike) -> RatingStream:
    """Load a stream from CSV (rows are re-sorted by time)."""
    path = Path(path)
    ratings: List[Rating] = []
    with path.open(newline="") as handle:
        for row in csv.DictReader(handle):
            ratings.append(_from_row(row))
    return RatingStream.from_ratings(ratings)


def write_jsonl(stream: RatingStream, path: PathLike) -> int:
    """Write a stream as JSON Lines; returns the number of rows written."""
    path = Path(path)
    with path.open("w") as handle:
        for rating in stream:
            handle.write(json.dumps(_to_row(rating)) + "\n")
    return len(stream)


def read_jsonl(path: PathLike) -> RatingStream:
    """Load a stream from JSON Lines (rows are re-sorted by time)."""
    path = Path(path)
    ratings: List[Rating] = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            ratings.append(_from_row(row))
    return RatingStream.from_ratings(ratings)
