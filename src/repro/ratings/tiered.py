"""Tiered rating storage: sqlite cold tier + numpy hot windows.

The in-memory rating store keeps every rating as a Python object
forever, so a long-running service's resident memory -- and the cost
of anything that walks full history -- grows without bound.
:class:`TieredRatingBackend` bounds that by splitting storage into two
tiers, the "quality repository" shape the paper's MySQL-backed
simulator (and related reputation systems) assume:

* **Cold tier** -- the full rating history in an sqlite3 database
  (stdlib, one file per engine shard).  Rows are keyed by their global
  write-ahead-log sequence number, so recovery can line the database
  up against a WAL suffix exactly.  Inserts are buffered and committed
  in batches; a commit is durable (``synchronous=FULL``), which is
  what makes it safe for the serving tier to garbage-collect WAL
  segments older than the last snapshot.
* **Hot tier** -- per product, a fixed-capacity ring buffer backed by
  a numpy structured array (40 bytes/rating, no per-object overhead)
  holding the newest ratings.  Detector-sized reads of young products
  are served from it without touching sqlite.

Reads that need more than the hot window (full-history aggregation,
per-rater streams) flush the insert buffer and query sqlite; reads
fully covered by a product's hot window never leave RAM.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.ratings.backend import RatingStoreBackend
from repro.ratings.models import Rating

__all__ = ["TieredRatingBackend", "HOT_DTYPE"]

# Domain contracts checked by `repro lint` (rule family DI): tier
# capacities and batch sizes are positive counts; sequence positions
# are non-negative.
__lint_contracts__ = {
    "TieredRatingBackend.__init__": {
        "params": {"hot_window": "[1, inf)", "commit_every": "[1, inf)"},
    },
    "TieredRatingBackend.truncate_from": {"params": {"seq": "[0, inf)"}},
}

#: Compact row layout of the hot tier (one structured-array element).
HOT_DTYPE = np.dtype(
    [
        ("rating_id", np.int64),
        ("rater_id", np.int64),
        ("product_id", np.int64),
        ("value", np.float64),
        ("time", np.float64),
        ("unfair", np.bool_),
    ]
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS ratings (
    seq        INTEGER PRIMARY KEY,
    rating_id  INTEGER NOT NULL,
    rater_id   INTEGER NOT NULL,
    product_id INTEGER NOT NULL,
    value      REAL    NOT NULL,
    time       REAL    NOT NULL,
    unfair     INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_ratings_product ON ratings (product_id, seq);
CREATE INDEX IF NOT EXISTS idx_ratings_rater   ON ratings (rater_id, seq);
"""


class _HotWindow:
    """Ring buffer of the newest ratings of one product."""

    __slots__ = ("rows", "start", "count")

    def __init__(self, capacity: int) -> None:
        self.rows = np.zeros(capacity, dtype=HOT_DTYPE)
        self.start = 0
        self.count = 0

    def push(self, rating: Rating) -> None:
        capacity = len(self.rows)
        if self.count == capacity:
            index = self.start
            self.start = (self.start + 1) % capacity
        else:
            index = (self.start + self.count) % capacity
            self.count += 1
        self.rows[index] = (
            rating.rating_id,
            rating.rater_id,
            rating.product_id,
            rating.value,
            rating.time,
            rating.unfair,
        )

    def ratings(self) -> List[Rating]:
        """Contents oldest-first, rebuilt as :class:`Rating` records."""
        out: List[Rating] = []
        capacity = len(self.rows)
        for offset in range(self.count):
            row = self.rows[(self.start + offset) % capacity]
            out.append(
                Rating(
                    rating_id=int(row["rating_id"]),
                    rater_id=int(row["rater_id"]),
                    product_id=int(row["product_id"]),
                    value=float(row["value"]),
                    time=float(row["time"]),
                    unfair=bool(row["unfair"]),
                )
            )
        return out

    def contains_rater(self, rater_id: int) -> bool:
        capacity = len(self.rows)
        for offset in range(self.count):
            if self.rows[(self.start + offset) % capacity]["rater_id"] == rater_id:
                return True
        return False


def _rating_from_row(row: tuple) -> Rating:
    return Rating(
        rating_id=int(row[0]),
        rater_id=int(row[1]),
        product_id=int(row[2]),
        value=float(row[3]),
        time=float(row[4]),
        unfair=bool(row[5]),
    )


_SELECT_COLUMNS = "rating_id, rater_id, product_id, value, time, unfair"


class TieredRatingBackend(RatingStoreBackend):
    """Full history in sqlite, newest ratings in numpy ring buffers.

    Args:
        path: sqlite database file (created with parents); ``None``
            uses an in-memory database -- same semantics, no
            durability, handy for tests and WAL-less engines.
        hot_window: per-product ring-buffer capacity.  Size it to the
            detectors' needs (the serving tier defaults to twice the
            streaming detector window) so detector-scale reads stay in
            RAM.
        commit_every: buffered inserts per sqlite transaction.  Each
            commit is durable (``synchronous=FULL``); smaller values
            tighten the durable lag at an fsync cost per commit.

    Thread safety: a single internal lock guards the connection, the
    insert buffer, and the hot tier, so one backend may be shared by
    readers while an owner writes.  (Inside the serving engine every
    call additionally happens under the owning shard's lock.)
    """

    name = "tiered"

    # Lint contract (CC03): all mutable tier state is owned by _lock.
    _GUARDED_BY = {
        "_conn": "_lock",
        "_pending": "_lock",
        "_pending_new": "_lock",
        "_hot": "_lock",
        "_product_counts": "_lock",
        "_n_total": "_lock",
        "_n_committed": "_lock",
        "_next_seq": "_lock",
    }

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        hot_window: int = 128,
        commit_every: int = 2048,
    ) -> None:
        if hot_window < 1:
            raise ConfigurationError(f"hot_window must be >= 1, got {hot_window}")
        if commit_every < 1:
            raise ConfigurationError(f"commit_every must be >= 1, got {commit_every}")
        self._path = Path(path) if path is not None else None
        self.hot_window = int(hot_window)
        self.commit_every = int(commit_every)
        self._lock = threading.Lock()
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
        target = str(self._path) if self._path is not None else ":memory:"
        self._conn = sqlite3.connect(target, check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        if self._path is not None:
            # WAL journaling keeps readers cheap; FULL synchronous makes
            # each commit a real durability point (the WAL-segment GC
            # horizon depends on it).
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=FULL")
        self._pending: List[tuple] = []
        self._pending_new = 0
        self._hot: Dict[int, _HotWindow] = {}
        self._load_existing()

    # -- startup / recovery ------------------------------------------------

    def _load_existing(self) -> None:
        """Derive counters from whatever the database already holds.

        Callers hold ``_lock``; the ``__init__`` call is single-threaded
        (no other thread can see the backend during construction).
        """
        row = self._conn.execute(
            "SELECT COUNT(*), COALESCE(MAX(seq), -1) FROM ratings"
        ).fetchone()
        self._n_total = int(row[0])
        self._n_committed = int(row[0])
        self._next_seq = int(row[1]) + 1
        self._product_counts: Dict[int, int] = {
            int(pid): int(count)
            for pid, count in self._conn.execute(
                "SELECT product_id, COUNT(*) FROM ratings GROUP BY product_id"
            )
        }

    def truncate_from(self, seq: int) -> int:
        """Delete every row with sequence >= ``seq``; returns rows kept.

        Recovery calls this to roll the cold tier back to exactly the
        state a snapshot covers before the WAL suffix is re-processed
        (re-ingested rows re-insert under their original sequence
        numbers, so the operation is idempotent).  Hot windows are
        dropped -- they repopulate from new arrivals, and reads fall
        through to sqlite meanwhile.
        """
        if seq < 0:
            raise ConfigurationError(f"truncate_from needs seq >= 0, got {seq}")
        with self._lock:
            self._commit_locked()
            self._conn.execute("DELETE FROM ratings WHERE seq >= ?", (int(seq),))
            self._conn.commit()
            self._hot.clear()
            self._load_existing()
            return self._n_total

    def product_ids(self) -> List[int]:
        """Distinct product ids present in storage (sorted)."""
        with self._lock:
            self._commit_locked()
            return sorted(
                int(pid)
                for (pid,) in self._conn.execute(
                    "SELECT DISTINCT product_id FROM ratings"
                )
            )

    def rater_ids(self) -> List[int]:
        """Distinct rater ids present in storage (sorted)."""
        with self._lock:
            self._commit_locked()
            return sorted(
                int(rid)
                for (rid,) in self._conn.execute(
                    "SELECT DISTINCT rater_id FROM ratings"
                )
            )

    # -- writes ------------------------------------------------------------

    def add(self, rating: Rating, seq: Optional[int] = None) -> None:
        with self._lock:
            if seq is None:
                seq = self._next_seq
            seq = int(seq)
            row = (
                seq,
                rating.rating_id,
                rating.rater_id,
                rating.product_id,
                rating.value,
                rating.time,
                1 if rating.unfair else 0,
            )
            if seq < self._next_seq and self._seq_known_locked(seq):
                # Idempotent re-ingest (a replayed WAL suffix): refresh
                # the cold row under its original key, leave counters
                # and the hot tier untouched.
                self._pending.append(row)
            else:
                self._next_seq = max(self._next_seq, seq + 1)
                window = self._hot.get(rating.product_id)
                if window is None:
                    window = _HotWindow(self.hot_window)
                    self._hot[rating.product_id] = window
                window.push(rating)
                self._product_counts[rating.product_id] = (
                    self._product_counts.get(rating.product_id, 0) + 1
                )
                self._pending.append(row)
                self._pending_new += 1
                self._n_total += 1
            if len(self._pending) >= self.commit_every:
                self._commit_locked()

    def _seq_known_locked(self, seq: int) -> bool:
        """True when ``seq`` is already buffered or committed (lock held)."""
        if any(pending[0] == seq for pending in self._pending):
            return True
        return (
            self._conn.execute(
                "SELECT 1 FROM ratings WHERE seq = ?", (seq,)
            ).fetchone()
            is not None
        )

    def _commit_locked(self) -> None:
        if not self._pending:
            return
        self._conn.executemany(
            "INSERT OR REPLACE INTO ratings "
            "(seq, rating_id, rater_id, product_id, value, time, unfair) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            self._pending,
        )
        self._conn.commit()
        self._n_committed += self._pending_new
        self._pending = []
        self._pending_new = 0

    def commit(self) -> None:
        """Flush buffered inserts through a durable sqlite commit."""
        with self._lock:
            self._commit_locked()

    def close(self) -> None:
        """Commit any buffered rows and close the connection."""
        with self._lock:
            self._commit_locked()
            self._conn.close()

    # -- reads -------------------------------------------------------------

    @property
    def n_ratings(self) -> int:
        with self._lock:
            return self._n_total

    def product_ratings(self, product_id: int) -> List[Rating]:
        with self._lock:
            total = self._product_counts.get(product_id, 0)
            if total == 0:
                return []
            window = self._hot.get(product_id)
            if window is not None and window.count == total:
                return window.ratings()
            self._commit_locked()
            rows = self._conn.execute(
                f"SELECT {_SELECT_COLUMNS} FROM ratings "
                "WHERE product_id = ? ORDER BY seq",
                (int(product_id),),
            ).fetchall()
        return [_rating_from_row(row) for row in rows]

    def rater_ratings(self, rater_id: int) -> List[Rating]:
        with self._lock:
            self._commit_locked()
            rows = self._conn.execute(
                f"SELECT {_SELECT_COLUMNS} FROM ratings "
                "WHERE rater_id = ? ORDER BY seq",
                (int(rater_id),),
            ).fetchall()
        return [_rating_from_row(row) for row in rows]

    def all_ratings(self) -> List[Rating]:
        with self._lock:
            self._commit_locked()
            rows = self._conn.execute(
                f"SELECT {_SELECT_COLUMNS} FROM ratings ORDER BY seq"
            ).fetchall()
        return [_rating_from_row(row) for row in rows]

    def has_rated(self, rater_id: int, product_id: int) -> bool:
        with self._lock:
            total = self._product_counts.get(product_id, 0)
            if total == 0:
                return False
            window = self._hot.get(product_id)
            if window is not None:
                if window.contains_rater(rater_id):
                    return True
                if window.count == total:
                    return False
            self._commit_locked()
            row = self._conn.execute(
                "SELECT 1 FROM ratings WHERE rater_id = ? AND product_id = ? "
                "LIMIT 1",
                (int(rater_id), int(product_id)),
            ).fetchone()
            return row is not None

    def clear(self) -> None:
        with self._lock:
            self._pending = []
            # Dropping buffered rows must also drop their commit credit,
            # or the next _commit_locked inflates _n_committed by the
            # number of rows cleared here (visible in stats()).
            self._pending_new = 0
            self._conn.execute("DELETE FROM ratings")
            self._conn.commit()
            self._hot.clear()
            self._load_existing()

    # -- telemetry ---------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            hot = sum(window.count for window in self._hot.values())
            payload = {
                "backend": self.name,
                "hot_ratings": hot,
                "cold_ratings": self._n_committed,
                "pending_ratings": len(self._pending),
                "hot_window": self.hot_window,
                "path": str(self._path) if self._path is not None else None,
            }
        if self._path is not None and self._path.exists():
            payload["cold_bytes"] = self._path.stat().st_size
        return payload
