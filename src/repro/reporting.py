"""Best-effort structured export of experiment results.

Experiment results are nested dataclasses carrying numpy arrays, enums,
and occasionally heavyweight simulation objects.  :func:`to_jsonable`
converts anything JSON-representable faithfully and degrades gracefully
on the rest (a compact ``repr`` string), so ``repro run <exp> --json``
always produces a loadable file without each experiment needing its own
serializer.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "dump_json"]

#: Objects bigger than this many elements are summarized, not inlined.
_MAX_ARRAY_ELEMENTS = 100_000


def to_jsonable(obj: Any, _depth: int = 0) -> Any:
    """Convert an experiment result into JSON-serializable data.

    Dataclasses become dicts, numpy arrays become lists (length-capped),
    enums become their values, dict keys are stringified, and objects
    with no natural JSON form are rendered as their ``repr``.
    """
    if _depth > 20:
        return repr(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        if obj.size > _MAX_ARRAY_ELEMENTS:
            return {
                "__array_summary__": True,
                "shape": list(obj.shape),
                "dtype": str(obj.dtype),
                "mean": float(np.mean(obj)) if obj.size else None,
            }
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name), _depth + 1)
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v, _depth + 1) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v, _depth + 1) for v in obj]
    return repr(obj)


def dump_json(obj: Any, path) -> Path:
    """Write an experiment result to a JSON file; returns the path."""
    path = Path(path)
    with path.open("w") as handle:
        json.dump(to_jsonable(obj), handle, indent=2)
        handle.write("\n")
    return path
