"""Committed baseline: grandfathered findings that do not fail CI.

A baseline entry matches on ``(rule, path, stripped line text)`` -- not
the line *number* -- so unrelated edits above a finding don't invalidate
it, while any edit to the offending line itself forces the author to
re-justify.  Every entry carries a ``reason``; an empty reason is a
placeholder that review should reject.

Stale entries (no longer matched by any finding) are surfaced as
warnings so the baseline shrinks over time instead of fossilizing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.devtools.core import Finding

__all__ = ["Baseline", "BaselineEntry"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding.

    Attributes:
        rule: rule id the entry silences (e.g. ``CC02``).
        path: project-root-relative POSIX path.
        line_text: the stripped offending source line (the match key).
        reason: why this finding is accepted -- required for review.
    """

    rule: str
    path: str
    line_text: str
    reason: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.line_text)


class Baseline:
    """The set of grandfathered findings, loaded from/saved to JSON."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._index: Dict[Tuple[str, str, str], BaselineEntry] = {
            entry.key(): entry for entry in self.entries
        }
        self._matched: Set[Tuple[str, str, str]] = set()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}"
            )
        entries = [
            BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                line_text=item["line_text"],
                reason=item.get("reason", ""),
            )
            for item in data.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "line_text": entry.line_text,
                    "reason": entry.reason,
                }
                for entry in sorted(self.entries, key=BaselineEntry.key)
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def matches(self, finding: Finding) -> bool:
        """True (and recorded) when a committed entry covers the finding."""
        key = (finding.rule, finding.path, finding.line_text)
        if key in self._index:
            self._matched.add(key)
            return True
        return False

    def stale_entries(self) -> List[BaselineEntry]:
        """Entries no match consumed -- candidates for deletion."""
        return [
            entry for entry in self.entries if entry.key() not in self._matched
        ]

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Build a fresh baseline from the still-active findings."""
        entries = []
        seen: Set[Tuple[str, str, str]] = set()
        for finding in findings:
            if not finding.active:
                continue
            entry = BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                line_text=finding.line_text,
                reason="TODO: justify or fix",
            )
            if entry.key() in seen:
                continue
            seen.add(entry.key())
            entries.append(entry)
        return cls(entries)
