"""AR: architecture rules -- layering DAG and import cycles.

The package is layered so that the paper's model code stays importable
without the serving/experiment machinery around it:

======  ===========  ====================================================
layer   name         subpackages
======  ===========  ====================================================
0       foundation   ``errors``, ``_version``, ``reporting``
1       primitives   ``signal`` (incl. ``signal.sliding``, the AR
                     fast paths), ``ratings`` (incl.
                     ``ratings.backend`` / ``ratings.tiered``, the
                     pluggable rating-store backends -- the sqlite
                     cold tier lives here so ``service`` can stay a
                     pure consumer of the storage API)
2       domain       ``trust``, ``detectors``, ``aggregation``,
                     ``filters``, ``raters``, ``attacks``, ``data``,
                     ``evaluation``
3       composition  ``core``, ``simulation``, ``audit``
4       application  ``experiments``, ``presets``, ``service``
                     (incl. ``service.ensemble``, the pluggable
                     online detector sources, and
                     ``service.cluster``, the multi-process serving
                     tier -- its coordinator declares
                     ``__effect_contracts__`` so DP01--DP03 cover
                     the WAL-append-before-ack ingest path)
5       interface    ``cli``, ``__main__``, the root package
======  ===========  ====================================================

A member may import same-or-lower layers only.  ``devtools`` sits
outside the stack: it imports nothing from the runtime packages, and
only the interface layer may import it -- the linter must never be a
runtime dependency of the model.

* **AR01** -- an import crosses the layering DAG upward (or touches
  ``devtools`` from the wrong side, or targets a subpackage missing
  from the map above).
* **AR02** -- a strongly connected component in the project import
  graph (an import cycle).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.devtools.analysis.model import get_analysis, module_name_for
from repro.devtools.core import Finding, Rule, SourceFile, register
from repro.devtools.project import ProjectModel

__all__ = ["LAYERS", "subpackage_layer"]

#: Subpackage -> (layer number, layer name).  ``""`` is the root package.
LAYERS = {
    "errors": (0, "foundation"),
    "_version": (0, "foundation"),
    "reporting": (0, "foundation"),
    "signal": (1, "primitives"),
    "ratings": (1, "primitives"),
    "trust": (2, "domain"),
    "detectors": (2, "domain"),
    "aggregation": (2, "domain"),
    "filters": (2, "domain"),
    "raters": (2, "domain"),
    "attacks": (2, "domain"),
    "data": (2, "domain"),
    "evaluation": (2, "domain"),
    "core": (3, "composition"),
    "simulation": (3, "composition"),
    "audit": (3, "composition"),
    "experiments": (4, "application"),
    "presets": (4, "application"),
    "service": (4, "application"),
    "cli": (5, "interface"),
    "__main__": (5, "interface"),
    "": (5, "interface"),
}

_ROOT_PACKAGE = "repro"


def _subpackage(module: str) -> Optional[str]:
    """The first component under the root package, or None if external."""
    if module == _ROOT_PACKAGE:
        return ""
    prefix = _ROOT_PACKAGE + "."
    if not module.startswith(prefix):
        return None
    return module.split(".")[1]


def subpackage_layer(module: str) -> Optional[Tuple[int, str]]:
    """(layer number, layer name) of a module, or None if external."""
    sub = _subpackage(module)
    if sub is None:
        return None
    return LAYERS.get(sub)


def _import_targets(
    tree: ast.Module, module: str, relpath: str
) -> List[Tuple[str, int]]:
    """(absolute module name, line) for every import in one file."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = module.split(".") if module else []
                if relpath.endswith("__init__.py"):
                    base_parts = base_parts[: len(base_parts) - (node.level - 1)]
                else:
                    base_parts = base_parts[: len(base_parts) - node.level]
                base = ".".join(base_parts)
                source = f"{base}.{node.module}" if node.module else base
            else:
                source = node.module or ""
            if _subpackage(source) == "":
                # ``from repro import trust`` targets the submodule, not
                # the root; classify each imported name individually.
                for alias in node.names:
                    if alias.name != "*" and alias.name in LAYERS:
                        out.append((f"{source}.{alias.name}", node.lineno))
                    else:
                        out.append((source, node.lineno))
            else:
                out.append((source, node.lineno))
    return out


@register
class LayeringViolation(Rule):
    """AR01: an import that crosses the layering DAG upward."""

    id = "AR01"
    name = "layering violation"
    rationale = (
        "Lower layers must stay importable without the layers above "
        "them; an upward import couples the model code to serving or "
        "tooling machinery and eventually produces import cycles."
    )
    scope = "file"

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        for file in files:
            module = module_name_for(file.relpath)
            sub = _subpackage(module)
            if sub is None:
                continue  # fixture / non-repro code is unconstrained
            for target, line in _import_targets(file.tree, module, file.relpath):
                target_sub = _subpackage(target)
                if target_sub is None or target == module:
                    continue
                if sub == "devtools":
                    if target_sub != "devtools":
                        yield self.finding(
                            file,
                            line,
                            f"devtools imports runtime module {target}; "
                            "the linter must not depend on the code it "
                            "checks",
                        )
                    continue
                if target_sub == "devtools":
                    if LAYERS.get(sub, (None, None))[1] != "interface":
                        yield self.finding(
                            file,
                            line,
                            f"{module} imports {target}: only the "
                            "interface layer (cli/__main__) may import "
                            "repro.devtools",
                        )
                    continue
                here = LAYERS.get(sub)
                there = LAYERS.get(target_sub)
                if here is None:
                    yield self.finding(
                        file,
                        line,
                        f"subpackage {sub!r} is missing from the "
                        "layering map in "
                        "repro.devtools.analysis.rules_arch.LAYERS",
                    )
                    continue
                if there is None:
                    yield self.finding(
                        file,
                        line,
                        f"import target subpackage {target_sub!r} is "
                        "missing from the layering map in "
                        "repro.devtools.analysis.rules_arch.LAYERS",
                    )
                    continue
                if there[0] > here[0]:
                    yield self.finding(
                        file,
                        line,
                        f"{module} ({here[1]}, layer {here[0]}) imports "
                        f"{target} ({there[1]}, layer {there[0]}): "
                        "imports must point same-layer or downward",
                    )


@register
class ImportCycle(Rule):
    """AR02: strongly connected component in the import graph."""

    id = "AR02"
    name = "import cycle"
    rationale = (
        "Import cycles make module initialisation order-dependent and "
        "break partial imports; the import graph must stay a DAG."
    )
    scope = "global"

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        analysis = get_analysis(project, files)
        by_relpath = {file.relpath: file for file in files}
        for component in analysis.import_cycles():
            members = " -> ".join(component + [component[0]])
            for relpath in component:
                file = by_relpath.get(relpath)
                if file is None:
                    continue
                line = 1
                info = analysis.modules[relpath]
                in_cycle = set(component)
                for edge in info.import_edges:
                    target = analysis.module_file(edge.module)
                    if target in in_cycle:
                        line = edge.line
                        break
                yield self.finding(
                    file,
                    line,
                    f"module participates in an import cycle: {members}",
                )
