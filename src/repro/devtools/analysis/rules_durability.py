"""DP: durability-protocol rules over interprocedural effect summaries.

The serving tier's crash-safety story is a protocol, not a property of
any one call: *write to a temp file, flush, fsync, atomically rename,
fsync the directory, only then acknowledge*.  Each DP rule checks one
leg of that protocol on the effect sequences built by
:mod:`repro.devtools.analysis.effects`:

* **DP01** -- atomic-replace hygiene.  (a) A file write with no fsync
  between it and a rename means the rename can publish a torn file;
  (b) a rename/unlink with no later directory fsync in the same
  function means the directory entry itself may be lost on power
  failure (the file's contents survive but its *name* does not).
  Arm (b) anchors on a function's own rename/unlink events only --
  the function that mutates the directory owns the directory fsync.
* **DP02** -- declared orderings (``__effect_contracts__``
  ``orderings``): every occurrence of the *after* effect on a
  function's flattened sequence must see the *before* effect earlier.
  This is how ``wal_append`` happens-before ``ack`` is enforced on the
  HTTP handler without the rule knowing anything about HTTP.
* **DP03** -- buffered write left unflushed at an fsync.  ``fsync``
  flushes the kernel's buffers, not Python's: ``h.write();
  os.fsync(h.fileno())`` without ``h.flush()`` syncs stale bytes.
  Checked intraprocedurally on handle-matched direct events (raw
  ``os.write`` is unbuffered and exempt).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.analysis.effects import (
    FunctionEffects,
    effect_summaries,
    get_effect_index,
)
from repro.devtools.core import Finding, Rule, SourceFile, register

__all__ = ["AtomicReplaceRule", "OrderingContractRule", "UnflushedWriteRule"]


@register
class AtomicReplaceRule(Rule):
    id = "DP01"
    name = "atomic-replace-hygiene"
    rationale = (
        "An os.replace publishes whatever bytes reached the inode: a "
        "write with no fsync before the rename can publish a torn "
        "file, and a rename/unlink with no directory fsync after it "
        "can vanish entirely on power loss."
    )
    scope = "cone"

    def run(self, project, files: List[SourceFile]) -> Iterator[Finding]:
        summaries = effect_summaries(project, files)
        emit = {file.relpath for file in files}
        by_relpath = {file.relpath: file for file in files}
        for qualname, fn in sorted(project.functions.items()):
            if fn.file.relpath not in emit:
                continue
            file = by_relpath[fn.file.relpath]
            effects = summaries[qualname]
            yield from self._check_torn_write(file, effects)
            yield from self._check_dir_fsync(file, effects)

    def _check_torn_write(
        self, file: SourceFile, effects: FunctionEffects
    ) -> Iterator[Finding]:
        pending_line = None
        for event in effects.events:
            if event.kind == "write":
                if event.direct:
                    pending_line = event.line
            elif event.kind in ("fsync", "dir_fsync", "flush"):
                # flush alone does not make the write durable, but the
                # torn-publish arm only tracks fsync; flush keeps the
                # pending write (DP03 owns the flush discipline).
                if event.kind != "flush":
                    pending_line = None
            elif event.kind == "rename" and event.direct:
                if pending_line is not None:
                    yield self.finding(
                        file,
                        event.line,
                        "rename publishes a file written at line "
                        f"{pending_line} with no fsync in between -- a "
                        "crash can publish a torn file (write, flush, "
                        "fsync, then os.replace)",
                    )
                pending_line = None

    def _check_dir_fsync(
        self, file: SourceFile, effects: FunctionEffects
    ) -> Iterator[Finding]:
        events = effects.events
        for idx, event in enumerate(events):
            if event.kind not in ("rename", "unlink") or not event.direct:
                continue
            covered = any(
                later.kind == "dir_fsync" for later in events[idx + 1 :]
            )
            if not covered:
                yield self.finding(
                    file,
                    event.line,
                    f"{event.kind} mutates a directory entry with no "
                    "directory fsync afterwards -- the entry itself can "
                    "be lost on power failure (fsync an O_RDONLY fd of "
                    "the directory after the mutation)",
                )


@register
class OrderingContractRule(Rule):
    id = "DP02"
    name = "declared-effect-ordering"
    rationale = (
        "Durability orderings (WAL append happens-before ack, snapshot "
        "write happens-before WAL GC) span several call layers; a "
        "declared ordering is checked on the function's flattened "
        "effect sequence so refactors cannot silently reorder them."
    )
    scope = "cone"

    def run(self, project, files: List[SourceFile]) -> Iterator[Finding]:
        summaries = effect_summaries(project, files)
        index = get_effect_index(project, files)
        emit = {file.relpath for file in files}
        by_relpath = {file.relpath: file for file in files}
        for qualname, pairs in sorted(index.orderings.items()):
            fn = project.functions.get(qualname)
            if fn is None or fn.file.relpath not in emit:
                continue
            file = by_relpath[fn.file.relpath]
            kinds = [event.kind for event in summaries[qualname].events]
            lines = [event.line for event in summaries[qualname].events]
            for before, after in pairs:
                seen_before = False
                for idx, kind in enumerate(kinds):
                    if kind == before:
                        seen_before = True
                    elif kind == after and not seen_before:
                        yield self.finding(
                            file,
                            lines[idx],
                            f"declared ordering violated: '{after}' at "
                            f"this point has no preceding '{before}' on "
                            f"any path through {qualname} "
                            "(__effect_contracts__ orderings)",
                        )
                        break


@register
class UnflushedWriteRule(Rule):
    id = "DP03"
    name = "unflushed-write-at-fsync"
    rationale = (
        "os.fsync flushes kernel buffers, not Python's userspace "
        "buffer: fsync on a handle with unflushed writes syncs stale "
        "bytes and the tail is lost on crash."
    )
    scope = "cone"

    def run(self, project, files: List[SourceFile]) -> Iterator[Finding]:
        summaries = effect_summaries(project, files)
        emit = {file.relpath for file in files}
        by_relpath = {file.relpath: file for file in files}
        for qualname, fn in sorted(project.functions.items()):
            if fn.file.relpath not in emit:
                continue
            file = by_relpath[fn.file.relpath]
            dirty = {}
            for event in summaries[qualname].direct:
                if not event.detail:
                    continue
                if event.kind == "write":
                    dirty[event.detail] = event.line
                elif event.kind == "flush":
                    dirty.pop(event.detail, None)
                elif event.kind == "fsync":
                    line = dirty.pop(event.detail, None)
                    if line is not None:
                        yield self.finding(
                            file,
                            event.line,
                            f"fsync of '{event.detail}' while its write "
                            f"at line {line} is still in the userspace "
                            "buffer -- call .flush() before os.fsync or "
                            "the tail is lost on crash",
                        )
