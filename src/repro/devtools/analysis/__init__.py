"""Whole-program analysis engine behind the DI/AR/EX/DX rule families.

``repro.devtools.analysis`` grows the per-file linter of
:mod:`repro.devtools` into a project-wide pass:

* :mod:`~repro.devtools.analysis.model` -- module symbol table, import
  DAG, and cross-module call resolution built on the per-file parse
  layer;
* :mod:`~repro.devtools.analysis.intervals` -- the interval abstract
  domain used by the domain-invariant (DI) rules, including the
  monotone-fraction lemma that proves the beta-trust form
  ``(S + 1) / (S + F + 2)`` lies in ``(0, 1)``;
* :mod:`~repro.devtools.analysis.contracts` -- the declarative
  contract registry mapping dotted names to numeric domains
  (``repro.trust.records.beta_trust -> (0, 1)``);
* :mod:`~repro.devtools.analysis.cache` -- the content-hash keyed
  cross-file cache under ``.lint-cache/`` that makes re-runs
  incremental (an unchanged tree re-analyzes zero files);
* :mod:`~repro.devtools.analysis.effects` -- per-function I/O effect
  summaries (write/flush/fsync/rename/dir-fsync/ack plus named effects
  such as ``wal_append``) flattened through the call graph, and the
  :class:`EffectRegistry` of durability contracts that modules extend
  with ``__effect_contracts__`` declarations;
* ``rules_domain`` / ``rules_arch`` / ``rules_exceptions`` /
  ``rules_deadcode`` -- the DI, AR, EX, and DX rule families;
* ``rules_durability`` / ``rules_serialization`` /
  ``rules_crossproc`` -- the DP (durability protocol), SD
  (serialization contract), and CC04-CC05 (cross-process lock) rule
  families built on the effect summaries.
"""

from repro.devtools.analysis.cache import AnalysisCache
from repro.devtools.analysis.contracts import (
    ContractRegistry,
    FunctionContract,
    default_registry,
)
from repro.devtools.analysis.effects import (
    EffectEvent,
    EffectRegistry,
    FunctionEffects,
    default_effect_registry,
    effect_summaries,
)
from repro.devtools.analysis.intervals import Interval
from repro.devtools.analysis.model import AnalysisModel, ModuleInfo, get_analysis

__all__ = [
    "AnalysisCache",
    "AnalysisModel",
    "ContractRegistry",
    "EffectEvent",
    "EffectRegistry",
    "FunctionContract",
    "FunctionEffects",
    "Interval",
    "ModuleInfo",
    "default_effect_registry",
    "default_registry",
    "effect_summaries",
    "get_analysis",
]
