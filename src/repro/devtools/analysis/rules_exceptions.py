"""EX: interprocedural exception-escape rules.

The service promises structured error responses and the CLIs promise
clean exit codes, so exceptions must not leak raw through either
boundary.  These rules compute, for every project function, the set of
exception types that can *escape* it -- direct ``raise`` statements
minus lexically enclosing ``try``/``except`` coverage, plus whatever
escapes resolvable callees and is not caught at the call site -- via a
fixpoint over the call graph.

* **EX01** -- an HTTP ``do_*`` handler method lets an exception escape
  (anything but ``KeyboardInterrupt``/``SystemExit``); escapes turn
  into socket-level 500s with no JSON body.
* **EX02** -- a CLI ``main`` lets anything but
  ``SystemExit``/``KeyboardInterrupt`` escape, producing a traceback
  instead of an exit code.

Soundness note (documented in docs/LINT.md): calls the resolver cannot
map to a project function -- stdlib, numpy, dynamic dispatch -- are
assumed non-raising, so the analysis under-approximates.  ``raise``
of a non-class expression is tracked as ``<unknown>`` and is caught
only by ``except Exception``/``BaseException`` handlers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.analysis.model import AnalysisModel, get_analysis
from repro.devtools.core import Finding, Rule, SourceFile, register
from repro.devtools.project import FunctionModel, ProjectModel

__all__ = ["escape_sets"]

_UNKNOWN = "<unknown>"

#: Builtin exception -> parent class, enough of the stdlib hierarchy to
#: decide whether an ``except`` clause covers a raised type.
_BUILTIN_PARENTS: Dict[str, str] = {
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "PermissionError": "OSError",
    "TimeoutError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "SyntaxError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "JSONDecodeError": "ValueError",
}


class _Hierarchy:
    """Subclass checks across project-defined and builtin exceptions."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project

    def ancestors(self, name: str) -> Set[str]:
        out: Set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop()
            if current in out:
                continue
            out.add(current)
            model = self.project.classes.get(current)
            if model is not None:
                queue.extend(model.bases)
            parent = _BUILTIN_PARENTS.get(current)
            if parent is not None:
                queue.append(parent)
        return out

    def caught_by(self, raised: str, handler_types: Sequence[str]) -> bool:
        if raised == _UNKNOWN:
            return any(h in ("Exception", "BaseException") for h in handler_types)
        lineage = self.ancestors(raised)
        return any(h in lineage for h in handler_types)


def _handler_types(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return ["BaseException"]
    types = []
    nodes = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in nodes:
        if isinstance(node, ast.Name):
            types.append(node.id)
        elif isinstance(node, ast.Attribute):
            types.append(node.attr)
        else:
            types.append("BaseException")  # dynamic: assume it catches
    return types


def _raised_name(exc: Optional[ast.expr], project: ProjectModel) -> str:
    if exc is None:
        return _UNKNOWN  # bare re-raise handled separately
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        if exc.id in project.classes or exc.id in _BUILTIN_PARENTS:
            return exc.id
        return _UNKNOWN
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return _UNKNOWN


class _EscapeCollector:
    """Direct raises and call sites of one function, with the lexical
    ``try`` coverage in force at each."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        #: (exception name, frozen stack of handler-type lists)
        self.raises: List[Tuple[str, Tuple[Tuple[str, ...], ...]]] = []
        #: (call node, frozen stack of handler-type lists)
        self.calls: List[Tuple[ast.Call, Tuple[Tuple[str, ...], ...]]] = []
        self._try_stack: List[Tuple[str, ...]] = []
        self._handler_stack: List[Tuple[str, ...]] = []

    def visit(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._statement(stmt)

    def _snapshot(self) -> Tuple[Tuple[str, ...], ...]:
        return tuple(self._try_stack)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Try):
            caught: List[str] = []
            for handler in stmt.handlers:
                caught.extend(_handler_types(handler))
            self._try_stack.append(tuple(caught))
            self.visit(stmt.body)
            self._try_stack.pop()
            for handler in stmt.handlers:
                self._handler_stack.append(tuple(_handler_types(handler)))
                self.visit(handler.body)
                self._handler_stack.pop()
            self.visit(stmt.orelse)
            self.visit(stmt.finalbody)
            return
        if isinstance(stmt, ast.Raise):
            snapshot = self._snapshot()
            if stmt.exc is None:
                # bare ``raise`` re-raises the handled exception types
                if self._handler_stack:
                    for name in self._handler_stack[-1]:
                        self.raises.append((name, snapshot))
                else:
                    self.raises.append((_UNKNOWN, snapshot))
            else:
                self.raises.append(
                    (_raised_name(stmt.exc, self.project), snapshot)
                )
            self._collect_calls(stmt)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions raise in their own frame
        self._collect_calls_shallow(stmt)
        for field in ("body", "orelse", "finalbody"):
            children = getattr(stmt, field, None)
            if children:
                self.visit(children)

    def _collect_calls_shallow(self, stmt: ast.stmt) -> None:
        """Calls in this statement's expressions (not nested blocks)."""
        blocks = set()
        for field in ("body", "orelse", "finalbody"):
            for child in getattr(stmt, field, []) or []:
                blocks.update(id(n) for n in ast.walk(child))
        snapshot = self._snapshot()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and id(node) not in blocks:
                self.calls.append((node, snapshot))

    def _collect_calls(self, stmt: ast.stmt) -> None:
        snapshot = self._snapshot()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self.calls.append((node, snapshot))


def _dotted_source(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_source(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


class _SyntheticCall:
    """Duck-typed :class:`CallEvent` for the shared resolver."""

    __slots__ = ("callee", "func_src", "held", "line")

    def __init__(self, func_src: str, line: int) -> None:
        self.callee = None
        self.func_src = func_src
        self.held = ()
        self.line = line


def _call_targets(
    fn: FunctionModel,
    call: ast.Call,
    project: ProjectModel,
    analysis: AnalysisModel,
    typer,
) -> List[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        base = typer(func.value)
        if base is not None:
            method = project.method(base, func.attr)
            return [method.qualname] if method is not None else []
    src = _dotted_source(func)
    if src is None:
        return []
    return analysis.resolve_call_targets(fn, _SyntheticCall(src, call.lineno))


def escape_sets(
    project: ProjectModel, files: Sequence[SourceFile]
) -> Dict[str, Set[str]]:
    """Escaping exception types per function qualname (fixpoint)."""
    cached = getattr(project, "_escape_sets", None)
    if cached is not None:
        return cached
    analysis = get_analysis(project, files)
    hierarchy = _Hierarchy(project)
    collected: Dict[str, _EscapeCollector] = {}
    typers: Dict[str, object] = {}
    for qualname, fn in project.functions.items():
        collector = _EscapeCollector(project)
        if not fn.is_generator:
            collector.visit(fn.node.body)
        collected[qualname] = collector
        typers[qualname] = project.function_typer(fn)

    escapes: Dict[str, Set[str]] = {q: set() for q in project.functions}
    changed = True
    while changed:
        changed = False
        for qualname, fn in project.functions.items():
            collector = collected[qualname]
            current: Set[str] = set()
            for name, stack in collector.raises:
                if not any(
                    hierarchy.caught_by(name, frame) for frame in stack
                ):
                    current.add(name)
            for call, stack in collector.calls:
                for target in _call_targets(
                    fn, call, project, analysis, typers[qualname]
                ):
                    for name in escapes.get(target, ()):
                        if not any(
                            hierarchy.caught_by(name, frame) for frame in stack
                        ):
                            current.add(name)
            if current != escapes[qualname]:
                escapes[qualname] = current
                changed = True
    project._escape_sets = escapes
    return escapes


def _is_http_handler_class(project: ProjectModel, class_name: str) -> bool:
    return any(
        "BaseHTTPRequestHandler" in model.bases or model.name == "BaseHTTPRequestHandler"
        for model in project.mro(class_name)
    )


_BENIGN = {"KeyboardInterrupt", "SystemExit", "GeneratorExit"}


@register
class HandlerExceptionEscape(Rule):
    """EX01: exception escapes an HTTP request handler method."""

    id = "EX01"
    name = "exception escapes HTTP handler"
    rationale = (
        "A do_* method that lets an exception escape drops the "
        "connection with no JSON error body; handlers must map "
        "ReproError to 4xx and everything else to a structured 500."
    )
    scope = "cone"

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        escapes = escape_sets(project, files)
        emit = {file.relpath for file in files}
        for qualname, fn in project.functions.items():
            if fn.file.relpath not in emit or fn.class_name is None:
                continue
            if not fn.node.name.startswith("do_"):
                continue
            if not fn.node.name[3:].isupper():
                continue
            if not _is_http_handler_class(project, fn.class_name):
                continue
            leaking = sorted(escapes[qualname] - _BENIGN)
            if leaking:
                yield self.finding(
                    fn.file,
                    fn.node.lineno,
                    f"{qualname} can let {', '.join(leaking)} escape; "
                    "wrap the handler body and map ReproError to a 4xx "
                    "JSON response and other exceptions to a 500",
                )


@register
class CliExceptionEscape(Rule):
    """EX02: exception escapes a CLI entry point."""

    id = "EX02"
    name = "exception escapes CLI entry point"
    rationale = (
        "A ``main`` that leaks exceptions prints a traceback instead "
        "of an exit code; catch ReproError (and expected ValueErrors) "
        "and translate them to sys.exit."
    )
    scope = "cone"

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        escapes = escape_sets(project, files)
        emit = {file.relpath for file in files}
        for qualname, fn in project.functions.items():
            if fn.file.relpath not in emit or fn.class_name is not None:
                continue
            if fn.node.name != "main":
                continue
            leaking = sorted(escapes[qualname] - _BENIGN)
            if leaking:
                yield self.finding(
                    fn.file,
                    fn.node.lineno,
                    f"{qualname} can let {', '.join(leaking)} escape to "
                    "the interpreter; translate expected errors to "
                    "sys.exit codes",
                )
