"""Declarative numeric-domain contracts for the DI rule family.

A contract binds a dotted name to the numeric domain its parameters
and return value must inhabit -- the paper's invariants made machine
checkable: beta trust ``(S + 1) / (S + F + 2)`` lies in ``(0, 1)``,
probabilities in ``[0, 1]``, entropy trust in ``[-1, 1]``, evidence
counts in ``[0, inf)``.

Contracts come from two places:

* the **seed table** below, covering the `repro` runtime surface;
* per-module ``__lint_contracts__`` declarations, so any analyzed
  project (including test fixtures) can add its own::

      __lint_contracts__ = {
          "poison": {"params": {"amount": "[0, 1]"}, "returns": "[0, 1]"},
      }

Interval syntax is mathematical: ``"(0, 1)"`` strict, ``"[0, inf)"``
half-open, ``"[-1, 1]"`` closed.  A contract with ``validates`` names
the parameters the function checks on behalf of its callers (and
returns, in order) -- passing a value through a validator counts as
guarding it for rule DI03.
"""

from __future__ import annotations

import ast
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.devtools.analysis.intervals import (
    Interval,
    NON_NEGATIVE,
    OPEN_UNIT,
    SYMMETRIC_UNIT,
    UNIT,
)

__all__ = [
    "FunctionContract",
    "ContractRegistry",
    "default_registry",
    "parse_interval",
    "NAME_DOMAINS",
]


def parse_interval(text: str) -> Interval:
    """Parse ``"(0, 1)"`` / ``"[0, inf)"`` style interval notation."""
    text = text.strip()
    if len(text) < 5 or text[0] not in "([" or text[-1] not in ")]":
        raise ValueError(f"bad interval syntax: {text!r}")
    lo_open = text[0] == "("
    hi_open = text[-1] == ")"
    parts = text[1:-1].split(",")
    if len(parts) != 2:
        raise ValueError(f"bad interval syntax: {text!r}")

    def _bound(raw: str) -> float:
        raw = raw.strip()
        if raw in ("inf", "+inf"):
            return math.inf
        if raw == "-inf":
            return -math.inf
        return float(raw)

    return Interval(_bound(parts[0]), _bound(parts[1]), lo_open, hi_open)


@dataclass(frozen=True)
class FunctionContract:
    """Domain contract for one function or method.

    Attributes:
        name: dotted path -- ``pkg.module.func`` or
            ``pkg.module.Class.method``.
        params: parameter name -> required domain.
        returns: domain of the return value, if contracted.
        validates: parameters this function *checks* for its callers
            (raising on violation) and returns, in declaration order.
        applies_to_overrides: apply the same contract to subclass
            overrides of the named method.
    """

    name: str
    params: Tuple[Tuple[str, Interval], ...] = ()
    returns: Optional[Interval] = None
    validates: Tuple[str, ...] = ()
    applies_to_overrides: bool = False

    @property
    def param_map(self) -> Dict[str, Interval]:
        return dict(self.params)

    def describe(self) -> str:
        parts = []
        for pname, domain in self.params:
            parts.append(f"{pname} in {domain}")
        if self.returns is not None:
            parts.append(f"returns {domain_str(self.returns)}")
        return ", ".join(parts)


def domain_str(interval: Interval) -> str:
    return str(interval)


#: Canonical domains for value names the DI rules recognise without an
#: explicit contract: any assignment target whose name contains one of
#: these words is expected to stay inside the domain.
NAME_DOMAINS: Dict[str, Interval] = {
    "trust": UNIT,
    "suspicion": NON_NEGATIVE,
}


def _c(
    name: str,
    params: Optional[Mapping[str, Interval]] = None,
    returns: Optional[Interval] = None,
    validates: Tuple[str, ...] = (),
    applies_to_overrides: bool = False,
) -> FunctionContract:
    return FunctionContract(
        name=name,
        params=tuple(sorted((params or {}).items())),
        returns=returns,
        validates=validates,
        applies_to_overrides=applies_to_overrides,
    )


def _seed_contracts() -> List[FunctionContract]:
    """The built-in contract table for the repro runtime surface."""
    return [
        # -- beta trust (Section III-A) --------------------------------
        _c(
            "repro.trust.records.beta_trust",
            params={"successes": NON_NEGATIVE, "failures": NON_NEGATIVE},
            returns=OPEN_UNIT,
        ),
        _c("repro.trust.records.TrustRecord.trust", returns=OPEN_UNIT),
        _c("repro.trust.records.TrustRecord.forget", params={"factor": UNIT}),
        _c("repro.trust.manager.TrustManager.trust", returns=OPEN_UNIT),
        _c("repro.trust.manager.TrustManager.blended_trust", returns=UNIT),
        # -- entropy trust (Sun et al.) --------------------------------
        _c(
            "repro.trust.entropy_trust.binary_entropy",
            params={"p": UNIT},
            returns=UNIT,
            validates=("p",),
        ),
        _c(
            "repro.trust.entropy_trust.entropy_trust",
            params={"p": UNIT},
            returns=SYMMETRIC_UNIT,
        ),
        _c(
            "repro.trust.entropy_trust.entropy_trust_inverse",
            params={"t": SYMMETRIC_UNIT},
            returns=UNIT,
            validates=("t",),
        ),
        _c(
            "repro.trust.entropy_trust.concatenate",
            params={
                "recommendation_trust": SYMMETRIC_UNIT,
                "remote_trust": SYMMETRIC_UNIT,
            },
            returns=SYMMETRIC_UNIT,
            validates=("recommendation_trust", "remote_trust"),
        ),
        _c(
            "repro.trust.entropy_trust.multipath",
            params={
                "recommendation_trusts": SYMMETRIC_UNIT,
                "remote_trusts": SYMMETRIC_UNIT,
            },
            returns=SYMMETRIC_UNIT,
        ),
        # -- aggregation (Section III-B.2) -----------------------------
        _c(
            "repro.aggregation.base.as_arrays",
            params={"values": UNIT, "trusts": UNIT},
            validates=("values", "trusts"),
        ),
        _c(
            "repro.aggregation.base.Aggregator.aggregate",
            params={"values": UNIT, "trusts": UNIT},
            returns=UNIT,
            applies_to_overrides=True,
        ),
        _c(
            "repro.aggregation.methods.ModifiedWeightedAverage.__init__",
            params={"floor": Interval(0.0, 1.0, False, True)},
        ),
    ]


#: Attribute domains keyed ``Class.attr`` -- used when the evaluator
#: sees ``obj.attr`` and can type ``obj`` to a project class.
_SEED_ATTRIBUTES: Dict[str, Interval] = {
    "TrustRecord.trust": OPEN_UNIT,
    "TrustRecord.successes": NON_NEGATIVE,
    "TrustRecord.failures": NON_NEGATIVE,
    "TrustManagerConfig.indirect_weight": UNIT,
    "TrustManagerConfig.detection_threshold": UNIT,
    "TrustManagerConfig.forgetting_factor": UNIT,
    "TrustManagerConfig.badness_weight": NON_NEGATIVE,
    "ModifiedWeightedAverage.floor": Interval(0.0, 1.0, False, True),
    "ThresholdedAverage.cutoff": Interval(0.0, 1.0, False, True),
}


class ContractRegistry:
    """All known contracts: the seed table plus module declarations."""

    def __init__(
        self,
        functions: Optional[Iterable[FunctionContract]] = None,
        attributes: Optional[Mapping[str, Interval]] = None,
    ) -> None:
        self.functions: Dict[str, FunctionContract] = {}
        for contract in functions if functions is not None else _seed_contracts():
            self.functions[contract.name] = contract
        self.attributes: Dict[str, Interval] = dict(
            attributes if attributes is not None else _SEED_ATTRIBUTES
        )

    # -- extension --------------------------------------------------------

    def add(self, contract: FunctionContract) -> None:
        self.functions[contract.name] = contract

    def extend_from_module(self, module_name: str, tree: ast.Module) -> None:
        """Collect ``__lint_contracts__`` declarations from a module."""
        for stmt in tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            if "__lint_contracts__" not in targets:
                continue
            try:
                spec = ast.literal_eval(stmt.value)
            except (ValueError, SyntaxError):
                continue
            if not isinstance(spec, dict):
                continue
            for func_name, entry in spec.items():
                contract = _contract_from_spec(f"{module_name}.{func_name}", entry)
                if contract is not None:
                    self.add(contract)

    # -- identity ---------------------------------------------------------

    def digest(self) -> str:
        """Stable hash of every contract -- part of the cache signature."""
        payload = {
            "functions": {
                name: {
                    "params": {p: str(d) for p, d in c.params},
                    "returns": str(c.returns) if c.returns else None,
                    "validates": list(c.validates),
                    "overrides": c.applies_to_overrides,
                }
                for name, c in sorted(self.functions.items())
            },
            "attributes": {k: str(v) for k, v in sorted(self.attributes.items())},
            "name_domains": {k: str(v) for k, v in sorted(NAME_DOMAINS.items())},
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


def _contract_from_spec(name: str, entry: object) -> Optional[FunctionContract]:
    if not isinstance(entry, dict):
        return None
    try:
        params = {
            str(pname): parse_interval(str(text))
            for pname, text in (entry.get("params") or {}).items()
        }
        returns_text = entry.get("returns")
        returns = parse_interval(str(returns_text)) if returns_text else None
    except ValueError:
        return None
    validates = tuple(str(v) for v in entry.get("validates", ()))
    return _c(name, params=params, returns=returns, validates=validates)


def default_registry() -> ContractRegistry:
    """A fresh registry seeded with the built-in repro contract table."""
    return ContractRegistry()
