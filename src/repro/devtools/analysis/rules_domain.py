"""DI: interprocedural domain-invariant rules.

The paper's quantities live in known numeric domains -- beta trust in
``(0, 1)``, probabilities and aggregated ratings in ``[0, 1]``,
entropy trust in ``[-1, 1]``, evidence counts in ``[0, inf)``.  These
rules check the code against the contract registry
(:mod:`repro.devtools.analysis.contracts`) with interval analysis:

* **DI01** -- a call site passes a provably out-of-domain value to a
  contracted parameter.
* **DI02** -- a contracted function can return a provably
  out-of-domain value, or a trust/suspicion-named variable is assigned
  one (the domain comes from ``NAME_DOMAINS``).
* **DI03** -- a contracted public function neither guards nor clamps a
  contracted parameter before using it (no boundary ``if``/``raise``,
  no ``np.clip``/``min``/``max``, not passed to a registered
  validator).

All three flag only what the interval engine can *prove*; an unknown
interval never fires, so the pass stays quiet on code it cannot
follow.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.analysis.contracts import (
    ContractRegistry,
    FunctionContract,
    NAME_DOMAINS,
    default_registry,
)
from repro.devtools.analysis.intervals import Evaluator, Interval, point
from repro.devtools.analysis.model import AnalysisModel, get_analysis
from repro.devtools.core import Finding, Rule, SourceFile, register
from repro.devtools.project import FunctionModel, ProjectModel

__all__ = ["ContractIndex", "get_contract_index"]

_INF = float("inf")


class ContractIndex:
    """Contracts resolved onto project functions (overrides included)."""

    def __init__(
        self,
        registry: ContractRegistry,
        project: ProjectModel,
        analysis: AnalysisModel,
    ) -> None:
        self.registry = registry
        self.project = project
        self.analysis = analysis
        self.by_qualname: Dict[str, FunctionContract] = {}
        for contract in registry.functions.values():
            qualname = analysis.resolve_dotted(contract.name)
            if qualname is None:
                continue
            self.by_qualname[qualname] = contract
            if contract.applies_to_overrides and "." in qualname and "::" not in qualname:
                base_class, method_name = qualname.split(".", 1)
                for other in project.classes.values():
                    if other.name == base_class:
                        continue
                    ancestry = {m.name for m in project.mro(other.name)}
                    override = f"{other.name}.{method_name}"
                    if base_class in ancestry and override in project.functions:
                        self.by_qualname.setdefault(override, contract)

    def contract_for(self, qualname: str) -> Optional[FunctionContract]:
        return self.by_qualname.get(qualname)

    def attribute_domain(self, class_name: str, attr: str) -> Optional[Interval]:
        for model in self.project.mro(class_name):
            domain = self.registry.attributes.get(f"{model.name}.{attr}")
            if domain is not None:
                return domain
        return None


def get_contract_index(
    project: ProjectModel, files: Sequence[SourceFile]
) -> ContractIndex:
    """The run's contract index (seed + module declarations), memoized."""
    cached = getattr(project, "_contract_index", None)
    if cached is None:
        analysis = get_analysis(project, files)
        registry = default_registry()
        for info in analysis.modules.values():
            registry.extend_from_module(info.module, info.file.tree)
        cached = ContractIndex(registry, project, analysis)
        project._contract_index = cached
    return cached


# ---------------------------------------------------------------------------
# Per-function interval analysis
# ---------------------------------------------------------------------------


def _contracted_params(fn: FunctionModel, contract: FunctionContract) -> Dict[str, Interval]:
    """Contracted parameter domains restricted to real parameters."""
    arg_names = {a.arg for a in fn.node.args.args + fn.node.args.kwonlyargs}
    return {
        name: domain for name, domain in contract.params if name in arg_names
    }


def _assigned_names(node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                out.update(_target_names(target))
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            out.update(_target_names(child.target))
        elif isinstance(child, ast.For):
            out.update(_target_names(child.target))
    return out


def _target_names(target: ast.AST) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: Set[str] = set()
        for element in target.elts:
            out.update(_target_names(element))
        return out
    return set()


def _bound_interval(op: ast.cmpop, value: float) -> Optional[Interval]:
    """The halfline a comparison against ``value`` implies (var on the left)."""
    if isinstance(op, ast.GtE):
        return Interval(value, _INF, False, True)
    if isinstance(op, ast.Gt):
        return Interval(value, _INF, True, True)
    if isinstance(op, ast.LtE):
        return Interval(-_INF, value, True, False)
    if isinstance(op, ast.Lt):
        return Interval(-_INF, value, True, True)
    return None


_NEGATED = {ast.Lt: ast.GtE, ast.LtE: ast.Gt, ast.Gt: ast.LtE, ast.GtE: ast.Lt}


def _compare_pairs(node: ast.Compare) -> List[Tuple[ast.expr, ast.cmpop, ast.expr]]:
    pairs = []
    left = node.left
    for op, right in zip(node.ops, node.comparators):
        pairs.append((left, op, right))
        left = right
    return pairs


def _numeric_const(node: ast.expr) -> Optional[float]:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _numeric_const(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None


def _constraints_true(test: ast.expr) -> Dict[str, Interval]:
    """Name -> halfline constraints implied by ``test`` being true."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _constraints_false(test.operand)
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        merged: Dict[str, Interval] = {}
        for value in test.values:
            _merge_constraints(merged, _constraints_true(value))
        return merged
    if isinstance(test, ast.Compare):
        merged = {}
        for left, op, right in _compare_pairs(test):
            constraint = _pair_constraint(left, op, right)
            if constraint is not None:
                _merge_constraints(merged, dict([constraint]))
        return merged
    return {}


def _constraints_false(test: ast.expr) -> Dict[str, Interval]:
    """Constraints implied by ``test`` being false (the guard fell through)."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _constraints_true(test.operand)
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        merged: Dict[str, Interval] = {}
        for value in test.values:
            _merge_constraints(merged, _constraints_false(value))
        return merged
    if isinstance(test, ast.Compare):
        pairs = _compare_pairs(test)
        if len(pairs) != 1:
            # not (a <= x <= b) is a disjunction; no single refinement.
            return {}
        left, op, right = pairs[0]
        negated_op = _NEGATED.get(type(op))
        if negated_op is None:
            return {}
        constraint = _pair_constraint(left, negated_op(), right)
        return dict([constraint]) if constraint is not None else {}
    return {}


def _pair_constraint(
    left: ast.expr, op: ast.cmpop, right: ast.expr
) -> Optional[Tuple[str, Interval]]:
    value = _numeric_const(right)
    if isinstance(left, ast.Name) and value is not None:
        bound = _bound_interval(op, value)
        return (left.id, bound) if bound is not None else None
    value = _numeric_const(left)
    if isinstance(right, ast.Name) and value is not None:
        flipped = {
            ast.Lt: ast.Gt, ast.LtE: ast.GtE, ast.Gt: ast.Lt, ast.GtE: ast.LtE,
        }.get(type(op))
        if flipped is None:
            return None
        bound = _bound_interval(flipped(), value)
        return (right.id, bound) if bound is not None else None
    return None


def _merge_constraints(into: Dict[str, Interval], new: Dict[str, Interval]) -> None:
    for name, interval in new.items():
        existing = into.get(name)
        if existing is None:
            into[name] = interval
        else:
            met = existing.meet(interval)
            if met is not None:
                into[name] = met


def _block_terminates(stmts: Sequence[ast.stmt]) -> bool:
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break)):
        return True
    if isinstance(last, ast.If):
        return (
            _block_terminates(last.body)
            and bool(last.orelse)
            and _block_terminates(last.orelse)
        )
    return False


class FunctionFlow:
    """Flow-sensitive interval walk over one function body.

    Maintains a name -> interval environment through assignments,
    branch joins, and guard refinements; evaluates return expressions
    and domain-named assignment targets as it goes.
    """

    def __init__(
        self,
        fn: FunctionModel,
        index: ContractIndex,
        files_by_relpath: Dict[str, SourceFile],
    ) -> None:
        self.fn = fn
        self.index = index
        self.project = index.project
        self.analysis = index.analysis
        self.typer = self.project.function_typer(fn)
        self.contract = index.contract_for(fn.qualname)
        self.returns: List[Tuple[int, Interval]] = []
        self.domain_writes: List[Tuple[int, str, Interval, Interval]] = []
        self.env: Dict[str, Interval] = {}
        if self.contract is not None:
            self.env.update(_contracted_params(fn, self.contract))
        self.evaluator = Evaluator(
            self.env,
            call_interval=self._call_interval,
            attribute_interval=self._attribute_interval,
        )

    # -- resolution hooks -------------------------------------------------

    def resolve_call(self, node: ast.Call) -> Optional[FunctionModel]:
        func = node.func
        if isinstance(func, ast.Name):
            qualname = f"{self.fn.file.relpath}::{func.id}"
            target = self.project.functions.get(qualname)
            if target is not None:
                return target
            info = self.analysis.modules.get(self.fn.file.relpath)
            if info is not None:
                imported = info.imported_names.get(func.id)
                if imported is not None:
                    relpath = self.analysis.module_file(imported[0])
                    if relpath is not None:
                        return self.project.functions.get(
                            f"{relpath}::{imported[1]}"
                        )
            return None
        if isinstance(func, ast.Attribute):
            base = self.typer(func.value)
            if base is not None:
                return self.project.method(base, func.attr)
            info = self.analysis.modules.get(self.fn.file.relpath)
            if info is not None and isinstance(func.value, ast.Name):
                alias = info.module_aliases.get(func.value.id)
                if alias is not None:
                    relpath = self.analysis.module_file(alias)
                    if relpath is not None:
                        return self.project.functions.get(
                            f"{relpath}::{func.attr}"
                        )
        return None

    def _call_interval(self, node: ast.Call) -> Optional[Interval]:
        target = self.resolve_call(node)
        if target is None:
            return None
        contract = self.index.contract_for(target.qualname)
        if contract is None or contract.returns is None:
            return None
        return contract.returns

    def _attribute_interval(self, node: ast.Attribute) -> Optional[Interval]:
        base = self.typer(node.value)
        if base is None:
            return None
        return self.index.attribute_domain(base, node.attr)

    # -- statement walk ---------------------------------------------------

    def run(self) -> None:
        self._walk(self.fn.node.body)

    def _walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                interval = self.evaluator.eval(stmt.value)
                if interval is not None:
                    self.returns.append((stmt.lineno, interval))
        elif isinstance(stmt, ast.Assign):
            value_interval = self.evaluator.eval(stmt.value)
            self._apply_validator_unpack(stmt)
            for target in stmt.targets:
                self._assign_target(target, stmt.value, value_interval, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value_interval = self.evaluator.eval(stmt.value)
            self._assign_target(stmt.target, stmt.value, value_interval, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            for name in _target_names(stmt.target):
                self.env.pop(name, None)
        elif isinstance(stmt, ast.If):
            self._if_statement(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            self._loop(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._try(stmt)
        # Other statements neither bind names nor return values.

    def _assign_target(
        self,
        target: ast.expr,
        value: ast.expr,
        interval: Optional[Interval],
        line: int,
    ) -> None:
        if isinstance(target, ast.Name):
            if interval is not None:
                self.env[target.id] = interval
            else:
                self.env.pop(target.id, None)
            self._check_domain_write(target.id, interval, line)
        elif isinstance(target, ast.Attribute):
            self._check_domain_write(target.attr, interval, line)
        elif isinstance(target, ast.Subscript):
            self._assign_target(target.value, value, interval, line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Element intervals are unknown unless a validator covers them.
            for element in target.elts:
                if isinstance(element, ast.Name) and element.id not in self.env:
                    self.env.pop(element.id, None)

    def _apply_validator_unpack(self, stmt: ast.Assign) -> None:
        """``values, trusts = as_arrays(values, trusts)`` re-seeds domains."""
        if len(stmt.targets) != 1 or not isinstance(stmt.value, ast.Call):
            return
        target = stmt.targets[0]
        callee = self.resolve_call(stmt.value)
        if callee is None:
            return
        contract = self.index.contract_for(callee.qualname)
        if contract is None or not contract.validates:
            return
        domains = contract.param_map
        if isinstance(target, ast.Tuple):
            names = [
                e.id if isinstance(e, ast.Name) else None for e in target.elts
            ]
            for validated, name in zip(contract.validates, names):
                if name is not None and validated in domains:
                    self.env[name] = domains[validated]
        elif isinstance(target, ast.Name) and len(contract.validates) == 1:
            validated = contract.validates[0]
            if validated in domains:
                self.env[target.id] = domains[validated]

    def _check_domain_write(
        self, name: str, interval: Optional[Interval], line: int
    ) -> None:
        if interval is None:
            return
        domain = _name_domain(name)
        if domain is None:
            return
        if not interval.within(domain):
            self.domain_writes.append((line, name, interval, domain))

    def _if_statement(self, stmt: ast.If) -> None:
        before = dict(self.env)
        body_env = dict(before)
        _merge_constraints_into_env(body_env, _constraints_true(stmt.test))
        self.env.clear()
        self.env.update(body_env)
        self._walk(stmt.body)
        body_after = dict(self.env)
        orelse_env = dict(before)
        _merge_constraints_into_env(orelse_env, _constraints_false(stmt.test))
        self.env.clear()
        self.env.update(orelse_env)
        self._walk(stmt.orelse)
        orelse_after = dict(self.env)

        body_done = _block_terminates(stmt.body)
        orelse_done = bool(stmt.orelse) and _block_terminates(stmt.orelse)
        self.env.clear()
        if body_done and not orelse_done:
            self.env.update(orelse_after)
        elif orelse_done and not body_done:
            self.env.update(body_after)
        elif body_done and orelse_done:
            self.env.update(before)
        else:
            self.env.update(_join_envs(body_after, orelse_after))

    def _loop(self, stmt: ast.stmt) -> None:
        assigned = _assigned_names(stmt)
        for name in assigned:
            self.env.pop(name, None)
        before = dict(self.env)
        self._walk(stmt.body)  # type: ignore[attr-defined]
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            self._walk(orelse)
        # Loop may run zero times: anything it assigned is unknown after.
        self.env.clear()
        self.env.update(before)

    def _try(self, stmt: ast.Try) -> None:
        assigned = _assigned_names(stmt)
        before = {k: v for k, v in self.env.items() if k not in assigned}
        self._walk(stmt.body)
        for handler in stmt.handlers:
            self.env.clear()
            self.env.update(before)
            self._walk(handler.body)
        self.env.clear()
        self.env.update(before)
        self._walk(stmt.finalbody)


def _join_envs(
    a: Dict[str, Interval], b: Dict[str, Interval]
) -> Dict[str, Interval]:
    out: Dict[str, Interval] = {}
    for name in set(a) & set(b):
        out[name] = a[name].hull(b[name])
    return out


def _merge_constraints_into_env(
    env: Dict[str, Interval], constraints: Dict[str, Interval]
) -> None:
    for name, bound in constraints.items():
        existing = env.get(name)
        if existing is None:
            env[name] = bound
        else:
            met = existing.meet(bound)
            if met is not None:
                env[name] = met


def _name_domain(name: str) -> Optional[Interval]:
    for word in name.lower().split("_"):
        domain = NAME_DOMAINS.get(word)
        if domain is None and word.endswith("s"):
            domain = NAME_DOMAINS.get(word[:-1])
        if domain is not None:
            return domain
    return None


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@register
class OutOfDomainArgument(Rule):
    """DI01: a call site passes a provably out-of-domain argument."""

    id = "DI01"
    name = "out-of-domain argument"
    rationale = (
        "Contracted parameters (trust, probabilities, evidence counts) "
        "must receive values inside their declared domain; a provably "
        "out-of-domain argument is a bug at the call site."
    )
    scope = "cone"

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        index = get_contract_index(project, files)
        emit = {file.relpath for file in files}
        by_relpath = {file.relpath: file for file in files}
        for fn in project.functions.values():
            if fn.file.relpath not in emit:
                continue
            flow = FunctionFlow(fn, index, by_relpath)
            # Entry-env argument evaluation is only sound for names the
            # function never rebinds.
            for name in _assigned_names(fn.node):
                flow.env.pop(name, None)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                target = flow.resolve_call(node)
                if target is None:
                    continue
                contract = index.contract_for(target.qualname)
                if contract is None or not contract.params:
                    continue
                for param, arg in _bind_arguments(target, node):
                    domain = contract.param_map.get(param)
                    if domain is None:
                        continue
                    interval = flow.evaluator.eval(arg)
                    if interval is not None and not interval.within(domain):
                        yield self.finding(
                            fn.file,
                            arg.lineno,
                            f"call to {target.qualname}: argument "
                            f"{param!r} is {interval}, outside its "
                            f"contracted domain {domain}",
                        )


def _bind_arguments(
    target: FunctionModel, call: ast.Call
) -> List[Tuple[str, ast.expr]]:
    """(param name, argument expression) pairs for a call site."""
    params = [a.arg for a in target.node.args.args]
    if params and params[0] in ("self", "cls"):
        # Bound-method calls don't pass the receiver positionally; plain
        # function-style calls (Class.method(obj, ...)) are rare enough
        # to skip rather than misbind.
        if isinstance(call.func, ast.Attribute):
            params = params[1:]
        else:
            return []
    out: List[Tuple[str, ast.expr]] = []
    for param, arg in zip(params, call.args):
        if isinstance(arg, ast.Starred):
            break
        out.append((param, arg))
    for keyword in call.keywords:
        if keyword.arg is not None:
            out.append((keyword.arg, keyword.value))
    return out


@register
class OutOfDomainReturn(Rule):
    """DI02: provably out-of-domain return or domain-named write."""

    id = "DI02"
    name = "out-of-domain value"
    rationale = (
        "A contracted function must return values inside its declared "
        "domain, and trust/suspicion-named state must stay inside the "
        "canonical domain for that quantity."
    )
    scope = "cone"

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        index = get_contract_index(project, files)
        emit = {file.relpath for file in files}
        by_relpath = {file.relpath: file for file in files}
        for fn in project.functions.values():
            if fn.file.relpath not in emit:
                continue
            flow = FunctionFlow(fn, index, by_relpath)
            flow.run()
            contract = flow.contract
            if contract is not None and contract.returns is not None:
                for line, interval in flow.returns:
                    if not interval.within(contract.returns):
                        yield self.finding(
                            fn.file,
                            line,
                            f"{fn.qualname} returns {interval}, outside "
                            f"its contracted domain {contract.returns}",
                        )
            for line, name, interval, domain in flow.domain_writes:
                yield self.finding(
                    fn.file,
                    line,
                    f"{name!r} is assigned {interval}, outside the "
                    f"canonical domain {domain} for that quantity",
                )


@register
class UnguardedDomainParameter(Rule):
    """DI03: contracted parameter used without any boundary guard."""

    id = "DI03"
    name = "unguarded domain parameter"
    rationale = (
        "Functions with contracted parameters are domain boundaries: "
        "they must validate (raise), clamp (np.clip/min/max), or "
        "delegate to a registered validator before using the value."
    )
    scope = "cone"

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        index = get_contract_index(project, files)
        emit = {file.relpath for file in files}
        for fn in project.functions.values():
            if fn.file.relpath not in emit:
                continue
            if fn.node.name.startswith("_"):
                continue
            contract = index.contract_for(fn.qualname)
            if contract is None:
                continue
            domains = _contracted_params(fn, contract)
            if not domains:
                continue
            flow = FunctionFlow(fn, index, {})
            guarded = _guarded_params(fn, flow, index)
            for param in sorted(domains):
                if param in guarded:
                    continue
                if not _param_used(fn, param):
                    continue
                yield self.finding(
                    fn.file,
                    fn.node.lineno,
                    f"{fn.qualname} uses parameter {param!r} (domain "
                    f"{domains[param]}) without a boundary guard, clamp, "
                    f"or validator call",
                )


def _is_guard_if(node: ast.If) -> bool:
    """An ``if`` that raises on a numeric boundary violation."""
    raises = any(isinstance(child, ast.Raise) for child in ast.walk(node))
    if not raises:
        return False
    for child in ast.walk(node.test):
        if isinstance(child, ast.Compare):
            ops_ok = all(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in child.ops
            )
            operands = [child.left] + list(child.comparators)
            if ops_ok and any(_numeric_const(o) is not None for o in operands):
                return True
    return False


_CLAMP_CALLS = {"np.clip", "min", "max", "np.minimum", "np.maximum"}


def _guarded_params(
    fn: FunctionModel, flow: FunctionFlow, index: ContractIndex
) -> Set[str]:
    from repro.devtools.analysis.intervals import _callable_name

    params = {a.arg for a in fn.node.args.args + fn.node.args.kwonlyargs}
    guarded: Set[str] = set()
    # Single-source aliases: ``recs = np.asarray(param, ...)`` makes a
    # guard on ``recs`` cover ``param``.
    aliases: Dict[str, str] = {}
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            sources = {
                child.id
                for child in ast.walk(node.value)
                if isinstance(child, ast.Name)
            } & params
            if len(sources) == 1:
                aliases[node.targets[0].id] = next(iter(sources))

    def _covers(names: Set[str]) -> Set[str]:
        return {aliases.get(n, n) for n in names} & params

    # (a) a top-level statement containing a boundary guard covers every
    # parameter it mentions (handles loop-based validators).
    for stmt in fn.node.body:
        has_guard = any(
            isinstance(child, ast.If) and _is_guard_if(child)
            for child in ast.walk(stmt)
        )
        if not has_guard:
            continue
        mentioned = {
            child.id
            for child in ast.walk(stmt)
            if isinstance(child, ast.Name)
        }
        guarded |= _covers(mentioned)
    def _clamp_operands(call: ast.Call) -> Set[str]:
        # Names fed to a clamp, through nesting: ``min(max(x, 0), 1)``.
        if _callable_name(call.func) not in _CLAMP_CALLS:
            return set()
        names: Set[str] = set()
        for arg in call.args:
            if isinstance(arg, ast.Name):
                names.add(arg.id)
            elif isinstance(arg, ast.Call):
                names |= _clamp_operands(arg)
        return names

    for node in ast.walk(fn.node):
        # (b) reassignment through a clamp: ``x = np.clip(x, ...)``.
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            clamped = _clamp_operands(node.value)
            if clamped:
                for target in node.targets:
                    guarded |= _covers(_target_names(target) & clamped)
        # (c) passed whole to a registered validator at a validated slot.
        if isinstance(node, ast.Call):
            target_fn = flow.resolve_call(node)
            if target_fn is None:
                continue
            contract = index.contract_for(target_fn.qualname)
            if contract is None or not contract.validates:
                continue
            for param, arg in _bind_arguments(target_fn, node):
                if (
                    param in contract.validates
                    and isinstance(arg, ast.Name)
                    and arg.id in params
                ):
                    guarded.add(arg.id)
    return guarded


def _param_used(fn: FunctionModel, param: str) -> bool:
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Name) and node.id == param and isinstance(
            node.ctx, ast.Load
        ):
            return True
    return False
