"""Project-wide symbol table, import DAG, and call resolution.

Built on top of the per-file parse layer (:class:`SourceFile`) and the
class/function index (:class:`ProjectModel`), this module adds what the
interprocedural rule families need:

* a **module table** -- dotted module name per file, the absolute
  module names each file imports (relative imports resolved), and the
  per-file reference index (names read, attributes accessed, words in
  string constants) that the dead-export rules consume;
* the **import DAG** restricted to project-internal edges, with
  dependents/dependencies closures (the incremental cache invalidates
  exactly the reverse closure of a changed file);
* **cross-module call resolution** extending the per-file resolver:
  ``from pkg.mod import helper; helper()`` resolves to
  ``pkg/mod.py::helper``, ``SomeClass.method(...)`` through an imported
  class resolves to the method, and constructor calls resolve to
  ``__init__`` (plus ``__post_init__`` for dataclasses) so exception
  flow sees validation raises.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.core import SourceFile
from repro.devtools.project import CallEvent, FunctionModel, ProjectModel

__all__ = [
    "AnalysisModel",
    "ModuleInfo",
    "build_analysis",
    "get_analysis",
    "module_name_for",
]

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def module_name_for(relpath: str) -> str:
    """Dotted module name for a project-relative path.

    ``src/repro/trust/records.py -> repro.trust.records``; a leading
    ``src`` component is dropped, ``__init__`` maps to its package.
    """
    parts = list(Path(relpath).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    parts[-1] = Path(parts[-1]).stem
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class ImportEdge:
    """One import statement target: absolute module name + location.

    ``lazy`` marks imports inside a function body -- they still create
    a dependency for cache invalidation, but they are the accepted way
    to break an import cycle, so cycle detection ignores them.
    """

    module: str
    line: int
    lazy: bool = False


@dataclass
class Definition:
    """A top-level ``def`` or ``class`` in one module."""

    name: str
    line: int
    kind: str  # "function" | "class"
    decorated: bool


@dataclass
class ModuleInfo:
    """Everything module-level the analysis knows about one file."""

    file: SourceFile
    module: str
    import_edges: List[ImportEdge] = field(default_factory=list)
    #: local name -> (source module, original name) for ``from m import x``.
    imported_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: local alias -> module name for ``import m [as a]`` (and submodule
    #: imports via ``from pkg import mod``).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: names imported under a different local alias -- the original name
    #: counts as referenced even though it never appears as a Name.
    aliased_origs: Set[str] = field(default_factory=set)
    all_names: List[Tuple[str, int]] = field(default_factory=list)
    definitions: List[Definition] = field(default_factory=list)
    #: every Name id and Attribute attr read anywhere in the module.
    name_refs: Set[str] = field(default_factory=set)
    #: identifier words inside string constants outside ``__all__``.
    string_words: Set[str] = field(default_factory=set)
    #: (source module, original name) pairs imported inside functions.
    lazy_imported: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def exported(self) -> Set[str]:
        return {name for name, _ in self.all_names}


def _collect_module_info(file: SourceFile) -> ModuleInfo:
    module = module_name_for(file.relpath)
    info = ModuleInfo(file=file, module=module)
    all_string_ids: Set[int] = set()

    for node in file.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        info.all_names.append((element.value, element.lineno))
                        all_string_ids.add(id(element))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            info.definitions.append(
                Definition(
                    name=node.name,
                    line=node.lineno,
                    kind="class" if isinstance(node, ast.ClassDef) else "function",
                    decorated=bool(node.decorator_list),
                )
            )

    lazy_nodes: Set[int] = set()
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lazy_nodes.update(id(child) for child in ast.walk(node))

    for node in ast.walk(file.tree):
        lazy = id(node) in lazy_nodes
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.import_edges.append(
                    ImportEdge(alias.name, node.lineno, lazy=lazy)
                )
                local = alias.asname or alias.name.split(".")[0]
                info.module_aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = module.split(".") if module else []
                # level 1 = the containing package; __init__ modules
                # already map to their package via module_name_for.
                if file.relpath.endswith("__init__.py"):
                    base_parts = base_parts[: len(base_parts) - (node.level - 1)]
                else:
                    base_parts = base_parts[: len(base_parts) - node.level]
                base = ".".join(base_parts)
                source = f"{base}.{node.module}" if node.module else base
            else:
                source = node.module or ""
            info.import_edges.append(
                ImportEdge(source, node.lineno, lazy=lazy)
            )
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imported_names[local] = (source, alias.name)
                if lazy:
                    info.lazy_imported.add((source, alias.name))
                if alias.asname and alias.asname != alias.name:
                    info.aliased_origs.add(alias.name)
        elif isinstance(node, ast.Name):
            info.name_refs.add(node.id)
        elif isinstance(node, ast.Attribute):
            info.name_refs.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if id(node) not in all_string_ids:
                info.string_words.update(_WORD_RE.findall(node.value))
    return info


class AnalysisModel:
    """The whole-program view shared by the DI/AR/EX/DX rules."""

    def __init__(
        self,
        files: Sequence[SourceFile],
        root: Path,
        project: ProjectModel,
    ) -> None:
        self.root = root
        self.project = project
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_module_name: Dict[str, str] = {}
        for file in files:
            info = _collect_module_info(file)
            self.modules[file.relpath] = info
            if info.module:
                self.by_module_name[info.module] = file.relpath
        self._import_graph: Dict[str, Set[str]] = {}
        self._eager_graph: Dict[str, Set[str]] = {}
        for relpath, info in self.modules.items():
            deps: Set[str] = set()
            eager: Set[str] = set()
            for edge in info.import_edges:
                target = self.module_file(edge.module)
                if target is not None and target != relpath:
                    deps.add(target)
                    if not edge.lazy:
                        eager.add(target)
            # ``from pkg import mod`` pulls in pkg/mod.py as well.
            for source, orig in info.imported_names.values():
                target = self.module_file(f"{source}.{orig}")
                if target is not None and target != relpath:
                    deps.add(target)
                    if (source, orig) not in info.lazy_imported:
                        eager.add(target)
                    info.module_aliases.setdefault(orig, f"{source}.{orig}")
            self._import_graph[relpath] = deps
            self._eager_graph[relpath] = eager

    # -- import DAG -------------------------------------------------------

    def module_file(self, module: str) -> Optional[str]:
        """Project file providing a module, or None for external ones."""
        return self.by_module_name.get(module)

    def dependencies(self, relpath: str) -> Set[str]:
        return set(self._import_graph.get(relpath, ()))

    def transitive_imports(self, relpath: str) -> Set[str]:
        """Every project file reachable through imports (exclusive)."""
        seen: Set[str] = set()
        queue = list(self._import_graph.get(relpath, ()))
        while queue:
            dep = queue.pop()
            if dep in seen:
                continue
            seen.add(dep)
            queue.extend(self._import_graph.get(dep, ()))
        return seen

    def dependents_closure(self, seeds: Iterable[str]) -> Set[str]:
        """Seeds plus every file that (transitively) imports them."""
        reverse: Dict[str, Set[str]] = {}
        for src, deps in self._import_graph.items():
            for dep in deps:
                reverse.setdefault(dep, set()).add(src)
        out: Set[str] = set()
        queue = list(seeds)
        while queue:
            relpath = queue.pop()
            if relpath in out:
                continue
            out.add(relpath)
            queue.extend(reverse.get(relpath, ()))
        return out

    def import_cycles(self) -> List[List[str]]:
        """Strongly connected components of size > 1 (Tarjan).

        Only eager (module-body) imports participate: a lazy import
        inside a function is the sanctioned way to break a cycle.
        """
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        cycles: List[List[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for dep in sorted(self._eager_graph.get(node, ())):
                if dep not in index:
                    strongconnect(dep)
                    lowlink[node] = min(lowlink[node], lowlink[dep])
                elif dep in on_stack:
                    lowlink[node] = min(lowlink[node], index[dep])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cycles.append(sorted(component))

        for node in sorted(self._eager_graph):
            if node not in index:
                strongconnect(node)
        return cycles

    # -- contract / call resolution ---------------------------------------

    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """Map a contract's dotted name to a project function qualname."""
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            relpath = self.module_file(module)
            if relpath is None:
                continue
            rest = parts[split:]
            if len(rest) == 1:
                qualname = f"{relpath}::{rest[0]}"
                if qualname in self.project.functions:
                    return qualname
            elif len(rest) == 2:
                qualname = f"{rest[0]}.{rest[1]}"
                fn = self.project.functions.get(qualname)
                if fn is not None and fn.file.relpath == relpath:
                    return qualname
            return None
        return None

    def resolve_call_targets(
        self, fn: FunctionModel, call: CallEvent
    ) -> List[str]:
        """Every project function a call site may enter.

        Extends the per-file resolver with imports and constructors;
        an empty list means "unresolvable" (treated as non-raising and
        contract-free -- documented in docs/LINT.md).
        """
        if call.callee is not None:
            return [call.callee]
        info = self.modules.get(fn.file.relpath)
        if info is None:
            return []
        parts = call.func_src.split(".")
        if len(parts) == 1:
            name = parts[0]
            local = f"{fn.file.relpath}::{name}"
            if local in self.project.functions:
                return [local]
            imported = info.imported_names.get(name)
            if imported is not None:
                source, orig = imported
                target = self.module_file(source)
                if target is not None:
                    qualname = f"{target}::{orig}"
                    if qualname in self.project.functions:
                        return [qualname]
                if orig in self.project.classes:
                    return self._constructor_targets(orig)
            if name in self.project.classes:
                return self._constructor_targets(name)
            return []
        if len(parts) == 2:
            prefix, attr = parts
            alias = info.module_aliases.get(prefix)
            if alias is not None:
                target = self.module_file(alias)
                if target is not None:
                    qualname = f"{target}::{attr}"
                    if qualname in self.project.functions:
                        return [qualname]
                return []
            class_name = prefix
            imported = info.imported_names.get(prefix)
            if imported is not None and imported[1] in self.project.classes:
                class_name = imported[1]
            if class_name in self.project.classes:
                method = self.project.method(class_name, attr)
                if method is not None:
                    return [method.qualname]
        return []

    def _constructor_targets(self, class_name: str) -> List[str]:
        out: List[str] = []
        for method_name in ("__init__", "__post_init__"):
            method = self.project.method(class_name, method_name)
            if method is not None:
                out.append(method.qualname)
        return out


def build_analysis(
    files: Sequence[SourceFile], root: Path, project: ProjectModel
) -> AnalysisModel:
    return AnalysisModel(files, root, project)


def get_analysis(project: ProjectModel, files: Sequence[SourceFile]) -> AnalysisModel:
    """The run's :class:`AnalysisModel`, built once and memoized.

    Built over the whole lint universe even when a rule receives only a
    subset of files to emit for (the incremental runner stashes the
    full set on the project as ``_all_files``).
    """
    cached = getattr(project, "_analysis_model", None)
    if cached is None:
        universe = getattr(project, "_all_files", None) or files
        cached = build_analysis(universe, project.root, project)
        project._analysis_model = cached
    return cached
