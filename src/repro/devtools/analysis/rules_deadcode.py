"""DX: dead-export and dead-definition detection.

The public surface is declared in ``__all__`` lists and kept honest by
AD01 (tested + documented); these rules close the other side of the
loop -- names that are *declared* public but that nothing actually
uses, and private top-level definitions nothing references at all.

* **DX01** -- an ``__all__`` entry whose name is referenced nowhere:
  not by any linted module (its own included -- the definition and the
  ``__all__`` string itself do not count), not in string constants,
  and not by any external consumer (tests, benchmarks, examples).
  ``tests/test_api_surface.py`` is deliberately *excluded* from the
  reference scan: it enumerates every export by construction, so it
  would keep any dead export alive.
* **DX02** -- a non-exported top-level function or class with zero
  references anywhere (modules, string constants, tests, benchmarks,
  examples).  Decorated definitions are exempt (registration
  decorators are a use), as are dunder names and ``main``.

A bare ``from x import y`` does not count as a reference for DX01 --
re-export chains must bottom out in real usage -- but an ``import ...
as`` alias does (the rename is deliberate).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterator, List, Set

from repro.devtools.analysis.model import AnalysisModel, get_analysis
from repro.devtools.core import Finding, Rule, SourceFile, register
from repro.devtools.project import ProjectModel

__all__ = ["external_reference_files"]

#: Project-root-relative directories scanned for external references.
_EXTERNAL_ROOTS = ("tests", "benchmarks", "examples")

#: Enumerates every export by design; useless as liveness evidence.
_SURFACE_TEST = "tests/test_api_surface.py"

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def external_reference_files(project_root: Path) -> List[Path]:
    """Every external file whose contents feed the DX liveness scan."""
    out: List[Path] = []
    for root in _EXTERNAL_ROOTS:
        base = project_root / root
        if base.is_dir():
            out.extend(
                p
                for p in sorted(base.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
    return out


class _ReferenceIndex:
    """Name liveness evidence, built once per run and memoized."""

    def __init__(self, analysis: AnalysisModel, project_root: Path) -> None:
        self.analysis = analysis
        #: relpath -> names that file references in code.
        self.code_refs: Dict[str, Set[str]] = {}
        #: names appearing in string constants of any linted file.
        self.string_refs: Set[str] = set()
        #: names any linted file exports through ``__all__``.
        self.exported_anywhere: Set[str] = set()
        for relpath, info in analysis.modules.items():
            self.code_refs[relpath] = info.name_refs | info.aliased_origs
            self.string_refs |= info.string_words
            self.exported_anywhere |= info.exported
        #: words in external consumers, split by file for the DX01
        #: surface-test exclusion.
        self.external_words: Dict[str, Set[str]] = {}
        for path in external_reference_files(project_root):
            try:
                relpath = path.relative_to(project_root).as_posix()
                text = path.read_text(encoding="utf-8")
            except (OSError, ValueError):
                continue
            self.external_words[relpath] = set(_WORD_RE.findall(text))

    def referenced_in_code(self, name: str) -> bool:
        return any(name in refs for refs in self.code_refs.values())

    def referenced_externally(self, name: str, include_surface_test: bool) -> bool:
        return any(
            name in words
            for relpath, words in self.external_words.items()
            if include_surface_test or relpath != _SURFACE_TEST
        )


def _reference_index(
    project: ProjectModel, files: List[SourceFile]
) -> _ReferenceIndex:
    cached = getattr(project, "_dx_reference_index", None)
    if cached is None:
        analysis = get_analysis(project, files)
        cached = _ReferenceIndex(analysis, project.root)
        project._dx_reference_index = cached
    return cached


class _DxRule(Rule):
    scope = "global"

    def external_inputs(self, project_root: Path) -> List[Path]:
        return external_reference_files(project_root)


@register
class DeadExport(_DxRule):
    """DX01: an ``__all__`` entry nothing outside the module uses."""

    id = "DX01"
    name = "dead export"
    rationale = (
        "A name in __all__ that nothing references -- not code, not "
        "strings, not tests, benchmarks, or examples -- is API surface "
        "that must be tested and documented (AD01) but delivers "
        "nothing; delete it."
    )

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        index = _reference_index(project, files)
        for file in files:
            info = index.analysis.modules.get(file.relpath)
            if info is None:
                continue
            for name, line in info.all_names:
                if index.referenced_in_code(name):
                    continue
                if name in index.string_refs:
                    continue
                if index.referenced_externally(name, include_surface_test=False):
                    continue
                yield self.finding(
                    file,
                    line,
                    f"exported name `{name}` is referenced nowhere -- "
                    "no module, string, test, benchmark, or example "
                    "uses it; delete it (and its __all__ entries)",
                )


@register
class DeadDefinition(_DxRule):
    """DX02: a top-level definition with zero references anywhere."""

    id = "DX02"
    name = "dead definition"
    rationale = (
        "A top-level function or class that nothing references -- not "
        "code, not strings, not tests or examples -- is dead weight "
        "that still costs review and refactoring effort."
    )

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        index = _reference_index(project, files)
        for file in files:
            info = index.analysis.modules.get(file.relpath)
            if info is None:
                continue
            for definition in info.definitions:
                name = definition.name
                if (
                    definition.decorated
                    or name.startswith("__")
                    or name == "main"
                    or name in index.exported_anywhere
                ):
                    continue
                if any(name in refs for refs in index.code_refs.values()):
                    continue
                if name in index.string_refs:
                    continue
                if index.referenced_externally(name, include_surface_test=True):
                    continue
                yield self.finding(
                    file,
                    definition.line,
                    f"{definition.kind} `{name}` is referenced nowhere "
                    "(code, strings, tests, benchmarks, examples); "
                    "delete it or export and use it",
                )
