"""Incremental analysis cache: skip re-analyzing unchanged files.

The cache is a single JSON manifest under ``.lint-cache/`` keyed by
content hashes, never mtimes, so it survives checkouts and touch(1):

* a **signature** covering the cache format version, the executed rule
  ids, the contract-registry digest, and the lint universe (the sorted
  relative paths of every linted file).  Any mismatch discards the
  manifest wholesale -- different rule sets or file sets never share
  entries;
* per linted file: its content hash, the content hashes of its
  **transitive import cone** at analysis time, and the raw findings
  each rule produced for it (suppression already resolved -- it is a
  function of the file text -- but baselining is recomputed fresh
  every run);
* the content hashes of every **external input** the executed rules
  declared (API guide, surface test, DX reference roots).

Validity is per file: an entry is reusable iff its own hash and every
cone hash still match the current tree.  A changed file therefore
invalidates exactly itself plus its reverse import closure -- the
definition of "only dependents re-analyze".  Recording the cone
*transitively* keeps this sound: any change that could alter a file's
cone necessarily changes some file inside the old cone.

When nothing is invalid and no external input changed, the runner
reuses every finding without parsing a single file (the ``hit`` fast
path); otherwise it re-runs file- and cone-scoped rules over the
invalid files and global rules over everything (``partial``).  A
missing, corrupt, or signature-mismatched manifest is a ``cold`` run.
Writes are atomic (temp file + ``os.replace``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

__all__ = ["AnalysisCache", "CachePlan", "content_hash"]

_FORMAT_VERSION = 1
_MANIFEST_NAME = "analysis.json"


def content_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def compute_signature(
    rule_ids: List[str],
    contract_digest: str,
    universe: List[str],
    effects_digest: str = "",
) -> str:
    payload = {
        "format": _FORMAT_VERSION,
        "rules": sorted(rule_ids),
        "contracts": contract_digest,
        "effects": effects_digest,
        "universe": sorted(universe),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CachePlan:
    """What a run can reuse and what it must redo.

    Attributes:
        status: ``"cold"`` (no usable manifest), ``"hit"`` (everything
            reusable), or ``"partial"``.
        valid: relpath -> cached entry for files whose hash and whole
            import cone still match the tree.
        dirty: relpaths that must be re-analyzed, sorted.
        externals_changed: some rule's external input changed, so
            global rules must re-run even if no file did.
    """

    status: str
    valid: Dict[str, dict] = field(default_factory=dict)
    dirty: List[str] = field(default_factory=list)
    externals_changed: bool = True


class AnalysisCache:
    """The on-disk manifest plus the reuse computation."""

    def __init__(self, cache_dir: Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.manifest_path = self.cache_dir / _MANIFEST_NAME

    # -- I/O --------------------------------------------------------------

    def load(self, signature: str) -> Optional[dict]:
        """The manifest, or None when missing/corrupt/mismatched."""
        try:
            raw = self.manifest_path.read_text(encoding="utf-8")
            manifest = json.loads(raw)
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict):
            return None
        if manifest.get("format") != _FORMAT_VERSION:
            return None
        if manifest.get("signature") != signature:
            return None
        if not isinstance(manifest.get("files"), dict):
            return None
        return manifest

    def save(self, manifest: dict) -> None:
        """Atomically persist the manifest (best-effort on readonly FS)."""
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=".analysis-", suffix=".json.tmp", dir=str(self.cache_dir)
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(manifest, handle, sort_keys=True)
                # The manifest is deliberately NOT durable (no fsync, no
                # directory fsync): a torn or vanished manifest fails the
                # signature/JSON check on the next run and the cache goes
                # cold -- an optimisation lost, never data.  The atomic
                # rename only protects concurrent readers.
                os.replace(tmp_name, self.manifest_path)  # repro: lint-disable[DP01]
            finally:
                if os.path.exists(tmp_name):
                    try:
                        os.unlink(tmp_name)  # repro: lint-disable[DP01]
                    except OSError:
                        pass  # stale temp file is harmless
        except OSError:
            pass  # caching is an optimisation, never a failure mode

    # -- planning ---------------------------------------------------------

    def plan(
        self,
        signature: str,
        current: Mapping[str, str],
        externals: Mapping[str, str],
    ) -> CachePlan:
        """Split the universe into reusable and dirty files.

        Args:
            signature: this run's signature.
            current: relpath -> content hash of every file to lint.
            externals: relpath -> content hash of the executed rules'
                external inputs.
        """
        manifest = self.load(signature)
        if manifest is None:
            return CachePlan(
                status="cold", dirty=sorted(current), externals_changed=True
            )
        entries = manifest["files"]
        valid: Dict[str, dict] = {}
        dirty: List[str] = []
        for relpath, sha in current.items():
            entry = entries.get(relpath)
            if (
                isinstance(entry, dict)
                and entry.get("sha") == sha
                and all(
                    current.get(dep) == dep_sha
                    for dep, dep_sha in (entry.get("deps") or {}).items()
                )
            ):
                valid[relpath] = entry
            else:
                dirty.append(relpath)
        externals_changed = manifest.get("externals", {}) != dict(externals)
        if not dirty and not externals_changed:
            status = "hit"
        elif valid:
            status = "partial"
        else:
            status = "cold"
        return CachePlan(
            status=status,
            valid=valid,
            dirty=sorted(dirty),
            externals_changed=externals_changed,
        )

    @staticmethod
    def build_manifest(
        signature: str,
        current: Mapping[str, str],
        deps: Mapping[str, Mapping[str, str]],
        findings_by_file: Mapping[str, Mapping[str, List[dict]]],
        externals: Mapping[str, str],
    ) -> dict:
        """Assemble the manifest for :meth:`save`.

        Args:
            current: relpath -> content hash.
            deps: relpath -> {cone relpath -> content hash}.
            findings_by_file: relpath -> {rule id -> raw finding dicts}.
            externals: external input relpath -> content hash.
        """
        files = {}
        for relpath, sha in current.items():
            files[relpath] = {
                "sha": sha,
                "deps": dict(deps.get(relpath, {})),
                "findings": {
                    rule_id: list(items)
                    for rule_id, items in (
                        findings_by_file.get(relpath) or {}
                    ).items()
                    if items
                },
            }
        return {
            "format": _FORMAT_VERSION,
            "signature": signature,
            "externals": dict(externals),
            "files": files,
        }
