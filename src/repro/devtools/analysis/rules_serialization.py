"""SD: serialization-contract rules for state_dict/load_state pairs.

Every stateful component in the serving tier round-trips through a
``state_dict()`` / ``load_state()`` pair (snapshots embed them, crash
recovery replays them).  The contract has three legs the type system
cannot see, one rule each:

* **SD01** -- key symmetry.  (a) ``load_state`` strictly subscripting
  a key the paired ``state_dict`` never writes crashes on every
  snapshot the same process just wrote; (b) a written key that no
  method of the class ever reads is dead weight in every snapshot and
  usually means the load half was forgotten.
* **SD02** -- a ``"version"`` literal >= 2 in ``state_dict`` requires
  an explicit comparison against that version somewhere in the load
  path (or an ``*upgrade*`` helper) -- bumping the snapshot format
  without a registered upgrade path silently breaks recovery of every
  snapshot already on disk (the exact v1 -> v2 drift PR 6 fixed by
  hand).
* **SD03** -- keys declared in ``__effect_contracts__``
  ``state_keys_since`` with an introducing version >= 2 must be read
  with a default (``state.get(...)``), never strictly subscripted:
  older snapshots on disk simply do not have them.

Writes are collected from returned dict literals (including the
``out = {...}; out["k"] = ...; return out`` build-up idiom); reads are
string subscripts, ``.get("k")`` calls, and ``"k" in state`` tests.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.analysis.effects import get_effect_index
from repro.devtools.core import Finding, Rule, SourceFile, register
from repro.devtools.project import FunctionModel

__all__ = [
    "StateKeySymmetryRule",
    "VersionUpgradePathRule",
    "NewKeyDefaultRule",
]

#: The method-name pairs that form a serialization contract.
_PAIR_NAMES: Tuple[Tuple[str, str], ...] = (
    ("state_dict", "load_state"),
    ("_state_dict", "_load_state"),
)


def _dict_literal_keys(node: ast.AST) -> Optional[Dict[str, int]]:
    """String keys (with lines) of a dict literal, or None."""
    if not isinstance(node, ast.Dict):
        return None
    out: Dict[str, int] = {}
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            out.setdefault(key.value, key.lineno)
    return out


def _written_keys(fn: FunctionModel) -> Dict[str, int]:
    """Keys ``state_dict`` writes: returned dict literals, plus
    subscript assignments onto a returned local name."""
    writes: Dict[str, int] = {}
    returned_names: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Return) and node.value is not None:
            keys = _dict_literal_keys(node.value)
            if keys is not None:
                for key, line in keys.items():
                    writes.setdefault(key, line)
            elif isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)
    if returned_names:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id in returned_names
                ):
                    keys = _dict_literal_keys(node.value)
                    if keys is not None:
                        for key, line in keys.items():
                            writes.setdefault(key, line)
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in returned_names
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    writes.setdefault(target.slice.value, node.lineno)
    return writes


def _state_param(fn: FunctionModel) -> Optional[str]:
    """The state-mapping parameter of a load function."""
    args = fn.node.args
    names = [arg.arg for arg in list(args.posonlyargs) + list(args.args)]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names[0] if names else None


def _strict_reads(fn: FunctionModel, param: str) -> List[Tuple[str, int]]:
    """``param["key"]`` subscript *reads* (assignment targets excluded)."""
    stores: Set[int] = set()
    for node in ast.walk(fn.node):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            stores.update(id(sub) for sub in ast.walk(target))
    out: List[Tuple[str, int]] = []
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Subscript)
            and id(node) not in stores
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            out.append((node.slice.value, node.lineno))
    return out


def _read_keys_anywhere(methods: List[FunctionModel]) -> Set[str]:
    """Every string key any method reads: subscripts, ``.get``, ``in``."""
    keys: Set[str] = set()
    for fn in methods:
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                keys.add(node.slice.value)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                keys.add(node.args[0].value)
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                if isinstance(node.left, ast.Constant) and isinstance(
                    node.left.value, str
                ):
                    keys.add(node.left.value)
    return keys


def _class_pairs(project, relpaths: Set[str]):
    """(class name, dump fn, load fn) triples for classes in relpaths."""
    for class_name, model in sorted(project.classes.items()):
        if model.file.relpath not in relpaths:
            continue
        for dump_name, load_name in _PAIR_NAMES:
            dump = project.functions.get(f"{class_name}.{dump_name}")
            load = project.functions.get(f"{class_name}.{load_name}")
            if dump is None or load is None:
                continue
            yield class_name, dump, load


def _class_methods(project, class_name: str) -> List[FunctionModel]:
    prefix = f"{class_name}."
    return [
        fn
        for qualname, fn in project.functions.items()
        if qualname.startswith(prefix)
    ]


@register
class StateKeySymmetryRule(Rule):
    id = "SD01"
    name = "state-dict-key-symmetry"
    rationale = (
        "A load_state that strictly reads a key its state_dict never "
        "writes crashes on every snapshot this process wrote; a "
        "written key nothing reads means the load half was forgotten."
    )
    scope = "cone"

    def run(self, project, files: List[SourceFile]) -> Iterator[Finding]:
        emit = {file.relpath for file in files}
        by_relpath = {file.relpath: file for file in files}
        for class_name, dump, load in _class_pairs(project, emit):
            file = by_relpath[dump.file.relpath]
            writes = _written_keys(dump)
            param = _state_param(load)
            if writes and param:
                for key, line in _strict_reads(load, param):
                    if key not in writes:
                        yield self.finding(
                            file,
                            line,
                            f"{class_name}.{load.node.name} strictly "
                            f"reads key '{key}' that "
                            f"{class_name}.{dump.node.name} never "
                            "writes -- loading a fresh snapshot raises "
                            "KeyError",
                        )
            read_anywhere = _read_keys_anywhere(
                _class_methods(project, class_name)
            )
            for key, line in sorted(writes.items(), key=lambda kv: kv[1]):
                if key not in read_anywhere:
                    yield self.finding(
                        file,
                        line,
                        f"{class_name}.{dump.node.name} writes key "
                        f"'{key}' that no method of {class_name} ever "
                        "reads -- dead snapshot weight, or a forgotten "
                        "load path",
                    )


@register
class VersionUpgradePathRule(Rule):
    id = "SD02"
    name = "version-bump-upgrade-path"
    rationale = (
        "Bumping the snapshot 'version' literal without a load-side "
        "comparison against the new version silently breaks recovery "
        "of every snapshot already on disk."
    )
    scope = "cone"

    def run(self, project, files: List[SourceFile]) -> Iterator[Finding]:
        emit = {file.relpath for file in files}
        by_relpath = {file.relpath: file for file in files}
        for class_name, dump, load in _class_pairs(project, emit):
            writes = _written_keys(dump)
            if "version" not in writes:
                continue
            version = self._version_literal(dump)
            if version is None or version < 2:
                continue
            checkers = [load] + [
                fn
                for fn in _class_methods(project, class_name)
                if "upgrade" in fn.node.name.lower()
            ]
            if any(self._compares_against(fn, version) for fn in checkers):
                continue
            file = by_relpath[dump.file.relpath]
            yield self.finding(
                file,
                writes["version"],
                f"{class_name}.{dump.node.name} writes snapshot "
                f"version {version} but neither "
                f"{class_name}.{load.node.name} nor any *upgrade* "
                f"method compares against {version} -- older snapshots "
                "on disk cannot be migrated",
            )

    @staticmethod
    def _version_literal(dump: FunctionModel) -> Optional[int]:
        for node in ast.walk(dump.node):
            if not isinstance(node, ast.Dict):
                continue
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "version"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, int)
                    and not isinstance(value.value, bool)
                ):
                    return value.value
        return None

    @staticmethod
    def _compares_against(fn: FunctionModel, version: int) -> bool:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for operand in operands:
                if (
                    isinstance(operand, ast.Constant)
                    and isinstance(operand.value, int)
                    and not isinstance(operand.value, bool)
                    and operand.value == version
                ):
                    return True
        return False


@register
class NewKeyDefaultRule(Rule):
    id = "SD03"
    name = "new-state-key-needs-default"
    rationale = (
        "A state key introduced in snapshot version >= 2 (declared via "
        "__effect_contracts__ state_keys_since) is absent from every "
        "older snapshot on disk; reading it without a default crashes "
        "recovery exactly when it matters."
    )
    scope = "cone"

    def run(self, project, files: List[SourceFile]) -> Iterator[Finding]:
        index = get_effect_index(project, files)
        emit = {file.relpath for file in files}
        by_relpath = {file.relpath: file for file in files}
        for class_name, dump, load in _class_pairs(project, emit):
            declared = index.state_keys_since.get(class_name)
            if not declared:
                continue
            param = _state_param(load)
            if param is None:
                continue
            file = by_relpath[load.file.relpath]
            for key, line in _strict_reads(load, param):
                since = declared.get(key)
                if since is not None and since >= 2:
                    yield self.finding(
                        file,
                        line,
                        f"key '{key}' was introduced in snapshot "
                        f"version {since}; {class_name}."
                        f"{load.node.name} must read it with "
                        f"{param}.get('{key}', ...) so version "
                        f"{since - 1} snapshots still load",
                    )
