"""Per-function I/O effect summaries for the durability rules.

The DP family reasons about *protocol orderings* -- fsync before
rename, WAL append before acknowledgement -- which no single AST can
show: the append happens three calls below the HTTP handler that acks.
This module computes, for every project function, an ordered **effect
sequence** by walking its statements and inlining the effects of every
resolvable callee (recursion-guarded, length-capped), so a rule can
ask "does a ``dir_fsync`` follow this unlink?" or "does a
``wal_append`` precede this 2xx response?" on one flat list.

Primitive effects are recognised structurally:

* ``write``   -- ``h.write/writelines/truncate``, ``json.dump(x, h)``,
  ``os.write``;
* ``flush``   -- ``h.flush()``;
* ``fsync``   -- ``os.fsync``/``os.fdatasync`` on a file handle;
* ``dir_fsync`` -- the ``fd = os.open(d, os.O_RDONLY)`` +
  ``os.fsync(fd)`` idiom that flushes a directory entry table;
* ``rename``  -- ``os.replace``/``os.rename``/``shutil.move``;
* ``unlink``  -- ``os.unlink``/``os.remove``/``path.unlink(...)``;
* ``ack``     -- a call to a registered acknowledgement provider whose
  first argument is a 2xx integer literal (4xx/5xx error responses are
  *not* acks -- rejecting before the append is the correct order).

Named effects come from the :class:`EffectRegistry`: the seed table
below maps the WAL surface (``WriteAheadLog.append`` -> ``wal_append``
and so on), and any module can add its own with a literal
``__effect_contracts__`` declaration::

    __effect_contracts__ = {
        "providers": {"Log.append": "wal_append"},
        "ack_providers": ["Server.respond"],
        "orderings": {"Server.handle": [["wal_append", "ack"]]},
        "state_keys_since": {"Engine": {"suspicion_totals": 2}},
    }

Names are module-relative (``Class.method`` or ``func``); ``orderings``
lists happens-before pairs checked by DP02 on the declaring function's
flattened sequence, and ``state_keys_since`` records the snapshot
version that introduced a state key (consumed by SD03).

Soundness note (documented in docs/LINT.md): calls the resolver cannot
map to a project function contribute no effects, so the analysis
under-approximates; generator callees are never inlined (their body
runs detached from the call site).
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.devtools.analysis.model import AnalysisModel, get_analysis
from repro.devtools.core import SourceFile
from repro.devtools.project import FunctionModel, ProjectModel

__all__ = [
    "EffectEvent",
    "EffectIndex",
    "EffectRegistry",
    "FunctionEffects",
    "default_effect_registry",
    "effect_summaries",
    "get_effect_index",
]

#: Flattened sequences are capped so a pathological call graph cannot
#: blow up the analysis; 400 events is far beyond any real function.
_MAX_EVENTS = 400

_RENAME_SRCS = {"os.replace", "os.rename", "shutil.move"}
_UNLINK_SRCS = {"os.unlink", "os.remove"}
_FSYNC_SRCS = {"os.fsync", "os.fdatasync"}
_WRITE_ATTRS = {"write", "writelines", "truncate"}
_DIR_FLAG_RE = re.compile(r"O_RDONLY|O_DIRECTORY")
_HANDLE_OPEN_SRCS = {"open", "os.fdopen"}


@dataclass(frozen=True)
class EffectEvent:
    """One I/O effect at one point of a function's linearisation.

    Attributes:
        kind: primitive or registry effect name (``fsync``,
            ``wal_append``, ...).
        line: line in the summarised function (inlined callee effects
            carry their call site's line).
        direct: the effect happens in this function's own body, not in
            an inlined callee.
        detail: receiver text for handle-level effects (``handle``,
            ``self._handle``) -- empty for inherited effects.
    """

    kind: str
    line: int
    direct: bool = True
    detail: str = ""


@dataclass
class FunctionEffects:
    """One function's effect summary.

    ``direct`` holds only the function's own events (with receiver
    details, for the intraprocedural buffered-write check); ``events``
    is the flattened sequence with resolvable callees inlined.
    """

    direct: List[EffectEvent] = field(default_factory=list)
    events: List[EffectEvent] = field(default_factory=list)


class EffectRegistry:
    """Declared effect providers, ack providers, orderings, and state
    key versions -- the seed table plus ``__effect_contracts__``."""

    def __init__(self) -> None:
        #: dotted function name -> named effect it provides.
        self.providers: Dict[str, str] = dict(_SEED_PROVIDERS)
        #: dotted names of functions whose 2xx-literal calls are acks.
        self.ack_providers: Set[str] = set(_SEED_ACK_PROVIDERS)
        #: bare method names treated as ack providers even when the
        #: receiver cannot be resolved (stdlib handler plumbing).
        self.ack_methods: Set[str] = set(_SEED_ACK_METHODS)
        #: dotted function name -> happens-before pairs on its
        #: flattened sequence.
        self.orderings: Dict[str, List[Tuple[str, str]]] = {
            name: list(pairs) for name, pairs in _SEED_ORDERINGS.items()
        }
        #: dotted class name -> {state key -> snapshot version that
        #: introduced it}.
        self.state_keys_since: Dict[str, Dict[str, int]] = {
            name: dict(keys) for name, keys in _SEED_STATE_KEYS.items()
        }

    # -- extension --------------------------------------------------------

    def extend_from_module(self, module_name: str, tree: ast.Module) -> None:
        """Collect ``__effect_contracts__`` declarations from a module."""
        for stmt in tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            if "__effect_contracts__" not in targets:
                continue
            try:
                spec = ast.literal_eval(stmt.value)
            except (ValueError, SyntaxError):
                continue
            if not isinstance(spec, dict):
                continue
            self._merge_spec(module_name, spec)

    def _merge_spec(self, module_name: str, spec: Mapping) -> None:
        providers = spec.get("providers")
        if isinstance(providers, dict):
            for name, effect in providers.items():
                self.providers[f"{module_name}.{name}"] = str(effect)
        for name in spec.get("ack_providers") or ():
            self.ack_providers.add(f"{module_name}.{name}")
        orderings = spec.get("orderings")
        if isinstance(orderings, dict):
            for name, pairs in orderings.items():
                cleaned = [
                    (str(pair[0]), str(pair[1]))
                    for pair in pairs
                    if isinstance(pair, (list, tuple)) and len(pair) == 2
                ]
                if cleaned:
                    self.orderings[f"{module_name}.{name}"] = cleaned
        keys_since = spec.get("state_keys_since")
        if isinstance(keys_since, dict):
            for name, keys in keys_since.items():
                if isinstance(keys, dict):
                    self.state_keys_since[f"{module_name}.{name}"] = {
                        str(k): int(v) for k, v in keys.items()
                    }

    # -- identity ---------------------------------------------------------

    def digest(self) -> str:
        """Stable hash of the registry -- part of the cache signature."""
        payload = {
            "providers": dict(sorted(self.providers.items())),
            "ack_providers": sorted(self.ack_providers),
            "ack_methods": sorted(self.ack_methods),
            "orderings": {
                name: [list(pair) for pair in pairs]
                for name, pairs in sorted(self.orderings.items())
            },
            "state_keys_since": {
                name: dict(sorted(keys.items()))
                for name, keys in sorted(self.state_keys_since.items())
            },
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


#: The WAL/snapshot durability surface (PR 8) expressed as effects.
_SEED_PROVIDERS: Dict[str, str] = {
    "repro.service.wal.WriteAheadLog.append": "wal_append",
    "repro.service.wal.WriteAheadLog.sync": "wal_fsync",
    "repro.service.wal.WriteAheadLog.gc": "wal_gc",
    "repro.service.wal.write_snapshot": "snapshot_write",
    "repro.service.wal.prune_snapshots": "wal_gc",
    "repro.ratings.store.RatingStore.add_rating": "store_add",
}

_SEED_ACK_PROVIDERS: Tuple[str, ...] = (
    "repro.service.http._Handler._send_json",
    "repro.service.http._Handler._send_text",
)

_SEED_ACK_METHODS: Tuple[str, ...] = ("send_response",)

#: Orderings for the engine/HTTP tier are declared next to the code
#: they constrain (``__effect_contracts__`` in engine.py / http.py);
#: the seed table stays empty so fixtures document the mechanism.
_SEED_ORDERINGS: Dict[str, List[Tuple[str, str]]] = {}

_SEED_STATE_KEYS: Dict[str, Dict[str, int]] = {}


def default_effect_registry() -> EffectRegistry:
    """A fresh registry holding only the seed tables."""
    return EffectRegistry()


@dataclass
class EffectIndex:
    """The registry resolved onto this run's project qualnames."""

    #: function qualname -> named effect it provides.
    provider_effects: Dict[str, str] = field(default_factory=dict)
    #: qualnames whose 2xx-literal calls count as acks.
    ack_qualnames: Set[str] = field(default_factory=set)
    #: bare method names treated as acks without resolution.
    ack_methods: Set[str] = field(default_factory=set)
    #: function qualname -> happens-before pairs.
    orderings: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    #: project class name -> {state key -> introducing version}.
    state_keys_since: Dict[str, Dict[str, int]] = field(default_factory=dict)


def _resolve_class(
    analysis: AnalysisModel, project: ProjectModel, dotted: str
) -> Optional[str]:
    """Map a dotted class name to a project class, or None."""
    module, _, name = dotted.rpartition(".")
    relpath = analysis.module_file(module)
    if relpath is None:
        return None
    model = project.classes.get(name)
    if model is not None and model.file.relpath == relpath:
        return name
    return None


def get_effect_index(
    project: ProjectModel, files: Sequence[SourceFile]
) -> EffectIndex:
    """The run's resolved effect registry, built once and memoized."""
    cached = getattr(project, "_effect_index", None)
    if cached is not None:
        return cached
    analysis = get_analysis(project, files)
    registry = default_effect_registry()
    for info in analysis.modules.values():
        if info.module:
            registry.extend_from_module(info.module, info.file.tree)
    index = EffectIndex(ack_methods=set(registry.ack_methods))
    for dotted, effect in registry.providers.items():
        qualname = analysis.resolve_dotted(dotted)
        if qualname is not None:
            index.provider_effects[qualname] = effect
    for dotted in registry.ack_providers:
        qualname = analysis.resolve_dotted(dotted)
        if qualname is not None:
            index.ack_qualnames.add(qualname)
    for dotted, pairs in registry.orderings.items():
        qualname = analysis.resolve_dotted(dotted)
        if qualname is not None:
            index.orderings[qualname] = list(pairs)
    for dotted, keys in registry.state_keys_since.items():
        class_name = _resolve_class(analysis, project, dotted)
        if class_name is not None:
            index.state_keys_since[class_name] = dict(keys)
    project._effect_index = index
    return index


# -- per-function collection ------------------------------------------------


@dataclass
class _Item:
    """One collected point: a primitive effect or an unresolved call."""

    kind: str  # an effect kind, or "call"
    line: int
    detail: str = ""
    call: Optional[ast.Call] = None


def _dotted_source(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_source(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


class _EffectCollector:
    """Linearises one function body into effect/call items.

    Statements are visited in source order, recursing through
    ``if``/``for``/``while``/``try``/``with`` blocks (branch bodies are
    concatenated -- the linearisation over-approximates orderings the
    same way on every path that exists in the source).  Nested ``def``
    and ``class`` bodies run in their own frame and are skipped.
    """

    def __init__(self) -> None:
        self.items: List[_Item] = []
        #: local names bound to buffered file handles.
        self._handles: Set[str] = set()
        #: local names bound to directory fds (``os.open(d, O_RDONLY)``).
        self._dir_fds: Set[str] = set()

    def walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            self._track_binding(stmt.targets[0], stmt.value)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name) and isinstance(
                    item.context_expr, ast.Call
                ):
                    self._track_handle_call(
                        item.optional_vars.id, item.context_expr
                    )
        self._collect_calls_shallow(stmt)
        if isinstance(stmt, ast.Try):
            self.walk(stmt.body)
            for handler in stmt.handlers:
                self.walk(handler.body)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
            return
        for fieldname in ("body", "orelse", "finalbody"):
            children = getattr(stmt, fieldname, None)
            if children:
                self.walk(children)

    def _track_binding(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name) or not isinstance(value, ast.Call):
            return
        self._track_handle_call(target.id, value)

    def _track_handle_call(self, name: str, call: ast.Call) -> None:
        src = _dotted_source(call.func)
        if src == "os.open":
            flags = " ".join(ast.unparse(arg) for arg in call.args[1:])
            if _DIR_FLAG_RE.search(flags):
                self._dir_fds.add(name)
            return
        if src in _HANDLE_OPEN_SRCS:
            self._handles.add(name)
        elif isinstance(call.func, ast.Attribute) and call.func.attr == "open":
            self._handles.add(name)

    def _collect_calls_shallow(self, stmt: ast.stmt) -> None:
        """Classify calls in this statement's own expressions."""
        blocks: Set[int] = set()
        for fieldname in ("body", "orelse", "finalbody", "handlers"):
            for child in getattr(stmt, fieldname, []) or []:
                blocks.update(id(n) for n in ast.walk(child))
        calls = [
            node
            for node in ast.walk(stmt)
            if isinstance(node, ast.Call) and id(node) not in blocks
        ]
        for call in sorted(calls, key=lambda c: (c.lineno, c.col_offset)):
            self._classify(call)

    def _classify(self, call: ast.Call) -> None:
        src = _dotted_source(call.func)
        line = call.lineno
        if src in _RENAME_SRCS:
            self.items.append(_Item("rename", line))
            return
        if src in _UNLINK_SRCS or (
            isinstance(call.func, ast.Attribute) and call.func.attr == "unlink"
        ):
            self.items.append(_Item("unlink", line))
            return
        if src in _FSYNC_SRCS and call.args:
            self.items.append(self._fsync_item(call.args[0], line))
            return
        if src == "os.write":
            self.items.append(_Item("write", line))
            return
        if src == "json.dump" and len(call.args) >= 2:
            detail = _dotted_source(call.args[1]) or ast.unparse(call.args[1])
            self.items.append(_Item("write", line, detail=detail))
            return
        if isinstance(call.func, ast.Attribute):
            receiver = ast.unparse(call.func.value)
            if call.func.attr in _WRITE_ATTRS:
                self.items.append(_Item("write", line, detail=receiver))
                return
            if call.func.attr == "flush" and not call.args:
                self.items.append(_Item("flush", line, detail=receiver))
                return
        self.items.append(_Item("call", line, call=call))

    def _fsync_item(self, arg: ast.expr, line: int) -> _Item:
        if isinstance(arg, ast.Name) and arg.id in self._dir_fds:
            return _Item("dir_fsync", line)
        # ``os.fsync(h.fileno())`` -- the usual buffered-handle form.
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "fileno"
        ):
            return _Item("fsync", line, detail=ast.unparse(arg.func.value))
        return _Item("fsync", line, detail=ast.unparse(arg))


# -- flattening -------------------------------------------------------------


class _SyntheticCall:
    """Duck-typed :class:`CallEvent` for the shared resolver."""

    __slots__ = ("callee", "func_src", "held", "line")

    def __init__(self, func_src: str, line: int) -> None:
        self.callee = None
        self.func_src = func_src
        self.held = ()
        self.line = line


def _call_targets(
    fn: FunctionModel,
    call: ast.Call,
    project: ProjectModel,
    analysis: AnalysisModel,
    typer,
) -> List[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        base = typer(func.value)
        if base is not None:
            method = project.method(base, func.attr)
            return [method.qualname] if method is not None else []
    src = _dotted_source(func)
    if src is None:
        return []
    return analysis.resolve_call_targets(fn, _SyntheticCall(src, call.lineno))


def _is_2xx_literal(call: ast.Call) -> bool:
    if not call.args:
        return False
    first = call.args[0]
    return (
        isinstance(first, ast.Constant)
        and isinstance(first.value, int)
        and not isinstance(first.value, bool)
        and 200 <= first.value <= 299
    )


def effect_summaries(
    project: ProjectModel, files: Sequence[SourceFile]
) -> Dict[str, FunctionEffects]:
    """Effect summaries per function qualname, built once per run."""
    cached = getattr(project, "_effect_summaries", None)
    if cached is not None:
        return cached
    analysis = get_analysis(project, files)
    index = get_effect_index(project, files)
    collected: Dict[str, _EffectCollector] = {}
    typers: Dict[str, object] = {}
    for qualname, fn in project.functions.items():
        collector = _EffectCollector()
        collector.walk(fn.node.body)
        collected[qualname] = collector
        typers[qualname] = project.function_typer(fn)

    #: memoized flattened *kinds* per function (lines are meaningless
    #: once inlined into a caller -- callers re-anchor at the call site).
    kinds_memo: Dict[str, Tuple[str, ...]] = {}

    def resolve(qualname: str, call: ast.Call) -> Tuple[List[str], bool]:
        """(targets, is_ack) for one call item of ``qualname``."""
        fn = project.functions[qualname]
        targets = _call_targets(fn, call, project, analysis, typers[qualname])
        is_ack = _is_2xx_literal(call) and (
            any(target in index.ack_qualnames for target in targets)
            or (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in index.ack_methods
            )
        )
        return targets, is_ack

    def kinds_of(qualname: str, stack: Set[str]) -> Tuple[str, ...]:
        memo = kinds_memo.get(qualname)
        if memo is not None:
            return memo
        if qualname in stack:
            return ()  # recursion: contribute nothing (under-approximate)
        stack = stack | {qualname}
        out: List[str] = []
        for item in collected[qualname].items:
            if len(out) >= _MAX_EVENTS:
                break
            if item.kind != "call":
                out.append(item.kind)
                continue
            targets, is_ack = resolve(qualname, item.call)
            if is_ack:
                out.append("ack")
            for target in targets:
                effect = index.provider_effects.get(target)
                if effect is not None:
                    out.append(effect)
                if (
                    target in project.functions
                    and not project.functions[target].is_generator
                ):
                    out.extend(kinds_of(target, stack))
        result = tuple(out[:_MAX_EVENTS])
        if qualname not in stack - {qualname}:
            kinds_memo[qualname] = result
        return result

    summaries: Dict[str, FunctionEffects] = {}
    for qualname in project.functions:
        direct: List[EffectEvent] = []
        events: List[EffectEvent] = []
        for item in collected[qualname].items:
            if len(events) >= _MAX_EVENTS:
                break
            if item.kind != "call":
                event = EffectEvent(
                    item.kind, item.line, direct=True, detail=item.detail
                )
                direct.append(event)
                events.append(event)
                continue
            targets, is_ack = resolve(qualname, item.call)
            if is_ack:
                event = EffectEvent("ack", item.line, direct=True)
                direct.append(event)
                events.append(event)
            for target in targets:
                effect = index.provider_effects.get(target)
                if effect is not None:
                    events.append(EffectEvent(effect, item.line, direct=False))
                if (
                    target in project.functions
                    and not project.functions[target].is_generator
                ):
                    for kind in kinds_of(target, {qualname}):
                        events.append(
                            EffectEvent(kind, item.line, direct=False)
                        )
        summaries[qualname] = FunctionEffects(
            direct=direct, events=events[:_MAX_EVENTS]
        )
    project._effect_summaries = summaries
    return summaries
