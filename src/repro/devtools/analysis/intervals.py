"""Interval abstract domain for the domain-invariant (DI) rules.

An :class:`Interval` is a numeric range with independently open or
closed endpoints, so contracts can say "strictly inside ``(0, 1)``"
(beta trust) as well as "within ``[0, 1]``" (probabilities).  The
evaluator maps a Python expression AST to an interval, returning
``None`` whenever it cannot prove a bound -- DI rules only flag what
is *provably* out of domain, so "unknown" always means "stay silent".

Two structural refinements carry most of the real proofs:

* the **monotone-fraction lemma** (:func:`fraction_interval`): for
  ``num / den`` where every non-constant term of ``num`` also appears
  in ``den``, all terms are non-negative, and the constant part of
  ``den`` strictly exceeds the constant part of ``num`` (itself
  positive), the quotient lies strictly inside ``(0, 1)``.  This is
  exactly the beta-trust form ``(S + 1) / (S + F + 2)``.
* the **convex-combination refinement** (in :class:`Evaluator`):
  ``A * X + (1 - A) * Y`` with ``A`` provably in ``[0, 1]`` evaluates
  to the hull of ``X`` and ``Y``, which proves the Sun trust-model
  update and the blended direct/indirect trust stay in ``[0, 1]``.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Interval",
    "Evaluator",
    "UNIT",
    "OPEN_UNIT",
    "SYMMETRIC_UNIT",
    "NON_NEGATIVE",
    "point",
]

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A numeric interval with open/closed endpoints."""

    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")
        # Infinite endpoints are never attained.
        if self.lo == -_INF and not self.lo_open:
            object.__setattr__(self, "lo_open", True)
        if self.hi == _INF and not self.hi_open:
            object.__setattr__(self, "hi_open", True)

    # -- predicates -------------------------------------------------------

    def contains_value(self, value: float) -> bool:
        if value < self.lo or (value == self.lo and self.lo_open):
            return False
        if value > self.hi or (value == self.hi and self.hi_open):
            return False
        return True

    def within(self, other: "Interval") -> bool:
        """True when every value of ``self`` lies in ``other``."""
        if self.lo < other.lo:
            return False
        if self.lo == other.lo and other.lo_open and not self.lo_open:
            return False
        if self.hi > other.hi:
            return False
        if self.hi == other.hi and other.hi_open and not self.hi_open:
            return False
        return True

    @property
    def nonnegative(self) -> bool:
        return self.lo >= 0.0

    @property
    def positive(self) -> bool:
        return self.lo > 0.0 or (self.lo == 0.0 and self.lo_open)

    # -- lattice ----------------------------------------------------------

    def meet(self, other: "Interval") -> Optional["Interval"]:
        """Intersection, or None when the intervals do not overlap."""
        if self.lo > other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo > self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open or other.lo_open
        if self.hi < other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi < self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open or other.hi_open
        if lo > hi or (lo == hi and (lo_open or hi_open)):
            return None
        return Interval(lo, hi, lo_open, hi_open)

    def hull(self, other: "Interval") -> "Interval":
        if self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo < self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi > other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi > self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    # -- arithmetic (closed over-approximations where openness is fiddly) -

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(
            self.lo + other.lo,
            self.hi + other.hi,
            self.lo_open or other.lo_open,
            self.hi_open or other.hi_open,
        )

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo, self.hi_open, self.lo_open)

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def __mul__(self, other: "Interval") -> "Interval":
        # Endpoint products; openness is widened to closed, which is a
        # sound over-approximation for containment checks.
        candidates = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        finite = [c for c in candidates if not math.isnan(c)]
        if not finite:
            return TOP
        return Interval(min(finite), max(finite))

    def divide(self, other: "Interval") -> Optional["Interval"]:
        """``self / other`` when the divisor provably excludes zero."""
        if other.contains_value(0.0):
            return None
        if other.lo == 0.0 or other.hi == 0.0:
            # e.g. (0, inf): reciprocal spans (0, inf) too.
            if other.lo == 0.0:
                recip = Interval(0.0, _INF, True, True) if other.hi > 0 else None
            else:
                recip = Interval(-_INF, 0.0, True, True)
            if recip is None:
                return None
            return self * recip
        recip = Interval(
            min(1.0 / other.lo, 1.0 / other.hi),
            max(1.0 / other.lo, 1.0 / other.hi),
        )
        return self * recip

    def clamp(self, lo: Optional[float], hi: Optional[float]) -> "Interval":
        """Interval of ``clip(self, lo, hi)`` for scalar bounds."""
        new_lo, new_hi = self.lo, self.hi
        lo_open, hi_open = self.lo_open, self.hi_open
        if lo is not None:
            if new_lo < lo:
                new_lo, lo_open = lo, False
            new_hi = max(new_hi, lo)
        if hi is not None:
            if new_hi > hi:
                new_hi, hi_open = hi, False
            new_lo = min(new_lo, hi)
        return Interval(new_lo, new_hi, lo_open, hi_open)

    def __str__(self) -> str:
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{_fmt(self.lo)}, {_fmt(self.hi)}{right}"


def _fmt(value: float) -> str:
    if value == _INF:
        return "inf"
    if value == -_INF:
        return "-inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def point(value: float) -> Interval:
    return Interval(value, value)


TOP = Interval(-_INF, _INF, True, True)
UNIT = Interval(0.0, 1.0)
OPEN_UNIT = Interval(0.0, 1.0, True, True)
SYMMETRIC_UNIT = Interval(-1.0, 1.0)
NON_NEGATIVE = Interval(0.0, _INF, False, True)


# ---------------------------------------------------------------------------
# Structural refinements
# ---------------------------------------------------------------------------


def _flatten_sum(node: ast.expr) -> Optional[List[ast.expr]]:
    """Flatten a chain of binary ``+`` into its terms (no subtraction)."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _flatten_sum(node.left)
        right = _flatten_sum(node.right)
        if left is None or right is None:
            return None
        return left + right
    return [node]


def _num_const(node: ast.expr) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None


def fraction_interval(
    num: ast.expr,
    den: ast.expr,
    term_interval: Callable[[ast.expr], Optional[Interval]],
) -> Optional[Interval]:
    """The monotone-fraction lemma; ``None`` when it does not apply.

    Proves ``num / den`` is in ``(0, 1)`` when, writing both sides as
    sums, ``num = T + c_n`` and ``den = T + R + c_d`` with the shared
    terms ``T`` and the remainder ``R`` all non-negative and
    ``0 < c_n < c_d``.
    """
    num_terms = _flatten_sum(num)
    den_terms = _flatten_sum(den)
    if num_terms is None or den_terms is None:
        return None
    num_syms: List[ast.expr] = []
    num_const = 0.0
    for term in num_terms:
        value = _num_const(term)
        if value is not None:
            num_const += value
        else:
            num_syms.append(term)
    den_syms: List[ast.expr] = []
    den_const = 0.0
    for term in den_terms:
        value = _num_const(term)
        if value is not None:
            den_const += value
        else:
            den_syms.append(term)
    if not (0.0 < num_const < den_const):
        return None
    # Every symbolic numerator term must match a (distinct) denominator
    # term; whatever is left over in the denominator must be >= 0.
    remaining = [ast.dump(t) for t in den_syms]
    for term in num_syms:
        key = ast.dump(term)
        if key not in remaining:
            return None
        remaining.remove(key)
    for term in num_syms + den_syms:
        interval = term_interval(term)
        if interval is None or not interval.nonnegative:
            return None
    return OPEN_UNIT


def _same_expr(a: ast.expr, b: ast.expr) -> bool:
    return ast.dump(a) == ast.dump(b)


def _complement_of(candidate: ast.expr, weight: ast.expr) -> bool:
    """True when ``candidate`` is structurally ``1 - weight``."""
    return (
        isinstance(candidate, ast.BinOp)
        and isinstance(candidate.op, ast.Sub)
        and _num_const(candidate.left) == 1.0
        and _same_expr(candidate.right, weight)
    )


# ---------------------------------------------------------------------------
# Expression evaluator
# ---------------------------------------------------------------------------

_NUMPY_ALIASES = {"np", "numpy"}


class Evaluator:
    """Maps expression ASTs to intervals against a name environment.

    ``call_interval`` and ``attribute_interval`` are resolution hooks
    supplied by the DI rules (they consult the contract registry and
    the project model); either may return ``None`` for "unknown".
    """

    def __init__(
        self,
        env: Optional[Dict[str, Interval]] = None,
        call_interval: Optional[Callable[[ast.Call], Optional[Interval]]] = None,
        attribute_interval: Optional[Callable[[ast.Attribute], Optional[Interval]]] = None,
    ) -> None:
        self.env: Dict[str, Interval] = dict(env or {})
        self._call_interval = call_interval
        self._attribute_interval = attribute_interval

    # -- entry point ------------------------------------------------------

    def eval(self, node: ast.expr) -> Optional[Interval]:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            return None
        return method(node)

    # -- leaves -----------------------------------------------------------

    def _eval_Constant(self, node: ast.Constant) -> Optional[Interval]:
        value = _num_const(node)
        if value is None:
            return None
        return point(value)

    def _eval_Name(self, node: ast.Name) -> Optional[Interval]:
        return self.env.get(node.id)

    def _eval_Attribute(self, node: ast.Attribute) -> Optional[Interval]:
        if self._attribute_interval is not None:
            return self._attribute_interval(node)
        return None

    def _eval_Subscript(self, node: ast.Subscript) -> Optional[Interval]:
        # Indexing/slicing selects elements of the container, so the
        # container's elementwise interval still bounds the result.
        return self.eval(node.value)

    # -- operators --------------------------------------------------------

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> Optional[Interval]:
        inner = self.eval(node.operand)
        if inner is None:
            return None
        if isinstance(node.op, ast.USub):
            return -inner
        if isinstance(node.op, ast.UAdd):
            return inner
        return None

    def _eval_BinOp(self, node: ast.BinOp) -> Optional[Interval]:
        if isinstance(node.op, ast.Add):
            convex = self._convex_combination(node)
            if convex is not None:
                return convex
        if isinstance(node.op, ast.Div):
            fraction = fraction_interval(node.left, node.right, self.eval)
            if fraction is not None:
                return fraction
        left = self.eval(node.left)
        right = self.eval(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Div):
            return left.divide(right)
        return None

    def _eval_IfExp(self, node: ast.IfExp) -> Optional[Interval]:
        body = self.eval(node.body)
        orelse = self.eval(node.orelse)
        if body is None or orelse is None:
            return None
        return body.hull(orelse)

    def _convex_combination(self, node: ast.BinOp) -> Optional[Interval]:
        """``A * X + (1 - A) * Y`` with ``A`` in [0, 1] -> hull(X, Y)."""
        terms = []
        for side in (node.left, node.right):
            if not (isinstance(side, ast.BinOp) and isinstance(side.op, ast.Mult)):
                return None
            terms.append(side)
        first, second = terms
        for a, x in ((first.left, first.right), (first.right, first.left)):
            for b, y in ((second.left, second.right), (second.right, second.left)):
                if _complement_of(b, a) or _complement_of(a, b):
                    weight = a if _complement_of(b, a) else b
                    w_int = self.eval(weight)
                    if w_int is None or not w_int.within(UNIT):
                        continue
                    x_int = self.eval(x)
                    y_int = self.eval(y)
                    if x_int is None or y_int is None:
                        continue
                    return x_int.hull(y_int)
        return None

    # -- calls ------------------------------------------------------------

    def _eval_Call(self, node: ast.Call) -> Optional[Interval]:
        special = self._special_call(node)
        if special is not None:
            return special
        if self._call_interval is not None:
            return self._call_interval(node)
        return None

    def _special_call(self, node: ast.Call) -> Optional[Interval]:
        name = _callable_name(node.func)
        if name is None or node.keywords:
            return None
        args = node.args
        if name in ("float", "np.asarray", "np.array", "np.float64"):
            if len(args) == 1:
                return self.eval(args[0])
            return None
        if name in ("min", "np.minimum") and len(args) == 2:
            return self._min_max(args, use_min=True)
        if name in ("max", "np.maximum") and len(args) == 2:
            return self._min_max(args, use_min=False)
        if name in ("abs", "np.abs") and len(args) == 1:
            inner = self.eval(args[0])
            if inner is None:
                return None
            if inner.nonnegative:
                return inner
            mag = max(abs(inner.lo), abs(inner.hi))
            return Interval(0.0, mag)
        if name == "np.clip" and len(args) == 3:
            base = self.eval(args[0])
            lo = self.eval(args[1])
            hi = self.eval(args[2])
            if lo is None or hi is None:
                return None
            if base is None:
                base = TOP
            return base.clamp(lo.lo, hi.hi)
        if name == "np.mean" and len(args) == 1:
            return self.eval(args[0])
        if name == "np.sum" and len(args) == 1:
            inner = self.eval(args[0])
            if inner is None:
                return None
            if inner.nonnegative:
                return NON_NEGATIVE
            if inner.hi <= 0.0:
                return Interval(-_INF, 0.0, True, False)
            return None
        return None

    def _min_max(self, args: Sequence[ast.expr], use_min: bool) -> Optional[Interval]:
        a = self.eval(args[0])
        b = self.eval(args[1])
        if a is None or b is None:
            return None
        if use_min:
            return Interval(min(a.lo, b.lo), min(a.hi, b.hi))
        return Interval(max(a.lo, b.lo), max(a.hi, b.hi))


def _callable_name(func: ast.expr) -> Optional[str]:
    """Normalize ``np.clip`` / ``numpy.clip`` / ``min`` to a lookup key."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        prefix = func.value.id
        if prefix in _NUMPY_ALIASES:
            return f"np.{func.attr}"
        return f"{prefix}.{func.attr}"
    return None
