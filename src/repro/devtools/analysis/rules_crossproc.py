"""CC04-CC05: cross-process lock rules (file locks, fork-under-lock).

The lexical CC rules reason about ``threading`` locks inside one
process; the multi-process roadmap adds two hazards they cannot see:

* **CC04** -- a *blocking* ``fcntl.flock``/``lockf`` (no ``LOCK_NB``)
  taken while a threading lock is held.  The file lock blocks
  indefinitely on another process, which turns the in-process lock
  into a cross-process convoy: every thread needing it stalls behind
  another *process*.  The PR 8 lockfile acquires with
  ``LOCK_EX | LOCK_NB`` for exactly this reason.  Checked directly and
  through the call graph (calling, under a lock, a function whose
  closure reaches a blocking flock).
* **CC05** -- spawning a process (``os.fork``, ``subprocess.*``,
  ``multiprocessing.*``, ``ProcessPoolExecutor``) while any lock is
  held.  The child inherits the lock's *state* but not the thread
  that would release it: a forked child deadlocks on first acquire,
  and an inherited flock fd keeps the file lock alive after the
  parent releases.  Also flagged lexically: a flock earlier in the
  same function followed by a spawn (the child inherits the locked
  fd even when no threading lock spans the spawn).

Held-lock sets come from the existing per-function concurrency events
(:class:`~repro.devtools.project.CallEvent`), so these rules see the
same lock model as CC01-CC03.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.analysis.model import get_analysis
from repro.devtools.core import Finding, Rule, SourceFile, register
from repro.devtools.project import FunctionModel

__all__ = ["BlockingFileLockRule", "SpawnUnderLockRule"]

_FLOCK_RE = re.compile(r"^fcntl\.(flock|lockf)$")
_SPAWN_RE = re.compile(
    r"^(os\.(fork|forkpty|system|exec[lv]p?e?|spawn[lv]p?e?|posix_spawnp?)"
    r"|subprocess\.(run|call|check_call|check_output|Popen)"
    r"|multiprocessing\.(Process|Pool)"
    r"|(concurrent\.futures\.)?ProcessPoolExecutor)$"
)


def _blocking_flock_lines(fn: FunctionModel) -> List[int]:
    """Lines of fcntl.flock/lockf calls with no LOCK_NB in the args."""
    out: List[int] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        try:
            src = ast.unparse(node.func)
        except Exception:  # pragma: no cover - unparse is total on exprs
            continue
        if not _FLOCK_RE.match(src):
            continue
        args = " ".join(ast.unparse(arg) for arg in node.args)
        if "LOCK_NB" not in args:
            out.append(node.lineno)
    return out


def _flock_reasons(project, analysis) -> Dict[str, str]:
    """Function qualname -> call-chain reason it reaches a blocking
    flock (same closure shape as the blocking-seed analysis)."""
    reason: Dict[str, Optional[str]] = {}
    for qualname, fn in project.functions.items():
        lines = _blocking_flock_lines(fn)
        reason[qualname] = f"blocking flock at line {lines[0]}" if lines else None
    changed = True
    while changed:
        changed = False
        for qualname, fn in project.functions.items():
            if reason[qualname] is not None:
                continue
            for call in fn.calls:
                targets = (
                    [call.callee]
                    if call.callee is not None
                    else analysis.resolve_call_targets(fn, call)
                )
                for callee in targets:
                    if reason.get(callee) is None:
                        continue
                    if project.functions[callee].is_generator:
                        continue
                    reason[qualname] = f"{callee} -> {reason[callee]}"
                    changed = True
                    break
                if reason[qualname] is not None:
                    break
    return {qn: why for qn, why in reason.items() if why is not None}


def _held_at(fn: FunctionModel, line: int) -> Tuple:
    """The widest held-lock set recorded for any call on this line."""
    best: Tuple = ()
    for call in fn.calls:
        if call.line == line and len(call.held) > len(best):
            best = call.held
    return best


def _held_names(held) -> str:
    # HeldLock.node is a (class, attr, kind) LockNode tuple.
    return ", ".join(sorted({f"{lock.node[0]}.{lock.node[1]}" for lock in held}))


@register
class BlockingFileLockRule(Rule):
    id = "CC04"
    name = "blocking-file-lock-under-lock"
    rationale = (
        "A blocking fcntl.flock taken while a threading lock is held "
        "stalls every thread needing that lock behind another "
        "*process*; acquire file locks with LOCK_NB (and handle "
        "BlockingIOError) or before taking in-process locks."
    )
    scope = "cone"

    def run(self, project, files: List[SourceFile]) -> Iterator[Finding]:
        analysis = get_analysis(project, files)
        reasons = _flock_reasons(project, analysis)
        emit = {file.relpath for file in files}
        by_relpath = {file.relpath: file for file in files}
        for qualname, fn in sorted(project.functions.items()):
            if fn.file.relpath not in emit:
                continue
            file = by_relpath[fn.file.relpath]
            # Direct: a blocking flock on a line where locks are held.
            for line in _blocking_flock_lines(fn):
                held = _held_at(fn, line)
                if held:
                    yield self.finding(
                        file,
                        line,
                        "blocking fcntl lock acquired while holding "
                        f"[{_held_names(held)}] -- another process can "
                        "stall every thread behind this lock; use "
                        "LOCK_NB and handle BlockingIOError",
                    )
            # Indirect: calling, under a lock, into a blocking flock.
            for call in fn.calls:
                if not call.held:
                    continue
                targets = (
                    [call.callee]
                    if call.callee is not None
                    else analysis.resolve_call_targets(fn, call)
                )
                for callee in targets:
                    why = reasons.get(callee)
                    if why is None or project.functions[callee].is_generator:
                        continue
                    yield self.finding(
                        file,
                        call.line,
                        f"call while holding [{_held_names(call.held)}] "
                        f"reaches a blocking fcntl lock ({why}) -- "
                        "another process can stall every thread behind "
                        "these locks",
                    )
                    break


@register
class SpawnUnderLockRule(Rule):
    id = "CC05"
    name = "spawn-under-lock"
    rationale = (
        "A child process inherits lock state but not the thread that "
        "releases it: forking under a threading lock deadlocks the "
        "child, and a spawn after flock leaks the locked fd into the "
        "child, keeping the file lock alive after the parent exits."
    )
    scope = "cone"

    def run(self, project, files: List[SourceFile]) -> Iterator[Finding]:
        analysis = get_analysis(project, files)
        spawn_reasons = self._spawn_reasons(project, analysis)
        emit = {file.relpath for file in files}
        by_relpath = {file.relpath: file for file in files}
        for qualname, fn in sorted(project.functions.items()):
            if fn.file.relpath not in emit:
                continue
            file = by_relpath[fn.file.relpath]
            flock_lines = _blocking_flock_lines(fn) + self._nb_flock_lines(fn)
            reported: set = set()
            for call in fn.calls:
                is_spawn = bool(_SPAWN_RE.match(call.func_src))
                if is_spawn and call.held:
                    reported.add(call.line)
                    yield self.finding(
                        file,
                        call.line,
                        f"{call.func_src} while holding "
                        f"[{_held_names(call.held)}] -- the child "
                        "inherits the locked state but not the thread "
                        "that releases it",
                    )
                elif is_spawn and any(fl < call.line for fl in flock_lines):
                    reported.add(call.line)
                    yield self.finding(
                        file,
                        call.line,
                        f"{call.func_src} after acquiring an fcntl "
                        "lock in the same function -- the child "
                        "inherits the locked fd and holds the file "
                        "lock even after the parent releases it "
                        "(close the fd or use close_fds/preexec_fn)",
                    )
                elif call.held and not is_spawn:
                    # Indirect: calling, under a lock, into a spawn.
                    targets = (
                        [call.callee]
                        if call.callee is not None
                        else analysis.resolve_call_targets(fn, call)
                    )
                    for callee in targets:
                        why = spawn_reasons.get(callee)
                        if (
                            why is None
                            or project.functions[callee].is_generator
                            or call.line in reported
                        ):
                            continue
                        reported.add(call.line)
                        yield self.finding(
                            file,
                            call.line,
                            "call while holding "
                            f"[{_held_names(call.held)}] reaches a "
                            f"process spawn ({why}) -- the child "
                            "inherits the locked state but not the "
                            "thread that releases it",
                        )
                        break

    @staticmethod
    def _nb_flock_lines(fn: FunctionModel) -> List[int]:
        """Non-blocking flock lines (still a lock the child inherits)."""
        out: List[int] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            try:
                src = ast.unparse(node.func)
            except Exception:  # pragma: no cover
                continue
            if _FLOCK_RE.match(src):
                args = " ".join(ast.unparse(arg) for arg in node.args)
                if "LOCK_NB" in args:
                    out.append(node.lineno)
        return out

    @staticmethod
    def _spawn_reasons(project, analysis) -> Dict[str, str]:
        reason: Dict[str, Optional[str]] = {}
        for qualname, fn in project.functions.items():
            direct = next(
                (
                    call
                    for call in fn.calls
                    if _SPAWN_RE.match(call.func_src)
                ),
                None,
            )
            reason[qualname] = (
                f"{direct.func_src} at line {direct.line}" if direct else None
            )
        changed = True
        while changed:
            changed = False
            for qualname, fn in project.functions.items():
                if reason[qualname] is not None:
                    continue
                for call in fn.calls:
                    targets = (
                        [call.callee]
                        if call.callee is not None
                        else analysis.resolve_call_targets(fn, call)
                    )
                    for callee in targets:
                        if reason.get(callee) is None:
                            continue
                        if project.functions[callee].is_generator:
                            continue
                        reason[qualname] = f"{callee} -> {reason[callee]}"
                        changed = True
                        break
                    if reason[qualname] is not None:
                        break
        return {qn: why for qn, why in reason.items() if why is not None}
