"""Command-line front end for the linter.

Exit codes follow the repo-wide CLI convention (docs/SERVICE.md):

* ``0`` -- clean (no active findings),
* ``1`` -- findings (or stale baseline entries under ``--strict``),
* ``2`` -- usage or internal error (argparse also exits 2 natively).

Exposed both as ``python -m repro.devtools`` and as the ``repro lint``
subcommand; :func:`configure_parser` / :func:`run_from_args` let the
main ``repro`` CLI mount the same implementation.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools.baseline import Baseline
from repro.devtools.core import all_rules
from repro.devtools.reporters import format_human, format_json, format_sarif
from repro.devtools.runner import run_lint

__all__ = ["configure_parser", "main", "run_from_args"]

DEFAULT_BASELINE = ".lint-baseline.json"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with `repro lint`)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--project-root",
        default=".",
        help="repository root for relative paths, baseline, and the "
        "API-drift targets (default: .)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file relative to the project root "
        f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; report everything",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current active findings "
        "(each new entry gets a TODO reason to fill in)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-all",
        action="store_true",
        help="also list suppressed and baselined findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat stale baseline entries as errors (exit 1)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed relative to git HEAD "
        "(staged, unstaged, and untracked)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental analysis cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: .lint-cache under the project "
        "root)",
    )


def _list_rules() -> str:
    lines = []
    for rule_id, rule_class in sorted(all_rules().items()):
        lines.append(f"{rule_id}  {rule_class.name} [{rule_class.scope}]")
        lines.append(f"      {rule_class.rationale}")
    return "\n".join(lines)


def _changed_files(root: Path) -> Optional[List[Path]]:
    """Python files changed vs. HEAD (tracked) plus untracked ones.

    Returns None when git is unavailable or ``root`` is not a work
    tree -- the caller falls back to a usage error.
    """
    commands = (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    names: List[str] = []
    for command in commands:
        try:
            proc = subprocess.run(
                command,
                cwd=str(root),
                capture_output=True,
                text=True,
                check=False,
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        names.extend(line.strip() for line in proc.stdout.splitlines())
    out: List[Path] = []
    seen = set()
    for name in names:
        if not name or not name.endswith(".py") or name in seen:
            continue
        seen.add(name)
        path = root / name
        if path.is_file():
            out.append(path)
    return sorted(out)


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        print(_list_rules())
        return 0

    root = Path(args.project_root).resolve()
    if not root.is_dir():
        print(f"error: project root {root} is not a directory", file=sys.stderr)
        return 2

    paths: List[Path] = []
    if args.changed:
        changed = _changed_files(root)
        if changed is None:
            print(
                "error: --changed requires git and a work tree at the "
                "project root",
                file=sys.stderr,
            )
            return 2
        if not changed:
            print("no changed python files; nothing to lint")
            return 0
        paths = changed
    else:
        for raw in args.paths:
            path = Path(raw)
            if not path.is_absolute():
                path = root / path
            if not path.exists():
                print(f"error: no such path: {raw}", file=sys.stderr)
                return 2
            paths.append(path)

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_absolute():
            baseline_path = root / baseline_path

    select = None
    if args.select:
        select = {part.strip() for part in args.select.split(",") if part.strip()}

    cache_dir: Optional[Path] = None
    if args.cache_dir:
        cache_dir = Path(args.cache_dir)
        if not cache_dir.is_absolute():
            cache_dir = root / cache_dir

    try:
        result = run_lint(
            paths=paths,
            project_root=root,
            baseline_path=None if args.update_baseline else baseline_path,
            select=select,
            show_all=args.show_all,
            use_cache=not args.no_cache,
            cache_dir=cache_dir,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        if baseline_path is None:
            print("error: --update-baseline requires a baseline path",
                  file=sys.stderr)
            return 2
        try:
            old = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        reasons = {entry.key(): entry.reason for entry in old.entries}
        fresh = Baseline.from_findings(result.findings)
        for i, entry in enumerate(fresh.entries):
            kept = reasons.get(entry.key())
            if kept:
                fresh.entries[i] = type(entry)(
                    rule=entry.rule,
                    path=entry.path,
                    line_text=entry.line_text,
                    reason=kept,
                )
        fresh.save(baseline_path)
        print(
            f"baseline updated: {len(fresh.entries)} entr"
            f"{'y' if len(fresh.entries) == 1 else 'ies'} -> {baseline_path}"
        )
        return 0

    if args.format == "json":
        report = format_json(result)
    elif args.format == "sarif":
        report = format_sarif(result)
    else:
        report = format_human(result)
    print(report)
    if not result.ok:
        return 1
    if args.strict and result.stale_baseline:
        print(
            f"error: {len(result.stale_baseline)} stale baseline "
            "entr(y/ies) under --strict; run --update-baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis for the repro codebase "
        "(concurrency, numeric hygiene, API drift, structure, domain "
        "invariants, architecture, exception flow, dead exports).",
    )
    configure_parser(parser)
    try:
        args = parser.parse_args(argv)
        return run_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 2


if __name__ == "__main__":
    sys.exit(main())
