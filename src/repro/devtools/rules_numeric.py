"""Numeric-hygiene rules: the float discipline the trust math needs.

Trust, suspicion, and AR model-error values are accumulated floats --
sums of products of beta-function outputs.  Exact ``==``/``!=`` on
them is a latent bug: two mathematically equal trust values differ in
the last ulp after different accumulation orders (exactly what the
sharded engine's batching produces), so equality-gated branches flip
nondeterministically.  Likewise, unseeded randomness in experiment
code silently destroys the reproducibility contract every result in
EXPERIMENTS.md depends on, and ``except Exception: pass`` hides the
corruption both introduce.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from repro.devtools.core import Finding, Rule, SourceFile, register
from repro.devtools.project import ProjectModel

_SENSITIVE_WORDS = {
    "trust", "trusts", "suspicion", "suspicious", "susp",
    "error", "err", "errors", "residual",
}
_COUNT_PREFIXES = ("n_", "num_", "count")
_NP_RANDOM_RE = re.compile(r"^(np|numpy)\.random\.(\w+)$")
_SEEDED_NP_ATTRS = {"default_rng", "Generator", "SeedSequence", "Philox", "PCG64"}


def _name_words(name: str) -> Set[str]:
    return set(re.split(r"[^a-z0-9]+", name.lower())) - {""}


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return None


def _is_sensitive(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is None or name.startswith(_COUNT_PREFIXES):
        return False
    return bool(_name_words(name) & _SENSITIVE_WORDS)


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_exact_literal(node: ast.AST) -> bool:
    """int/bool/str/None literals -- equality on these is fine."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and not isinstance(node.value, float)


@register
class FloatEqualityRule(Rule):
    id = "NH01"
    scope = "file"
    name = "float-equality-on-trust-values"
    rationale = (
        "Trust/suspicion/model-error floats are order-of-accumulation "
        "dependent; == / != on them flips on the last ulp. Compare with "
        "a tolerance or an inequality that covers the degenerate case."
    )

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        for file in files:
            in_trust_package = "repro/trust/" in file.relpath
            context: List[str] = []
            yield from self._walk(file, file.tree, context, in_trust_package)

    def _walk(self, file, node, context, in_trust_package) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                yield from self._walk(
                    file, child, context + [child.name], in_trust_package
                )
                continue
            if isinstance(child, ast.Compare):
                yield from self._check_compare(file, child, context, in_trust_package)
            yield from self._walk(file, child, context, in_trust_package)

    def _check_compare(self, file, node, context, in_trust_package) -> Iterator[Finding]:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            sides = (left, right)
            if any(_is_exact_literal(side) for side in sides):
                continue
            sensitive = any(_is_sensitive(side) for side in sides)
            float_lit = any(_is_float_literal(side) for side in sides)
            context_words: Set[str] = set()
            for name in context:
                context_words |= _name_words(name)
            context_sensitive = bool(context_words & _SENSITIVE_WORDS)
            if sensitive or (float_lit and (context_sensitive or in_trust_package)):
                yield self.finding(
                    file,
                    node.lineno,
                    "float equality on a trust/suspicion/error value: "
                    f"`{ast.unparse(node).strip()}` -- use a tolerance or "
                    "an inequality",
                )
            break  # one finding per comparison chain


@register
class UnseededRandomRule(Rule):
    id = "NH02"
    scope = "file"
    name = "unseeded-randomness-in-experiments"
    rationale = (
        "Experiment results are published numbers (EXPERIMENTS.md); all "
        "randomness must flow through an explicitly seeded "
        "numpy.random.Generator so every figure is reproducible."
    )

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        for file in files:
            parts = file.relpath.split("/")
            if "experiments" not in parts:
                continue
            for node in ast.walk(file.tree):
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    module = getattr(node, "module", None) or ""
                    names = [alias.name for alias in node.names]
                    if module == "random" or "random" in names and module == "":
                        if isinstance(node, ast.Import) and any(
                            alias.name == "random" for alias in node.names
                        ):
                            yield self.finding(
                                file,
                                node.lineno,
                                "stdlib `random` in experiment code; use a "
                                "seeded numpy.random.Generator",
                            )
                if not isinstance(node, ast.Call):
                    continue
                func_src = ast.unparse(node.func)
                match = _NP_RANDOM_RE.match(func_src)
                if match and match.group(2) not in _SEEDED_NP_ATTRS:
                    yield self.finding(
                        file,
                        node.lineno,
                        f"global-state randomness `{func_src}(...)` in "
                        "experiment code; draw from a passed-in Generator",
                    )
                    continue
                if match and match.group(2) == "default_rng" and not (
                    node.args or node.keywords
                ):
                    yield self.finding(
                        file,
                        node.lineno,
                        "`default_rng()` without a seed in experiment code",
                    )
                    continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "default_rng"
                    and not (node.args or node.keywords)
                ):
                    yield self.finding(
                        file,
                        node.lineno,
                        "`default_rng()` without a seed in experiment code",
                    )


@register
class SilentExceptRule(Rule):
    id = "NH03"
    scope = "file"
    name = "silent-exception-swallow"
    rationale = (
        "`except Exception: pass` hides numeric corruption (NaNs, failed "
        "refits, torn state) until it has compounded through trust "
        "updates; handle, log, or narrow the exception type."
    )

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        for file in files:
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield self.finding(
                        file, node.lineno, "bare `except:` swallows everything "
                        "including KeyboardInterrupt; name the exceptions"
                    )
                    continue
                if not self._is_broad(node.type):
                    continue
                if self._body_is_silent(node.body):
                    yield self.finding(
                        file,
                        node.lineno,
                        "silent `except Exception: pass` -- handle, log, or "
                        "narrow the exception type",
                    )

    @staticmethod
    def _is_broad(type_node: ast.AST) -> bool:
        names: List[str] = []
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        for node in nodes:
            name = _terminal_name(node)
            if name is not None:
                names.append(name)
        return any(name in ("Exception", "BaseException") for name in names)

    @staticmethod
    def _body_is_silent(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / ellipsis
            return False
        return True
