"""Structural rules: mutable defaults, stray prints in library code."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List

from repro.devtools.core import Finding, Rule, SourceFile, register
from repro.devtools.project import ProjectModel

_MUTABLE_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
_PRINT_OK_BASENAMES = {"cli.py", "reporting.py", "__main__.py"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_NODES):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    id = "ST01"
    scope = "file"
    name = "mutable-default-argument"
    rationale = (
        "A mutable default is evaluated once and shared across every "
        "call; accumulated state leaks between callers. Default to None "
        "and construct inside the function."
    )

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        for file in files:
            for node in ast.walk(file.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        yield self.finding(
                            file,
                            default.lineno,
                            f"mutable default `{ast.unparse(default)}` in "
                            f"{node.name}(); use None and construct inside",
                        )


@register
class PrintInLibraryRule(Rule):
    id = "ST02"
    scope = "file"
    name = "print-in-library-code"
    rationale = (
        "Library modules must not write to stdout; callers own the "
        "output stream. Route text through the reporting layer or return "
        "it to the caller."
    )

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        for file in files:
            path = Path(file.relpath)
            if path.name in _PRINT_OK_BASENAMES:
                continue
            # Only library code under src/ is held to this; scripts,
            # tests, and experiments may print.
            if not path.parts or path.parts[0] != "src":
                continue
            for node in ast.walk(file.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                ):
                    yield self.finding(
                        file,
                        node.lineno,
                        "print() in library code; return the text or use "
                        "the reporting layer",
                    )
