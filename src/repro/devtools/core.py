"""Linter framework: findings, parsed sources, suppressions, registry.

The pieces every rule shares:

* :class:`SourceFile` -- one parsed module.  Parsing is cached on
  ``(path, mtime, size)`` so repeated runs (and the many rules of one
  run) never re-parse an unchanged file.
* Inline suppressions -- a ``# repro: lint-disable[CC02]`` comment
  suppresses the listed rules on its own line; when the comment stands
  alone it suppresses the *next* code line; on a ``def``/``class``
  line it suppresses the whole body.
* :class:`Rule` -- the unit of analysis.  A rule sees the whole
  project (every parsed file plus the :class:`~repro.devtools.project.
  ProjectModel`) and yields :class:`Finding` objects, so whole-program
  rules (lock graphs, API drift) and per-file rules use one interface.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

__all__ = [
    "Finding",
    "LintConfig",
    "Rule",
    "SourceFile",
    "all_rules",
    "load_source_file",
    "register",
]

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-disable\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: rule identifier (e.g. ``CC01``).
        path: project-root-relative POSIX path of the offending file.
        line: 1-based line number.
        message: human-readable description of the violation.
        line_text: the stripped source line (the baseline match key).
        suppressed: an inline ``lint-disable`` comment covers it.
        baselined: a committed baseline entry covers it.
    """

    rule: str
    path: str
    line: int
    message: str
    line_text: str = ""
    suppressed: bool = False
    baselined: bool = False

    @property
    def active(self) -> bool:
        """True when the finding should fail the run."""
        return not (self.suppressed or self.baselined)

    def location(self) -> str:
        return f"{self.path}:{self.line}"


class SourceFile:
    """A parsed module plus the lint metadata derived from its text.

    Attributes:
        path: absolute path on disk.
        relpath: POSIX path relative to the project root.
        text: raw source.
        lines: ``text.splitlines()``.
        tree: the parsed ``ast.Module``.
        suppressions: line number -> set of rule ids disabled there.
    """

    def __init__(self, path: Path, relpath: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.suppressions = self._collect_suppressions()

    def _collect_suppressions(self) -> Dict[int, Set[str]]:
        table: Dict[int, Set[str]] = {}
        pending: Set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            ids = set(pending)
            pending = set()
            if match:
                listed = {part.strip() for part in match.group(1).split(",")}
                listed.discard("")
                code = line[: match.start()].strip()
                if code:
                    ids |= listed
                else:
                    # Standalone comment: applies to the next code line.
                    pending = listed
            if ids:
                table[lineno] = table.get(lineno, set()) | ids
        # A suppression on a `def`/`class` line covers the whole body.
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                ids = table.get(node.lineno)
                if ids:
                    for covered in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                        table[covered] = table.get(covered, set()) | ids
        return table

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        return rule_id in self.suppressions.get(line, ())

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


_PARSE_CACHE: Dict[Path, Tuple[float, int, SourceFile]] = {}


def load_source_file(path: Path, project_root: Path) -> SourceFile:
    """Parse one file, reusing the cache when size and mtime match."""
    path = path.resolve()
    stat = path.stat()
    cached = _PARSE_CACHE.get(path)
    if cached is not None and cached[0] == stat.st_mtime and cached[1] == stat.st_size:
        return cached[2]
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    try:
        relpath = path.relative_to(project_root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    source = SourceFile(path, relpath, text, tree)
    _PARSE_CACHE[path] = (stat.st_mtime, stat.st_size, source)
    return source


@dataclass
class LintConfig:
    """One lint run's inputs.

    Attributes:
        paths: files or directories to scan.
        project_root: repository root (baselines and the API-drift
            rule's target files are resolved against it).
        baseline_path: baseline file, or None to skip baselining.
        select: restrict the run to these rule ids (None = all).
    """

    paths: List[Path]
    project_root: Path
    baseline_path: Optional[Path] = None
    select: Optional[Set[str]] = None


class Rule:
    """Base class: one named check over the whole project.

    Subclasses set ``id``/``name``/``rationale`` and implement
    :meth:`run`, yielding findings.  Registration happens via the
    :func:`register` decorator; the runner instantiates each rule once
    per lint run.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""

    def run(self, project: "object", files: List[SourceFile]) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, file: SourceFile, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=file.relpath,
            line=line,
            message=message,
            line_text=file.line_text(line),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, importing the built-in rule modules once."""
    # Imported lazily so `core` has no circular dependency on the rules.
    from repro.devtools import (  # noqa: F401
        rules_api,
        rules_concurrency,
        rules_numeric,
        rules_structure,
    )

    return dict(_REGISTRY)
