"""Linter framework: findings, parsed sources, suppressions, registry.

The pieces every rule shares:

* :class:`SourceFile` -- one parsed module.  The runner parses each
  file once per run from content it already hashed for the incremental
  cache, so the many rules of one run share a single AST per file.
* Inline suppressions -- a ``# repro: lint-disable[CC02]`` comment
  suppresses the listed rules on its own line; when the comment stands
  alone it suppresses the *next* code line; on a ``def``/``class``
  line it suppresses the whole body.
* :class:`Rule` -- the unit of analysis.  A rule sees the whole
  project (every parsed file plus the :class:`~repro.devtools.project.
  ProjectModel`) and yields :class:`Finding` objects, so whole-program
  rules (lock graphs, API drift) and per-file rules use one interface.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Set, Type

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "all_rules",
    "register",
]

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-disable\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: rule identifier (e.g. ``CC01``).
        path: project-root-relative POSIX path of the offending file.
        line: 1-based line number.
        message: human-readable description of the violation.
        line_text: the stripped source line (the baseline match key).
        suppressed: an inline ``lint-disable`` comment covers it.
        baselined: a committed baseline entry covers it.
    """

    rule: str
    path: str
    line: int
    message: str
    line_text: str = ""
    suppressed: bool = False
    baselined: bool = False

    @property
    def active(self) -> bool:
        """True when the finding should fail the run."""
        return not (self.suppressed or self.baselined)

    def location(self) -> str:
        return f"{self.path}:{self.line}"


class SourceFile:
    """A parsed module plus the lint metadata derived from its text.

    Attributes:
        path: absolute path on disk.
        relpath: POSIX path relative to the project root.
        text: raw source.
        lines: ``text.splitlines()``.
        tree: the parsed ``ast.Module``.
        suppressions: line number -> set of rule ids disabled there.
    """

    def __init__(self, path: Path, relpath: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.suppressions = self._collect_suppressions()

    def _collect_suppressions(self) -> Dict[int, Set[str]]:
        table: Dict[int, Set[str]] = {}
        pending: Set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            ids = set(pending)
            pending = set()
            if match:
                listed = {part.strip() for part in match.group(1).split(",")}
                listed.discard("")
                code = line[: match.start()].strip()
                if code:
                    ids |= listed
                else:
                    # Standalone comment: applies to the next code line.
                    pending = listed
            if ids:
                table[lineno] = table.get(lineno, set()) | ids
        # A suppression on a `def`/`class` line covers the whole body.
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                ids = table.get(node.lineno)
                if ids:
                    for covered in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                        table[covered] = table.get(covered, set()) | ids
        return table

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        return rule_id in self.suppressions.get(line, ())

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class: one named check over the whole project.

    Subclasses set ``id``/``name``/``rationale`` and implement
    :meth:`run`, yielding findings.  Registration happens via the
    :func:`register` decorator; the runner instantiates each rule once
    per lint run.

    ``scope`` tells the incremental cache how findings depend on the
    tree, so it can skip re-running rules over unchanged files:

    * ``"file"`` -- findings for a file depend on that file alone;
    * ``"cone"`` -- findings for a file depend on the file plus its
      transitive imports (the rule only *emits* for files it receives
      in ``files``, while reading the whole project model);
    * ``"global"`` -- findings may depend on anything, including files
      outside the lint set; any change reruns the rule everywhere.

    Rules whose output also depends on non-linted files (docs, tests)
    declare them via :meth:`external_inputs`; the cache hashes those
    too.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    scope: str = "global"

    def run(self, project: "object", files: List[SourceFile]) -> Iterator[Finding]:
        raise NotImplementedError

    def external_inputs(self, project_root: Path) -> List[Path]:
        """Non-linted files whose contents influence this rule."""
        return []

    def finding(self, file: SourceFile, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=file.relpath,
            line=line,
            message=message,
            line_text=file.line_text(line),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, importing the built-in rule modules once."""
    # Imported lazily so `core` has no circular dependency on the rules.
    from repro.devtools import (  # noqa: F401
        rules_api,
        rules_concurrency,
        rules_numeric,
        rules_structure,
    )
    from repro.devtools.analysis import (  # noqa: F401
        rules_arch,
        rules_crossproc,
        rules_deadcode,
        rules_domain,
        rules_durability,
        rules_exceptions,
        rules_serialization,
    )

    return dict(_REGISTRY)
