"""Reporters: render a lint run as text.  No printing here -- the CLI
owns the output stream (rule ST02 applies to this package too)."""

from __future__ import annotations

import json
from typing import List

__all__ = ["format_human", "format_json", "format_sarif"]


def format_human(result: "LintResult") -> str:
    """One line per finding, grouped status summary at the end."""
    lines: List[str] = []
    for finding in result.findings:
        status = ""
        if finding.suppressed:
            status = " [suppressed]"
        elif finding.baselined:
            status = " [baselined]"
        if status and not result.show_all:
            continue
        lines.append(
            f"{finding.path}:{finding.line}: {finding.rule} "
            f"{finding.message}{status}"
        )
    for entry in result.stale_baseline:
        lines.append(
            f"warning: stale baseline entry {entry.rule} at {entry.path} "
            f"({entry.line_text!r}) -- remove it"
        )
    active = result.active_findings()
    checked = getattr(result, "checked_count", None)
    if checked is None:
        checked = len(result.files)
    summary = (
        f"{len(active)} finding(s)"
        f" ({len(result.findings) - len(active)} suppressed/baselined,"
        f" {checked} file(s) checked)"
    )
    cache_status = getattr(result, "cache_status", "disabled")
    if cache_status != "disabled":
        summary += (
            f" [cache {cache_status}:"
            f" {len(getattr(result, 'reanalyzed', []))} re-analyzed]"
        )
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: "LintResult") -> str:
    """Machine-readable report for CI."""
    checked = getattr(result, "checked_count", None)
    if checked is None:
        checked = len(result.files)
    payload = {
        "files_checked": checked,
        "cache_status": getattr(result, "cache_status", "disabled"),
        "reanalyzed": sorted(getattr(result, "reanalyzed", [])),
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "line_text": finding.line_text,
                "suppressed": finding.suppressed,
                "baselined": finding.baselined,
            }
            for finding in result.findings
        ],
        "stale_baseline": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "line_text": entry.line_text,
            }
            for entry in result.stale_baseline
        ],
        "active_count": len(result.active_findings()),
    }
    return json.dumps(payload, indent=2)


def format_sarif(result: "LintResult") -> str:
    """SARIF 2.1.0 report -- the interchange format CI code-scanning
    UIs ingest to annotate pull requests.

    Suppressed and baselined findings are carried as SARIF
    suppressions (``inSource`` for inline ``lint-disable`` comments,
    ``external`` for baseline entries) so viewers show them as
    reviewed rather than hiding them.
    """
    from repro.devtools.core import all_rules

    rules = [
        {
            "id": rule_id,
            "name": rule_class.name,
            "fullDescription": {"text": rule_class.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, rule_class in sorted(all_rules().items())
    ]
    results = []
    for finding in result.findings:
        entry = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": finding.line},
                    }
                }
            ],
        }
        if finding.suppressed or finding.baselined:
            entry["suppressions"] = [
                {"kind": "inSource" if finding.suppressed else "external"}
            ]
        results.append(entry)
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/LINT.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
