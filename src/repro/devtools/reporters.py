"""Reporters: render a lint run as text.  No printing here -- the CLI
owns the output stream (rule ST02 applies to this package too)."""

from __future__ import annotations

import json
from typing import List

__all__ = ["format_human", "format_json"]


def format_human(result: "LintResult") -> str:
    """One line per finding, grouped status summary at the end."""
    lines: List[str] = []
    for finding in result.findings:
        status = ""
        if finding.suppressed:
            status = " [suppressed]"
        elif finding.baselined:
            status = " [baselined]"
        if status and not result.show_all:
            continue
        lines.append(
            f"{finding.path}:{finding.line}: {finding.rule} "
            f"{finding.message}{status}"
        )
    for entry in result.stale_baseline:
        lines.append(
            f"warning: stale baseline entry {entry.rule} at {entry.path} "
            f"({entry.line_text!r}) -- remove it"
        )
    active = result.active_findings()
    checked = getattr(result, "checked_count", None)
    if checked is None:
        checked = len(result.files)
    summary = (
        f"{len(active)} finding(s)"
        f" ({len(result.findings) - len(active)} suppressed/baselined,"
        f" {checked} file(s) checked)"
    )
    cache_status = getattr(result, "cache_status", "disabled")
    if cache_status != "disabled":
        summary += (
            f" [cache {cache_status}:"
            f" {len(getattr(result, 'reanalyzed', []))} re-analyzed]"
        )
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: "LintResult") -> str:
    """Machine-readable report for CI."""
    checked = getattr(result, "checked_count", None)
    if checked is None:
        checked = len(result.files)
    payload = {
        "files_checked": checked,
        "cache_status": getattr(result, "cache_status", "disabled"),
        "reanalyzed": sorted(getattr(result, "reanalyzed", [])),
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "line_text": finding.line_text,
                "suppressed": finding.suppressed,
                "baselined": finding.baselined,
            }
            for finding in result.findings
        ],
        "stale_baseline": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "line_text": entry.line_text,
            }
            for entry in result.stale_baseline
        ],
        "active_count": len(result.active_findings()),
    }
    return json.dumps(payload, indent=2)
