"""The lint runner: collect files, build the model, apply the rules.

``run_lint`` is the single entry point shared by the CLI, the
``repro lint`` subcommand, and the test suite.  It never prints and
never exits -- it returns a :class:`LintResult`; exit-code policy
lives in :mod:`repro.devtools.cli`.

Incrementality: with ``use_cache=True`` (the default) the runner
hashes every file, consults the manifest under ``.lint-cache/``
(:mod:`repro.devtools.analysis.cache`), and

* on a **hit** (nothing changed) reuses every cached finding without
  parsing a single file;
* on a **partial** run parses everything once (the whole-program model
  is always built from the full universe) but re-runs file- and
  cone-scoped rules only over the invalid files, reusing cached
  findings for the rest; global rules always re-run.

Suppression state is cached with the findings (it is a pure function
of the unchanged file text); baseline matching is recomputed fresh on
every run so baseline edits take effect immediately.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.core import Finding, Rule, SourceFile, all_rules
from repro.devtools.project import build_project

__all__ = ["LintResult", "collect_files", "run_lint"]

DEFAULT_CACHE_DIR = ".lint-cache"


@dataclass
class LintResult:
    """Everything one lint run produced.

    Attributes:
        findings: all findings, sorted by (path, line, rule), with
            ``suppressed``/``baselined`` already resolved.
        files: the source files that were parsed this run (empty on a
            full cache hit -- see ``files_total``).
        stale_baseline: committed entries nothing matched.
        show_all: reporters include suppressed/baselined lines too.
        files_total: number of files in the lint universe (always set,
            even when nothing was parsed).
        reanalyzed: relpaths actually re-analyzed this run -- empty on
            a full cache hit, everything on a cold run.
        cache_status: ``"disabled"``, ``"cold"``, ``"hit"``, or
            ``"partial"``.
    """

    findings: List[Finding] = field(default_factory=list)
    files: List[SourceFile] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    show_all: bool = False
    files_total: Optional[int] = None
    reanalyzed: List[str] = field(default_factory=list)
    cache_status: str = "disabled"

    def active_findings(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.active]

    @property
    def ok(self) -> bool:
        return not self.active_findings()

    @property
    def checked_count(self) -> int:
        return self.files_total if self.files_total is not None else len(self.files)


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of .py files."""
    out: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if "__pycache__" in candidate.parts:
                    continue
                out.add(candidate.resolve())
        elif path.suffix == ".py" and path.is_file():
            out.add(path.resolve())
    return sorted(out)


def _relpath_for(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _finding_to_raw(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "line": finding.line,
        "message": finding.message,
        "line_text": finding.line_text,
        "suppressed": finding.suppressed,
    }


def _finding_from_raw(path: str, raw: dict) -> Optional[Finding]:
    try:
        return Finding(
            rule=str(raw["rule"]),
            path=path,
            line=int(raw["line"]),
            message=str(raw["message"]),
            line_text=str(raw.get("line_text", "")),
            suppressed=bool(raw.get("suppressed", False)),
        )
    except (KeyError, TypeError, ValueError):
        return None


def _external_hashes(
    rules: Sequence[Rule], root: Path
) -> Dict[str, str]:
    from repro.devtools.analysis.cache import content_hash

    out: Dict[str, str] = {}
    for rule in rules:
        for path in rule.external_inputs(root):
            relpath = _relpath_for(Path(path), root)
            if relpath in out:
                continue
            try:
                out[relpath] = content_hash(
                    Path(path).read_text(encoding="utf-8")
                )
            except OSError:
                out[relpath] = "<missing>"
    return out


def run_lint(
    paths: Sequence[Path],
    project_root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    select: Optional[Set[str]] = None,
    show_all: bool = False,
    use_cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> LintResult:
    """Run the registered rules over ``paths``.

    Args:
        paths: files and/or directories to lint.
        project_root: repository root; defaults to the current
            directory.  Relative finding paths, the baseline, and the
            API-drift targets resolve against it.
        baseline_path: baseline JSON file (missing file = empty
            baseline; None = no baselining).
        select: rule ids to run (None = all registered rules).
        show_all: carry suppressed/baselined findings into reports.
        use_cache: reuse findings for files whose content and import
            cone are unchanged since the cached run.
        cache_dir: cache directory (default: ``.lint-cache`` under the
            project root).
    """
    from repro.devtools.analysis.cache import (
        AnalysisCache,
        compute_signature,
        content_hash,
    )
    from repro.devtools.analysis.contracts import default_registry
    from repro.devtools.analysis.effects import default_effect_registry

    root = (project_root or Path.cwd()).resolve()
    file_paths = collect_files(paths)

    rule_classes = all_rules()
    if select:
        unknown = select - set(rule_classes)
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rule_classes = {rule_id: rule_classes[rule_id] for rule_id in select}
    rules = {rule_id: rule_classes[rule_id]() for rule_id in sorted(rule_classes)}

    # Read and hash every file up front; parsing happens only if needed.
    texts: Dict[str, Tuple[Path, str]] = {}
    current: Dict[str, str] = {}
    for path in file_paths:
        relpath = _relpath_for(path, root)
        text = path.read_text(encoding="utf-8")
        texts[relpath] = (path, text)
        current[relpath] = content_hash(text)

    externals = _external_hashes(list(rules.values()), root)
    signature = compute_signature(
        list(rules),
        default_registry().digest(),
        list(current),
        effects_digest=default_effect_registry().digest(),
    )

    cache: Optional[AnalysisCache] = None
    if use_cache:
        cache = AnalysisCache(cache_dir or (root / DEFAULT_CACHE_DIR))
        plan = cache.plan(signature, current, externals)
    else:
        from repro.devtools.analysis.cache import CachePlan

        plan = CachePlan(
            status="disabled", dirty=sorted(current), externals_changed=True
        )

    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()

    #: relpath -> rule id -> raw finding dicts, for the next manifest.
    raw_by_file: Dict[str, Dict[str, List[dict]]] = {
        relpath: {} for relpath in current
    }
    unresolved: List[Finding] = []
    files: List[SourceFile] = []
    deps: Dict[str, Dict[str, str]] = {}

    if plan.status == "hit":
        # Nothing changed: reuse every finding without parsing.
        for relpath, entry in plan.valid.items():
            for rule_id, items in (entry.get("findings") or {}).items():
                if rule_id not in rules:
                    continue
                kept: List[dict] = []
                for raw in items:
                    finding = _finding_from_raw(relpath, raw)
                    if finding is not None:
                        unresolved.append(finding)
                        kept.append(raw)
                raw_by_file[relpath][rule_id] = kept
            deps[relpath] = dict(entry.get("deps") or {})
    else:
        for relpath in sorted(current):
            path, text = texts[relpath]
            tree = ast.parse(text, filename=str(path))
            files.append(SourceFile(path, relpath, text, tree))
        project = build_project(files, root=root)
        project._all_files = files

        dirty_set = set(plan.dirty)
        scoped_targets = [file for file in files if file.relpath in dirty_set]
        for rule_id, rule in rules.items():
            scoped = rule.scope in ("file", "cone")
            targets = scoped_targets if scoped else files
            fresh: List[Finding] = []
            by_path = {file.relpath: file for file in files}
            for finding in rule.run(project, targets):
                file = by_path.get(finding.path)
                if file is not None and finding.suppressed is False:
                    finding = replace(
                        finding,
                        suppressed=file.is_suppressed(
                            finding.rule, finding.line
                        ),
                    )
                fresh.append(finding)
            if scoped:
                # Keep cached findings for files this rule skipped.
                for relpath, entry in plan.valid.items():
                    for raw in (entry.get("findings") or {}).get(rule_id, []):
                        finding = _finding_from_raw(relpath, raw)
                        if finding is not None:
                            fresh.append(finding)
            for finding in fresh:
                unresolved.append(finding)
                raw_by_file.setdefault(finding.path, {}).setdefault(
                    rule_id, []
                ).append(_finding_to_raw(finding))

        from repro.devtools.analysis.model import get_analysis

        analysis = get_analysis(project, files)
        for relpath in current:
            deps[relpath] = {
                dep: current[dep]
                for dep in analysis.transitive_imports(relpath)
                if dep in current
            }

    findings: List[Finding] = []
    for finding in unresolved:
        findings.append(
            replace(
                finding,
                baselined=(not finding.suppressed)
                and baseline.matches(finding),
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    if cache is not None:
        cache.save(
            AnalysisCache.build_manifest(
                signature=signature,
                current=current,
                deps=deps,
                findings_by_file={
                    relpath: rules_map
                    for relpath, rules_map in raw_by_file.items()
                    if relpath in current
                },
                externals=externals,
            )
        )

    return LintResult(
        findings=findings,
        files=files,
        stale_baseline=baseline.stale_entries() if baseline_path else [],
        show_all=show_all,
        files_total=len(current),
        reanalyzed=list(plan.dirty),
        cache_status=plan.status,
    )
