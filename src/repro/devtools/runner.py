"""The lint runner: collect files, build the model, apply the rules.

``run_lint`` is the single entry point shared by the CLI, the
``repro lint`` subcommand, and the test suite.  It never prints and
never exits -- it returns a :class:`LintResult`; exit-code policy
lives in :mod:`repro.devtools.cli`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.core import (
    Finding,
    LintConfig,
    SourceFile,
    all_rules,
    load_source_file,
)
from repro.devtools.project import build_project

__all__ = ["LintResult", "collect_files", "run_lint"]


@dataclass
class LintResult:
    """Everything one lint run produced.

    Attributes:
        findings: all findings, sorted by (path, line, rule), with
            ``suppressed``/``baselined`` already resolved.
        files: the source files that were checked.
        stale_baseline: committed entries nothing matched.
        show_all: reporters include suppressed/baselined lines too.
    """

    findings: List[Finding] = field(default_factory=list)
    files: List[SourceFile] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    show_all: bool = False

    def active_findings(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.active]

    @property
    def ok(self) -> bool:
        return not self.active_findings()


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of .py files."""
    out: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if "__pycache__" in candidate.parts:
                    continue
                out.add(candidate.resolve())
        elif path.suffix == ".py" and path.is_file():
            out.add(path.resolve())
    return sorted(out)


def run_lint(
    paths: Sequence[Path],
    project_root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    select: Optional[Set[str]] = None,
    show_all: bool = False,
) -> LintResult:
    """Run the registered rules over ``paths``.

    Args:
        paths: files and/or directories to lint.
        project_root: repository root; defaults to the current
            directory.  Relative finding paths, the baseline, and the
            API-drift targets resolve against it.
        baseline_path: baseline JSON file (missing file = empty
            baseline; None = no baselining).
        select: rule ids to run (None = all registered rules).
        show_all: carry suppressed/baselined findings into reports.
    """
    root = (project_root or Path.cwd()).resolve()
    files = [load_source_file(path, root) for path in collect_files(paths)]
    project = build_project(files, root=root)

    rules = all_rules()
    if select:
        unknown = select - set(rules)
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = {rule_id: rules[rule_id] for rule_id in select}

    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()

    by_path = {file.relpath: file for file in files}
    findings: List[Finding] = []
    for rule_id in sorted(rules):
        rule = rules[rule_id]()
        for finding in rule.run(project, files):
            file = by_path.get(finding.path)
            suppressed = bool(
                file and file.is_suppressed(finding.rule, finding.line)
            )
            resolved = Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                message=finding.message,
                line_text=finding.line_text,
                suppressed=suppressed,
                baselined=(not suppressed) and baseline.matches(finding),
            )
            findings.append(resolved)

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return LintResult(
        findings=findings,
        files=files,
        stale_baseline=baseline.stale_entries() if baseline_path else [],
        show_all=show_all,
    )


def run_lint_config(config: LintConfig, show_all: bool = False) -> LintResult:
    """Convenience wrapper taking a :class:`LintConfig`."""
    return run_lint(
        paths=config.paths,
        project_root=config.project_root,
        baseline_path=config.baseline_path,
        select=config.select,
        show_all=show_all,
    )
