"""Development tooling: the project's own static-analysis framework.

``repro.devtools`` is a dependency-free, stdlib-``ast`` linter built
for this codebase's specific hazards: a threaded serving stack whose
trust math must not race, and numeric trust/suspicion state that must
never be compared with ``==``.  It ships eight rule families:
concurrency (lock-order inversions, blocking I/O under locks,
``_GUARDED_BY`` violations), numeric hygiene, API drift, structure,
and -- via the whole-program engine in ``repro.devtools.analysis`` --
domain invariants (DI, interval analysis against a declarative
contract registry), architecture (AR, layering DAG plus import
cycles), exception discipline (EX, what escapes HTTP handlers and CLI
mains), and dead exports (DX).  All of it sits behind a registry with
an incremental content-hash cache (``.lint-cache/``), inline
``# repro: lint-disable[RULE]`` suppressions, a committed baseline for
grandfathered findings, and human/JSON reporters.

Run it as ``repro lint src`` or ``python -m repro.devtools src``; the
exit code is the CLI convention (0 clean, 1 findings, 2 usage or
internal error).  See ``docs/LINT.md`` for the rule catalog.
"""

from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.core import Finding, Rule, SourceFile, all_rules
from repro.devtools.runner import LintResult, run_lint

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "Rule",
    "SourceFile",
    "all_rules",
    "run_lint",
]
