"""Development tooling: the project's own static-analysis framework.

``repro.devtools`` is a dependency-free, stdlib-``ast`` linter built
for this codebase's specific hazards: a threaded serving stack whose
trust math must not race, and numeric trust/suspicion state that must
never be compared with ``==``.  It ships four rule families --
concurrency (lock-order inversions, blocking I/O under locks,
``_GUARDED_BY`` violations), numeric hygiene, API drift, and structure
-- behind a registry with per-file parse caching, inline
``# repro: lint-disable[RULE]`` suppressions, a committed baseline for
grandfathered findings, and human/JSON reporters.

Run it as ``repro lint src`` or ``python -m repro.devtools src``; the
exit code is the CLI convention (0 clean, 1 findings, 2 usage or
internal error).  See ``docs/LINT.md`` for the rule catalog.
"""

from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.core import Finding, LintConfig, Rule, SourceFile, all_rules
from repro.devtools.runner import LintResult, run_lint

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "SourceFile",
    "all_rules",
    "run_lint",
]
