"""Concurrency rules: lock ordering, blocking I/O, declared guards.

The serving stack (``repro.service``) nests a per-shard ``RLock``, a
global trust lock, a counter lock, and the WAL's own lock.  Related
work on iterative reputation systems shows aggregation-state
corruption *compounds* across update rounds, so these rules turn the
locking discipline into a machine-checked invariant instead of a code
review item:

* **CC01** -- builds the whole-program lock-acquisition graph (lexical
  ``with`` nesting plus project-resolvable calls made while holding a
  lock) and flags cycles (lock-order inversions) and re-acquisition of
  non-reentrant locks.
* **CC02** -- flags calls that (transitively) reach blocking I/O
  (``time.sleep``, ``os.fsync``, ``subprocess``, sockets, builtin
  ``open``) while a lock is lexically held.  Latency under a shard
  lock is serialized latency for every product on the shard.
* **CC03** -- enforces ``_GUARDED_BY`` class declarations: a write to
  a declared attribute (or a mutating call through it) outside a
  ``with <receiver>.<lock>:`` region is a data race by declaration.
  ``__init__``/``__new__`` are exempt, as are functions whose
  docstring states the synchronization contract ("lock held",
  "single-threaded", "write gate") or whose name ends in ``_locked``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.core import Finding, Rule, SourceFile, register
from repro.devtools.project import FunctionModel, LockNode, ProjectModel

# Method-name prefixes treated as mutations for CC03's call clause.
MUTATOR_PREFIXES = (
    "add", "append", "apply", "clear", "dec", "discard", "drain", "extend",
    "inc", "insert", "load", "merge", "observe", "pop", "prune", "push",
    "record", "register", "remove", "set", "update", "write",
)

_Witness = Tuple[str, int, str]  # (relpath, line, via-qualname)


def _lock_label(node: LockNode) -> str:
    return f"{node[0]}.{node[1]}"


def _collect_edges(
    project: ProjectModel,
) -> Dict[LockNode, Dict[LockNode, _Witness]]:
    """Adjacency map of ``A held -> B acquired`` with first witnesses."""
    edges: Dict[LockNode, Dict[LockNode, _Witness]] = {}

    def add(src: LockNode, dst: LockNode, witness: _Witness) -> None:
        edges.setdefault(src, {}).setdefault(dst, witness)

    for fn in project.functions.values():
        for edge in fn.edges:
            add(edge.src, edge.dst, (fn.file.relpath, edge.line, fn.qualname))
        for call in fn.calls:
            if not call.held or call.callee is None:
                continue
            for dst in project.acquires(call.callee):
                for held in call.held:
                    add(
                        held.node,
                        dst,
                        (fn.file.relpath, call.line, fn.qualname),
                    )
    return edges


@register
class LockOrderRule(Rule):
    id = "CC01"
    name = "lock-order-inversion"
    rationale = (
        "Two code paths acquiring the same locks in opposite orders can "
        "deadlock under concurrency; every lock pair must have one global "
        "order. Re-acquiring a non-reentrant lock self-deadlocks."
    )

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        edges = _collect_edges(project)
        by_path = {file.relpath: file for file in files}

        def finding_at(witness: _Witness, message: str) -> Optional[Finding]:
            file = by_path.get(witness[0])
            if file is None:
                return None
            return self.finding(file, witness[1], message)

        # Self-edges on non-reentrant primitives.
        for src in sorted(edges):
            witness = edges[src].get(src)
            if witness is not None and src[2] != "RLock":
                found = finding_at(
                    witness,
                    f"non-reentrant {src[2]} {_lock_label(src)} is acquired "
                    f"while already held (in {witness[2]})",
                )
                if found:
                    yield found

        # Cycles between distinct locks.
        reported: Set[frozenset] = set()
        for start in sorted(edges):
            cycle = self._shortest_cycle(edges, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            path = " -> ".join(_lock_label(node) for node in cycle + [cycle[0]])
            witnesses = []
            for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
                relpath, line, via = edges[a][b]
                witnesses.append(
                    f"{_lock_label(a)} -> {_lock_label(b)} in {via} "
                    f"({relpath}:{line})"
                )
            first = edges[cycle[0]][cycle[1]] if len(cycle) > 1 else None
            if first is None:
                continue
            found = finding_at(
                first,
                f"lock-order inversion: {path}; " + "; ".join(witnesses),
            )
            if found:
                yield found

    @staticmethod
    def _shortest_cycle(
        edges: Dict[LockNode, Dict[LockNode, _Witness]], start: LockNode
    ) -> Optional[List[LockNode]]:
        """BFS for the shortest cycle through ``start`` (length >= 2)."""
        parents: Dict[LockNode, LockNode] = {}
        queue = deque(dst for dst in sorted(edges.get(start, ())) if dst != start)
        for node in list(queue):
            parents.setdefault(node, start)
        while queue:
            node = queue.popleft()
            for nxt in sorted(edges.get(node, ())):
                if nxt == start:
                    path = [node]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                if nxt not in parents:
                    parents[nxt] = node
                    queue.append(nxt)
        return None


@register
class BlockingUnderLockRule(Rule):
    id = "CC02"
    name = "blocking-call-under-lock"
    rationale = (
        "A lock held across blocking I/O serializes every thread needing "
        "that lock behind the device; under a shard lock that is the tail "
        "latency of every product on the shard."
    )

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        by_path = {file.relpath: file for file in files}
        seen: Set[Tuple[str, int, str]] = set()
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            file = by_path.get(fn.file.relpath)
            if file is None:
                continue
            for seed in fn.seeds:
                if not seed.held:
                    continue
                key = (fn.file.relpath, seed.line, seed.seed)
                if key in seen:
                    continue
                seen.add(key)
                held = ", ".join(_lock_label(h.node) for h in seed.held)
                yield self.finding(
                    file,
                    seed.line,
                    f"blocking call {seed.seed}() while holding {held}",
                )
            for call in fn.calls:
                if not call.held or call.callee is None:
                    continue
                reason = project.blocking_reason(call.callee)
                if reason is None:
                    continue
                key = (fn.file.relpath, call.line, call.func_src)
                if key in seen:
                    continue
                seen.add(key)
                held = ", ".join(_lock_label(h.node) for h in call.held)
                yield self.finding(
                    file,
                    call.line,
                    f"blocking call {call.func_src}() while holding {held} "
                    f"(reaches {reason})",
                )


@register
class GuardedByRule(Rule):
    id = "CC03"
    name = "guarded-attribute-outside-lock"
    rationale = (
        "_GUARDED_BY declares which lock owns each piece of shared state; "
        "a write (or mutating call) outside that lock is a data race that "
        "silently corrupts trust and suspicion tallies."
    )

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        by_path = {file.relpath: file for file in files}
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            if fn.node.name in ("__init__", "__new__") or fn.assume_locked:
                continue
            file = by_path.get(fn.file.relpath)
            if file is None:
                continue
            for write in fn.writes:
                if write.receiver_type is None:
                    continue
                violation = self._check(project, fn, write.receiver_type,
                                        write.receiver, write.attr, write.held)
                if violation:
                    yield self.finding(
                        file,
                        write.line,
                        f"write to {write.receiver}.{write.attr} ({violation})",
                    )
            for call in fn.guard_calls:
                if not call.method.startswith(MUTATOR_PREFIXES):
                    continue
                violation = self._check(project, fn, call.receiver_type,
                                        call.receiver, call.attr, call.held)
                if violation:
                    yield self.finding(
                        file,
                        call.line,
                        f"mutating call {call.receiver}.{call.attr}"
                        f".{call.method}() ({violation})",
                    )

    @staticmethod
    def _check(
        project: ProjectModel,
        fn: FunctionModel,
        receiver_type: str,
        receiver: str,
        attr: str,
        held,
    ) -> Optional[str]:
        """Return a violation description, or None when properly locked."""
        guard = project.guard_for(receiver_type, attr)
        if guard is None:
            return None
        lock = project.lock_node(receiver_type, guard)
        if lock is None:
            return None
        for heldlock in held:
            if heldlock.node == lock and heldlock.receiver == receiver:
                return None
        return (
            f"declared _GUARDED_BY {receiver_type}.{guard} in "
            f"{fn.qualname}, but `with {receiver}.{guard}:` is not held"
        )
