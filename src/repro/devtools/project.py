"""Whole-program model backing the concurrency rules.

The concurrency family needs more than one AST at a time: *which class
does this receiver belong to*, *which lock does ``shard.lock`` denote*,
and *what does this method acquire, transitively*.  This module builds
that model with deliberately lightweight inference:

* **Class index** -- every top-level class, its base classes (resolved
  by name within the linted files), the locks it creates
  (``self._lock = threading.Lock()``), its ``_GUARDED_BY``
  declaration, and the types of its attributes (from ``self.x =
  ClassName(...)`` assignments and ``self.x: ClassName`` annotations,
  unwrapping ``Optional``/unions/string annotations).
* **Local types** -- parameter annotations, assignments from known
  constructors or annotated-return calls, ``cls(...)`` in
  classmethods, and ``for x in self.list_of_T`` element types.
* **Per-function events** -- lock acquisitions (``with recv.attr:``
  where the attribute is a known lock), lock-order edges from lexical
  nesting, call sites with the lock set held at that point, writes to
  attributes, and calls to known-blocking seeds
  (``time.sleep``/``os.fsync``/...).
* **Closures** -- the locks a function acquires transitively through
  project-resolvable calls, and whether it transitively reaches
  blocking I/O.  Generator/contextmanager functions are excluded from
  propagation (their body runs detached from the call site).

Known limitations (documented in ``docs/LINT.md``): property accessors
are invisible (attribute reads never resolve to method bodies), locals
aliasing a guarded attribute escape the guard check, and calls through
unresolvable receivers are skipped rather than guessed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.devtools.core import SourceFile

__all__ = ["ProjectModel", "ClassModel", "FunctionModel", "LockNode", "build_project"]

# A lock's identity: (defining class, attribute name, lock kind).  Two
# instances of one class share a node -- inconsistent ordering between
# instances of the same lock class is exactly the deadlock pattern.
LockNode = Tuple[str, str, str]

_LOCK_CONSTRUCTORS = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "threading.Condition": "Condition",
    "Lock": "Lock",
    "RLock": "RLock",
    "Condition": "Condition",
}

_BLOCKING_SEED_RE = re.compile(
    r"^(time\.sleep"
    r"|os\.fsync|os\.fdatasync"
    r"|select\.select"
    r"|subprocess\.(run|call|check_call|check_output|Popen)"
    r"|socket\.(socket|create_connection)"
    r"|requests\.\w+"
    r"|urllib\.request\.\w+)$"
)

# Docstring idioms this codebase already uses to state "my caller
# synchronizes for me"; such functions are exempt from lexical checks.
_ASSUME_LOCKED_RE = re.compile(r"lock held|single-threaded|write gate", re.IGNORECASE)


@dataclass
class ClassModel:
    """Everything the analyzer knows about one class."""

    name: str
    file: SourceFile
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    attr_types: Dict[str, str] = field(default_factory=dict)
    elem_types: Dict[str, str] = field(default_factory=dict)
    lock_attrs: Dict[str, str] = field(default_factory=dict)
    guarded_by: Dict[str, str] = field(default_factory=dict)


@dataclass
class HeldLock:
    """One lock held at a program point: identity plus receiver text."""

    node: LockNode
    receiver: str


@dataclass
class CallEvent:
    held: Tuple[HeldLock, ...]
    callee: Optional[str]
    func_src: str
    line: int


@dataclass
class SeedEvent:
    held: Tuple[HeldLock, ...]
    seed: str
    line: int


@dataclass
class WriteEvent:
    held: Tuple[HeldLock, ...]
    receiver: str
    receiver_type: Optional[str]
    attr: str
    line: int


@dataclass
class GuardCallEvent:
    """A method call routed through a possibly-guarded attribute."""

    held: Tuple[HeldLock, ...]
    receiver: str
    receiver_type: str
    attr: str
    method: str
    line: int


@dataclass
class EdgeEvent:
    src: LockNode
    dst: LockNode
    line: int
    via: str


@dataclass
class FunctionModel:
    """One function/method plus its extracted concurrency events."""

    qualname: str
    class_name: Optional[str]
    node: ast.FunctionDef
    file: SourceFile
    is_generator: bool = False
    assume_locked: bool = False
    return_type: Optional[str] = None
    acquired: Set[LockNode] = field(default_factory=set)
    edges: List[EdgeEvent] = field(default_factory=list)
    calls: List[CallEvent] = field(default_factory=list)
    seeds: List[SeedEvent] = field(default_factory=list)
    writes: List[WriteEvent] = field(default_factory=list)
    guard_calls: List[GuardCallEvent] = field(default_factory=list)
    direct_seed: Optional[str] = None


def _annotation_to_type(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort class name from an annotation node."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        base = _annotation_to_type(node.value)
        if base in ("Optional", "Union"):
            inner = node.slice
            parts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            for part in parts:
                resolved = _annotation_to_type(part)
                if resolved not in (None, "None"):
                    return resolved
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            resolved = _annotation_to_type(side)
            if resolved not in (None, "None"):
                return resolved
    return None


def _call_class_name(node: ast.AST) -> Optional[str]:
    """``ClassName(...)`` -> ``ClassName`` (or None)."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


class ProjectModel:
    """Class index, function table, and resolution helpers."""

    def __init__(
        self, files: Sequence[SourceFile], root: Optional[Path] = None
    ) -> None:
        self.files = list(files)
        self.root = root if root is not None else Path.cwd()
        self.classes: Dict[str, ClassModel] = {}
        self._ambiguous: Set[str] = set()
        self.functions: Dict[str, FunctionModel] = {}
        self._acquires_closure: Dict[str, Set[LockNode]] = {}
        self._blocking_closure: Dict[str, Optional[str]] = {}
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        for file in self.files:
            for node in file.tree.body:
                if isinstance(node, ast.ClassDef):
                    self._index_class(node, file)
        for file in self.files:
            for node in file.tree.body:
                if isinstance(node, ast.ClassDef):
                    model = self.classes.get(node.name)
                    if model is not None and model.node is node:
                        for item in node.body:
                            if isinstance(item, ast.FunctionDef):
                                self._index_function(item, file, node.name)
                elif isinstance(node, ast.FunctionDef):
                    self._index_function(node, file, None)
        for fn in self.functions.values():
            _FunctionAnalyzer(self, fn).analyze()
        self._close_acquires()
        self._close_blocking()

    def _index_class(self, node: ast.ClassDef, file: SourceFile) -> None:
        if node.name in self.classes or node.name in self._ambiguous:
            self._ambiguous.add(node.name)
            self.classes.pop(node.name, None)
            return
        model = ClassModel(name=node.name, file=file, node=node)
        model.bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
        for item in node.body:
            if isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name) and target.id == "_GUARDED_BY":
                        model.guarded_by.update(self._literal_str_dict(item.value))
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                # Class-level annotations (``server: SomeServer``) type
                # the attribute the same way a method-body AnnAssign does.
                annotated = _annotation_to_type(item.annotation)
                if annotated:
                    model.attr_types.setdefault(item.target.id, annotated)
            if isinstance(item, ast.FunctionDef):
                self._collect_attrs(item, model)
        self.classes[node.name] = model

    @staticmethod
    def _literal_str_dict(node: ast.AST) -> Dict[str, str]:
        out: Dict[str, str] = {}
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    out[key.value] = value.value
        return out

    def _collect_attrs(self, method: ast.FunctionDef, model: ClassModel) -> None:
        params: Dict[str, Optional[str]] = {
            arg.arg: _annotation_to_type(arg.annotation) for arg in method.args.args
        }

        def value_type(value: ast.AST) -> Optional[str]:
            name = _call_class_name(value)
            if name in _LOCK_CONSTRUCTORS:
                return None
            if name:
                return name
            if isinstance(value, ast.Name):
                return params.get(value.id)
            if isinstance(value, ast.IfExp):
                return value_type(value.body) or value_type(value.orelse)
            return None

        for stmt in ast.walk(method):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if annotation is not None:
                annotated = _annotation_to_type(annotation)
                if annotated:
                    model.attr_types.setdefault(attr, annotated)
            if value is None:
                continue
            lock_name = None
            if isinstance(value, ast.Call):
                lock_name = _LOCK_CONSTRUCTORS.get(ast.unparse(value.func))
            if lock_name:
                model.lock_attrs.setdefault(attr, lock_name)
                continue
            inferred = value_type(value)
            if inferred:
                model.attr_types.setdefault(attr, inferred)
            elem: Optional[str] = None
            if isinstance(value, ast.ListComp):
                elem = _call_class_name(value.elt)
            elif isinstance(value, ast.List) and value.elts:
                elem = _call_class_name(value.elts[0])
            if elem:
                model.elem_types.setdefault(attr, elem)

    def _index_function(
        self, node: ast.FunctionDef, file: SourceFile, class_name: Optional[str]
    ) -> None:
        if class_name is not None:
            qualname = f"{class_name}.{node.name}"
        else:
            qualname = f"{file.relpath}::{node.name}"
        doc = ast.get_docstring(node) or ""
        fn = FunctionModel(
            qualname=qualname,
            class_name=class_name,
            node=node,
            file=file,
            is_generator=self._is_generator(node),
            assume_locked=(
                node.name.endswith("_locked") or bool(_ASSUME_LOCKED_RE.search(doc))
            ),
            return_type=_annotation_to_type(node.returns),
        )
        self.functions[qualname] = fn

    @staticmethod
    def _is_generator(node: ast.FunctionDef) -> bool:
        for child in ast.walk(node):
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                return True
        return False

    # -- class lookups ----------------------------------------------------

    def mro(self, class_name: str) -> List[ClassModel]:
        """The class plus project-resolvable bases, nearest first."""
        out: List[ClassModel] = []
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            model = self.classes.get(name)
            if model is None:
                continue
            out.append(model)
            queue.extend(model.bases)
        return out

    def attr_type(self, class_name: str, attr: str) -> Optional[str]:
        for model in self.mro(class_name):
            if attr in model.attr_types:
                return model.attr_types[attr]
        return None

    def elem_type(self, class_name: str, attr: str) -> Optional[str]:
        for model in self.mro(class_name):
            if attr in model.elem_types:
                return model.elem_types[attr]
        return None

    def lock_node(self, class_name: str, attr: str) -> Optional[LockNode]:
        for model in self.mro(class_name):
            if attr in model.lock_attrs:
                return (model.name, attr, model.lock_attrs[attr])
        return None

    def guard_for(self, class_name: str, attr: str) -> Optional[str]:
        for model in self.mro(class_name):
            if attr in model.guarded_by:
                return model.guarded_by[attr]
        return None

    def method(self, class_name: str, name: str) -> Optional[FunctionModel]:
        for model in self.mro(class_name):
            fn = self.functions.get(f"{model.name}.{name}")
            if fn is not None:
                return fn
        return None

    def function_typer(self, fn: FunctionModel):
        """A callable mapping expression nodes inside ``fn`` to class
        names, using the same local-type inference as the concurrency
        analysis (parameter annotations, constructor assignments,
        attribute types).  Returns None for untypable expressions."""
        analyzer = _FunctionAnalyzer(self, fn)
        return analyzer._expr_type

    # -- closures ---------------------------------------------------------

    def _close_acquires(self) -> None:
        closure = {
            qn: set(fn.acquired) for qn, fn in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for qn, fn in self.functions.items():
                for call in fn.calls:
                    callee = call.callee
                    if callee is None or callee not in closure:
                        continue
                    if self.functions[callee].is_generator:
                        continue
                    extra = closure[callee] - closure[qn]
                    if extra:
                        closure[qn] |= extra
                        changed = True
        self._acquires_closure = closure

    def _close_blocking(self) -> None:
        reason: Dict[str, Optional[str]] = {
            qn: (fn.direct_seed if fn.direct_seed else None)
            for qn, fn in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for qn, fn in self.functions.items():
                if reason[qn] is not None:
                    continue
                for call in fn.calls:
                    callee = call.callee
                    if callee is None or reason.get(callee) is None:
                        continue
                    if self.functions[callee].is_generator:
                        continue
                    reason[qn] = f"{callee} -> {reason[callee]}"
                    changed = True
                    break
        self._blocking_closure = reason

    def acquires(self, qualname: str) -> Set[LockNode]:
        """Locks a function acquires, transitively through known calls."""
        return self._acquires_closure.get(qualname, set())

    def blocking_reason(self, qualname: str) -> Optional[str]:
        """Why a function is considered blocking (call chain to a seed)."""
        return self._blocking_closure.get(qualname)


class _FunctionAnalyzer(ast.NodeVisitor):
    """Extracts one function's concurrency events with a lexical held-set."""

    def __init__(self, project: ProjectModel, fn: FunctionModel) -> None:
        self.project = project
        self.fn = fn
        self.held: List[HeldLock] = []
        # _build_env resolves annotated-return calls via _expr_type,
        # which falls back to self.env -- seed it before building.
        self.env: Dict[str, str] = {}
        self.env = self._build_env()

    # -- local type environment -------------------------------------------

    def _build_env(self) -> Dict[str, str]:
        env: Dict[str, str] = {}
        fn = self.fn
        args = fn.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            annotated = _annotation_to_type(arg.annotation)
            if annotated:
                env[arg.arg] = annotated
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self._expr_type(stmt.value, env)
                    if inferred:
                        env[target.id] = inferred
            elif isinstance(stmt, ast.For) and isinstance(stmt.target, ast.Name):
                elem = self._iter_elem_type(stmt.iter, env)
                if elem:
                    env[stmt.target.id] = elem
        return env

    def _iter_elem_type(self, node: ast.AST, env: Dict[str, str]) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            base = self._expr_type(node.value, env)
            if base:
                return self.project.elem_type(base, node.attr)
        if isinstance(node, ast.Name):
            # No local list element tracking; only attributes carry it.
            return None
        return None

    def _expr_type(self, node: ast.AST, env: Optional[Dict[str, str]] = None) -> Optional[str]:
        env = self.env if env is None else env
        if isinstance(node, ast.Name):
            if node.id == "self" and self.fn.class_name:
                return self.fn.class_name
            if node.id == "cls" and self.fn.class_name:
                return self.fn.class_name
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._expr_type(node.value, env)
            if base:
                return self.project.attr_type(base, node.attr)
            return None
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                if node.func.id == "cls" and self.fn.class_name:
                    return self.fn.class_name
                if node.func.id in self.project.classes:
                    return node.func.id
            callee = self._resolve_call(node.func)
            if callee is not None:
                return self.project.functions[callee].return_type
            return None
        if isinstance(node, ast.IfExp):
            return self._expr_type(node.body, env) or self._expr_type(node.orelse, env)
        return None

    # -- resolution --------------------------------------------------------

    def _resolve_call(self, func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name):
            qualname = f"{self.fn.file.relpath}::{func.id}"
            if qualname in self.project.functions:
                return qualname
            return None
        if isinstance(func, ast.Attribute):
            base = self._expr_type(func.value)
            if base:
                method = self.project.method(base, func.attr)
                if method is not None:
                    return method.qualname
        return None

    def _resolve_lock(self, expr: ast.AST) -> Optional[HeldLock]:
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value)
            if base:
                node = self.project.lock_node(base, expr.attr)
                if node is not None:
                    return HeldLock(node=node, receiver=ast.unparse(expr.value))
        return None

    # -- event collection ---------------------------------------------------

    def analyze(self) -> None:
        for stmt in self.fn.node.body:
            self.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # Nested defs run later, with their own (unknown) lock state.

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_With(self, node: ast.With) -> None:
        acquired = 0
        for item in node.items:
            lock = self._resolve_lock(item.context_expr)
            if lock is not None:
                self.fn.acquired.add(lock.node)
                for held in self.held:
                    self.fn.edges.append(
                        EdgeEvent(
                            src=held.node,
                            dst=lock.node,
                            line=item.context_expr.lineno,
                            via=self.fn.qualname,
                        )
                    )
                self.held.append(lock)
                acquired += 1
            else:
                self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(acquired):
            self.held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        func_src = ast.unparse(node.func)
        held = tuple(self.held)
        if _BLOCKING_SEED_RE.match(func_src) or (
            isinstance(node.func, ast.Name) and node.func.id == "open"
        ):
            self.fn.seeds.append(SeedEvent(held=held, seed=func_src, line=node.lineno))
            if self.fn.direct_seed is None:
                self.fn.direct_seed = func_src
        # Explicit .acquire() on a known lock attribute (scope-free).
        if isinstance(node.func, ast.Attribute) and node.func.attr == "acquire":
            lock = self._resolve_lock(node.func.value)
            if lock is not None:
                self.fn.acquired.add(lock.node)
                for heldlock in self.held:
                    self.fn.edges.append(
                        EdgeEvent(
                            src=heldlock.node,
                            dst=lock.node,
                            line=node.lineno,
                            via=self.fn.qualname,
                        )
                    )
        callee = self._resolve_call(node.func)
        self.fn.calls.append(
            CallEvent(held=held, callee=callee, func_src=func_src, line=node.lineno)
        )
        self._record_guard_chain(node)
        for child in list(node.args) + [kw.value for kw in node.keywords]:
            self.visit(child)
        if isinstance(node.func, ast.Attribute):
            self.visit(node.func.value)

    def _record_guard_chain(self, node: ast.Call) -> None:
        """Flag method calls routed through declared-guarded attributes."""
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        # Walk each attribute link in the receiver chain.
        chain: List[ast.Attribute] = []
        probe: ast.AST = node.func
        while isinstance(probe, ast.Attribute):
            chain.append(probe)
            probe = probe.value
        # chain[-1] is the innermost attribute access; examine every
        # link except the method access itself.
        for attr_node in chain[1:]:
            base = self._expr_type(attr_node.value)
            if base is None:
                continue
            if self.project.guard_for(base, attr_node.attr) is not None:
                self.fn.guard_calls.append(
                    GuardCallEvent(
                        held=tuple(self.held),
                        receiver=ast.unparse(attr_node.value),
                        receiver_type=base,
                        attr=attr_node.attr,
                        method=method,
                        line=node.lineno,
                    )
                )

    def _record_write(self, target: ast.AST, line: int) -> None:
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                self._record_write(element, line)
            return
        if isinstance(target, (ast.Subscript,)):
            target = target.value
        if isinstance(target, ast.Attribute):
            self.fn.writes.append(
                WriteEvent(
                    held=tuple(self.held),
                    receiver=ast.unparse(target.value),
                    receiver_type=self._expr_type(target.value),
                    attr=target.attr,
                    line=line,
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target, node.lineno)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target, node.lineno)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write(node.target, node.lineno)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_write(target, node.lineno)


def build_project(
    files: Sequence[SourceFile], root: Optional[Path] = None
) -> ProjectModel:
    """Build the whole-program model for one lint run."""
    return ProjectModel(files, root=root)
