"""API-drift rule: every exported name stays tested and documented.

The public surface is declared in literal ``__all__`` lists.  Tests
and docs drift silently: a name added to ``__all__`` without a line in
``tests/test_api_surface.py`` is untested API, and one missing from
``docs/API_GUIDE.md`` is undocumented API.  AD01 makes both a lint
failure instead of a review nitpick.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.core import Finding, Rule, SourceFile, register
from repro.devtools.project import ProjectModel

# (project-root-relative target, what a miss means)
_TARGETS = (
    ("tests/test_api_surface.py", "is not covered by"),
    ("docs/API_GUIDE.md", "is not documented in"),
)


def _literal_all(tree: ast.Module) -> Optional[Tuple[int, List[str]]]:
    """The module's literal ``__all__`` list, with its line number."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        names = []
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                names.append(elt.value)
        return node.lineno, names
    return None


@register
class ApiDriftRule(Rule):
    id = "AD01"
    name = "exported-name-untested-or-undocumented"
    rationale = (
        "Every name in a public __all__ must appear in the API surface "
        "test and the API guide; otherwise exports drift from what is "
        "tested and documented."
    )
    scope = "global"

    def external_inputs(self, project_root: Path) -> List[Path]:
        return [
            project_root / relpath
            for relpath, _ in _TARGETS
            if (project_root / relpath).is_file()
        ]

    def run(self, project: ProjectModel, files: List[SourceFile]) -> Iterator[Finding]:
        targets: Dict[str, str] = {}
        for relpath, verb in _TARGETS:
            target = project.root / relpath
            if target.is_file():
                targets[relpath] = target.read_text(encoding="utf-8")
        if not targets:
            return
        word_cache: Dict[str, re.Pattern] = {}
        for file in files:
            if Path(file.relpath).name != "__init__.py":
                continue
            parsed = _literal_all(file.tree)
            if parsed is None:
                continue
            lineno, names = parsed
            for name in names:
                pattern = word_cache.get(name)
                if pattern is None:
                    pattern = re.compile(r"\b" + re.escape(name) + r"\b")
                    word_cache[name] = pattern
                for relpath, verb in _TARGETS:
                    text = targets.get(relpath)
                    if text is None:
                        continue
                    if not pattern.search(text):
                        yield self.finding(
                            file,
                            lineno,
                            f"exported name `{name}` (from {file.relpath}) "
                            f"{verb} {relpath}",
                        )
