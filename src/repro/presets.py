"""Named configuration presets.

One place to get the exact parameterizations the paper's experiments
use (and this library's calibrated operating points), so scripts and
notebooks don't copy magic numbers around.  Every preset is a factory
returning a fresh config object -- mutate-free sharing.
"""

from __future__ import annotations

from repro.detectors.ar_detector import ARModelErrorDetector
from repro.signal.windows import CountWindower, TimeWindower
from repro.simulation.illustrative import IllustrativeConfig
from repro.simulation.marketplace import MarketplaceConfig
from repro.simulation.pipeline import PipelineConfig

__all__ = [
    "paper_illustrative",
    "paper_marketplace_detection",
    "paper_marketplace_aggregation",
    "illustrative_detector",
    "marketplace_pipeline",
    "compact_marketplace",
]


def paper_illustrative() -> IllustrativeConfig:
    """Section III-A.2: 60 days, Poisson 3/day, attack days 30-44."""
    return IllustrativeConfig()


def paper_marketplace_detection() -> MarketplaceConfig:
    """Section IV detection experiment scaling (a1 = 6, a2 = 0.5)."""
    return MarketplaceConfig(a1=6.0, a2=0.5)


def paper_marketplace_aggregation(bias_shift: float = 0.15) -> MarketplaceConfig:
    """Section IV aggregation experiment scaling (a1 = 8).

    Args:
        bias_shift: 0.15 for Figs. 10/11, 0.2 for Fig. 12.
    """
    return MarketplaceConfig(a1=8.0, a2=0.5, bias_shift2=bias_shift)


def illustrative_detector(threshold: float = 0.10) -> ARModelErrorDetector:
    """The Fig. 4 detector: order 4, 50-rating windows stepping by 10.

    The threshold default is this library's calibrated operating point
    (DESIGN.md §5); the paper's 0.02 is in Matlab ``covm`` units.
    """
    return ARModelErrorDetector(
        order=4,
        threshold=threshold,
        scale=1.0,
        level_rule="literal",
        windower=CountWindower(size=50, step=10),
    )


def marketplace_pipeline() -> PipelineConfig:
    """The Section IV pipeline with calibrated knobs."""
    return PipelineConfig()


def compact_marketplace(n_months: int = 6) -> MarketplaceConfig:
    """A quarter-size marketplace preserving per-window rating volume.

    The AR detector needs tens of ratings per 10-day window, so the
    scaled-down world raises the daily rating probability to keep the
    per-product volume near the full marketplace's.  Used by the fast
    tests and the pipeline ablations.
    """
    return MarketplaceConfig(
        n_reliable=120,
        n_careless=60,
        n_pc=60,
        n_months=n_months,
        p_rate=0.04,
    )
