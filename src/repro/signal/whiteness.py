"""Whiteness diagnostics for rating sequences.

The paper's detection philosophy is that honest mean-removed ratings are
approximately white noise while collaborative campaigns inject a
correlated signal.  These helpers quantify that claim directly --
useful both for validating simulated traces and as an ablation detector
(Ljung-Box on the window instead of the AR model error).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import SignalModelError
from repro.signal.levinson import autocorrelation_sequence

__all__ = ["LjungBoxResult", "sample_autocorrelation", "ljung_box"]


@dataclass(frozen=True)
class LjungBoxResult:
    """Ljung-Box portmanteau test result.

    Attributes:
        statistic: the Q statistic.
        p_value: probability of a Q at least this large under the
            white-noise null.
        lags: number of autocorrelation lags pooled into Q.
        is_white: True when the null is *not* rejected at ``alpha``.
        alpha: significance level used for ``is_white``.
    """

    statistic: float
    p_value: float
    lags: int
    is_white: bool
    alpha: float


def sample_autocorrelation(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Normalized sample autocorrelation ``rho[0..max_lag]`` (``rho[0]=1``).

    The series is mean-removed first; a zero-variance series raises
    :class:`SignalModelError` because its autocorrelation is undefined.
    """
    x = np.asarray(x, dtype=float).ravel()
    centered = x - np.mean(x)
    r = autocorrelation_sequence(centered, max_lag)
    # Relative floor: a constant series leaves only rounding residue.
    if r[0] <= 1e-15 * (1.0 + float(np.mean(x)) ** 2):
        raise SignalModelError("autocorrelation undefined for constant series")
    return r / r[0]


def ljung_box(x: np.ndarray, lags: int = 10, alpha: float = 0.05) -> LjungBoxResult:
    """Ljung-Box test for serial correlation.

    Args:
        x: the series to test (mean is removed internally).
        lags: number of autocorrelation lags to pool; clipped to
            ``len(x) - 2`` when the series is short.
        alpha: significance level for the ``is_white`` verdict.

    Returns:
        A :class:`LjungBoxResult`.  A *small* p-value means the series
        is serially correlated -- i.e. a suspicious rating window.
    """
    x = np.asarray(x, dtype=float).ravel()
    n = x.size
    if n < 4:
        raise SignalModelError(f"Ljung-Box needs at least 4 samples, got {n}")
    lags = int(min(lags, n - 2))
    if lags < 1:
        raise SignalModelError("no usable lags for Ljung-Box")
    rho = sample_autocorrelation(x, lags)
    ks = np.arange(1, lags + 1)
    q = float(n * (n + 2) * np.sum(rho[1:] ** 2 / (n - ks)))
    p_value = float(stats.chi2.sf(q, df=lags))
    return LjungBoxResult(
        statistic=q,
        p_value=p_value,
        lags=lags,
        is_white=p_value > alpha,
        alpha=alpha,
    )
