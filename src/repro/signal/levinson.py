"""Levinson-Durbin recursion for solving Toeplitz normal equations.

This is the workhorse behind the autocorrelation (Yule-Walker) method of
all-pole modeling.  Given the autocorrelation sequence ``r[0..p]`` of a
signal, the recursion solves

    R a = -r[1..p]

where ``R`` is the symmetric Toeplitz matrix built from ``r[0..p-1]``,
in O(p^2) time, and produces the prediction-error energies and
reflection coefficients of every intermediate order as a by-product.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SignalModelError

__all__ = ["LevinsonResult", "levinson_durbin", "autocorrelation_sequence"]


@dataclass(frozen=True)
class LevinsonResult:
    """Outcome of a Levinson-Durbin recursion.

    Attributes:
        coefficients: AR coefficients ``[1, a1, ..., ap]`` such that the
            prediction of ``x[n]`` is ``-sum(a[k] * x[n-k])``.
        error: final prediction-error energy (order ``p``).
        reflection: reflection (PARCOR) coefficients ``k1..kp``.
        error_per_order: prediction-error energy after each order
            ``0..p`` (``error_per_order[0]`` is ``r[0]``).
    """

    coefficients: np.ndarray
    error: float
    reflection: np.ndarray
    error_per_order: np.ndarray


def autocorrelation_sequence(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Return the biased sample autocorrelation ``r[0..max_lag]`` of ``x``.

    The biased estimator (divide by ``N`` rather than ``N - lag``)
    guarantees a positive-semidefinite autocorrelation matrix, which the
    Levinson recursion needs for stability.

    Args:
        x: one-dimensional real signal.
        max_lag: largest lag to compute; must satisfy ``max_lag < len(x)``.
    """
    x = np.asarray(x, dtype=float).ravel()
    n = x.size
    if max_lag >= n:
        raise SignalModelError(
            f"max_lag={max_lag} requires more than {n} samples"
        )
    full = np.correlate(x, x, mode="full")
    mid = n - 1
    return full[mid : mid + max_lag + 1] / n


def levinson_durbin(r: np.ndarray, order: int) -> LevinsonResult:
    """Solve the Yule-Walker equations of the given order.

    Args:
        r: autocorrelation sequence ``r[0..order]`` (at least
            ``order + 1`` entries; extra entries are ignored).
        order: AR model order ``p >= 1``.

    Raises:
        SignalModelError: if ``r`` is too short, ``r[0] <= 0``, or the
            recursion encounters a non-positive error energy (signal is
            perfectly predictable at a lower order).
    """
    r = np.asarray(r, dtype=float).ravel()
    if order < 1:
        raise SignalModelError(f"order must be >= 1, got {order}")
    if r.size < order + 1:
        raise SignalModelError(
            f"need {order + 1} autocorrelation lags, got {r.size}"
        )
    if r[0] <= 0.0:
        raise SignalModelError("zero-lag autocorrelation must be positive")

    a = np.zeros(order + 1)
    a[0] = 1.0
    reflection = np.zeros(order)
    error_per_order = np.zeros(order + 1)
    error = float(r[0])
    error_per_order[0] = error

    # Relative floor: error energies at or below machine-noise scale of
    # r[0] mean the signal is perfectly predictable at a lower order.
    error_floor = 1e-12 * float(r[0])
    for m in range(1, order + 1):
        if error <= error_floor:
            raise SignalModelError(
                f"prediction error vanished at order {m - 1}; "
                "signal is perfectly predictable"
            )
        acc = r[m] + float(np.dot(a[1:m], r[1:m][::-1]))
        k = -acc / error
        # Update the coefficient vector in place: a_m(i) = a(i) + k a(m-i).
        new_a = a.copy()
        new_a[m] = k
        new_a[1:m] = a[1:m] + k * a[1:m][::-1]
        a = new_a
        reflection[m - 1] = k
        error *= 1.0 - k * k
        error_per_order[m] = error

    return LevinsonResult(
        coefficients=a,
        error=float(error),
        reflection=reflection,
        error_per_order=error_per_order,
    )
