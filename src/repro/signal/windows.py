"""Sliding windows over time-stamped rating sequences.

The paper divides the rating timeline into (possibly overlapping)
windows in two ways:

* **count windows** -- each window holds a fixed number of ratings
  (Fig. 4 uses 20-rating windows for the moving average and 50-rating
  windows for the AR model error);
* **time windows** -- each window covers a fixed number of days
  (Section IV uses 30-day non-overlapping filter windows and 10-day
  AR windows overlapping by 5 days).

Both windowers consume parallel arrays of timestamps and values
(already sorted by time) and yield :class:`Window` objects carrying the
index span, so callers can map window-level verdicts back to the raters
who produced each rating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Window", "CountWindower", "TimeWindower", "moving_average"]


@dataclass(frozen=True)
class Window:
    """A contiguous slice of a time-ordered rating sequence.

    Attributes:
        index: ordinal position of the window in its sweep.
        indices: integer indices (into the parent arrays) of the
            ratings contained in the window.
        start_time: timestamp of the window's left edge.
        end_time: timestamp of the window's right edge (inclusive for
            count windows, exclusive for time windows).
    """

    index: int
    indices: np.ndarray
    start_time: float
    end_time: float

    @property
    def size(self) -> int:
        return int(self.indices.size)

    @property
    def mid_time(self) -> float:
        return 0.5 * (self.start_time + self.end_time)

    def values(self, data: np.ndarray) -> np.ndarray:
        """Extract this window's samples from a parallel value array."""
        return np.asarray(data, dtype=float)[self.indices]


class CountWindower:
    """Windows containing a fixed number of consecutive ratings.

    Args:
        size: number of ratings per window.
        step: offset (in ratings) between consecutive window starts;
            ``step < size`` produces overlapping windows.
        include_tail: when True, a final shorter window covering the
            leftover ratings is emitted if at least ``min_tail`` samples
            remain uncovered.
        min_tail: minimum tail length for ``include_tail``.
    """

    def __init__(
        self,
        size: int,
        step: int | None = None,
        include_tail: bool = False,
        min_tail: int = 1,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"window size must be >= 1, got {size}")
        step = size if step is None else step
        if step < 1:
            raise ConfigurationError(f"window step must be >= 1, got {step}")
        self.size = size
        self.step = step
        self.include_tail = include_tail
        self.min_tail = min_tail

    def windows(self, times: Sequence[float]) -> Iterator[Window]:
        """Yield count windows over a sorted timestamp sequence."""
        times = np.asarray(times, dtype=float)
        n = times.size
        index = 0
        start = 0
        last_covered = 0
        while start + self.size <= n:
            idx = np.arange(start, start + self.size)
            yield Window(
                index=index,
                indices=idx,
                start_time=float(times[idx[0]]),
                end_time=float(times[idx[-1]]),
            )
            last_covered = start + self.size
            index += 1
            start += self.step
        if self.include_tail and n - last_covered >= self.min_tail:
            idx = np.arange(last_covered, n)
            yield Window(
                index=index,
                indices=idx,
                start_time=float(times[idx[0]]),
                end_time=float(times[idx[-1]]),
            )


class TimeWindower:
    """Windows covering fixed-length time intervals.

    Args:
        length: window length in time units (days in the paper).
        step: offset between consecutive window starts; ``step < length``
            produces overlapping windows (Section IV: length 10, step 5).
        origin: timestamp of the first window's left edge; when None the
            first rating's timestamp is used.
        drop_empty: skip windows containing no ratings.
        min_count: skip windows with fewer than this many ratings.
    """

    def __init__(
        self,
        length: float,
        step: float | None = None,
        origin: float | None = None,
        drop_empty: bool = True,
        min_count: int = 0,
    ) -> None:
        if length <= 0:
            raise ConfigurationError(f"window length must be > 0, got {length}")
        step = length if step is None else step
        if step <= 0:
            raise ConfigurationError(f"window step must be > 0, got {step}")
        self.length = float(length)
        self.step = float(step)
        self.origin = origin
        self.drop_empty = drop_empty
        self.min_count = min_count

    def windows(
        self, times: Sequence[float], horizon: float | None = None
    ) -> Iterator[Window]:
        """Yield time windows ``[t0 + k*step, t0 + k*step + length)``.

        Args:
            times: sorted timestamps.
            horizon: rightmost time to cover; defaults to the last
                timestamp.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return
        t0 = float(times[0]) if self.origin is None else float(self.origin)
        t_end = float(times[-1]) if horizon is None else float(horizon)
        index = 0
        k = 0
        while True:
            left = t0 + k * self.step
            if left > t_end:
                break
            right = left + self.length
            lo = int(np.searchsorted(times, left, side="left"))
            hi = int(np.searchsorted(times, right, side="left"))
            idx = np.arange(lo, hi)
            k += 1
            if idx.size == 0 and self.drop_empty:
                continue
            if idx.size < self.min_count:
                continue
            yield Window(
                index=index, indices=idx, start_time=left, end_time=right
            )
            index += 1


def moving_average(
    times: Sequence[float],
    values: Sequence[float],
    size: int,
    step: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed moving average as plotted in the paper's Fig. 4 (top).

    Args:
        times: sorted timestamps of the ratings.
        values: rating values parallel to ``times``.
        size: ratings per averaging window (paper: 20).
        step: window step in ratings (paper: 10).

    Returns:
        ``(window_mid_times, window_means)`` arrays.
    """
    values = np.asarray(values, dtype=float)
    mids, means = [], []
    for window in CountWindower(size=size, step=step).windows(times):
        mids.append(window.mid_time)
        means.append(float(np.mean(window.values(values))))
    return np.asarray(mids), np.asarray(means)
