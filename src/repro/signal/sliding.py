"""Incremental and batched fast paths for covariance-method AR fits.

Two performance-critical callers refit the same covariance-method AR
model over and over:

* the streaming :class:`~repro.detectors.online.OnlineARDetector`
  refits after every ``stride`` arrivals on a buffer that changed by
  only ``stride`` samples, and
* the batch :class:`~repro.detectors.ar_detector.ARModelErrorDetector`
  fits every (heavily overlapping) window of a long stream.

Both previously rebuilt an ``(N - p) x p`` least-squares problem from
scratch per fit.  This module exploits the structure of the covariance
design matrix -- each row involves only ``p + 1`` *consecutive*
samples -- to make those fits cheap:

* :class:`SlidingCovarianceFitter` maintains the normal equations
  (Gram matrix ``X^T X`` and cross vector ``X^T y``) of a sliding
  buffer under rank-1 updates as samples enter and rank-1 downdates as
  they leave, so a refit costs ``O(stride * p^2 + p^3)`` instead of
  ``O(N * p^2)`` with SVD constants.
* :func:`fit_windows` fits *all* windows of a stream from one shared
  ``sliding_window_view`` plus stacked ``np.linalg.solve`` calls --
  a handful of vectorized operations regardless of the window count.

Numerical equivalence, not approximate agreement, is the contract:
both paths fall back to the reference least-squares solver whenever
the Gram matrix is ill-conditioned (near-constant or rank-deficient
windows), and the incremental fitter periodically rebuilds its sums
from the buffer so floating-point drift stays below the equivalence
tolerance (see ``tests/test_signal_sliding.py``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ConfigurationError, InsufficientDataError, SignalModelError
from repro.signal.ar import (
    ARModel,
    AR_METHODS,
    _ENERGY_EPS,
    _GRAM_COND_LIMIT,
    _lstsq_coefficients,
    arcov,
    normalized_model_error,
)
from repro.signal.windows import Window

__all__ = ["SlidingCovarianceFitter", "fit_windows"]

# The incremental fitter accumulates its moment sums by block
# updates/downdates; after this many pushes the sums are rebuilt
# exactly from the buffer so rounding drift cannot accumulate past the
# equivalence bar.
_REBUILD_EVERY = 64

# Conditioning guard for the incremental solve: the squared ratio of
# the extreme Cholesky pivots (a fast lower bound on the Gram condition
# number).  Kept well under the ~1e7 that would let eps-level drift
# reach the 1e-9 equivalence bar, because a lower bound can
# underestimate the true condition number by a modest factor.
_INCREMENTAL_COND_LIMIT = 1e4

# Domain contracts checked by `repro lint` (rule family DI): see
# repro.devtools.analysis.contracts.
__lint_contracts__ = {
    "SlidingCovarianceFitter.__init__": {
        "params": {"order": "[1, inf)", "capacity": "[3, inf)"},
    },
    "fit_windows": {"params": {"order": "[1, inf)"}},
}


class SlidingCovarianceFitter:
    """Incremental covariance-method AR fitter over a sliding buffer.

    Feed samples with :meth:`push`; the fitter keeps at most
    ``capacity`` of them and maintains the covariance-method normal
    equations of the current contents.  :meth:`fit` then solves a
    ``p x p`` system instead of rebuilding the full least-squares
    problem, returning the same :class:`~repro.signal.ar.ARModel`
    statistics as :func:`~repro.signal.ar.arcov` on the buffer.

    Because every design row spans ``p + 1`` consecutive samples,
    sliding the window by ``s`` samples adds exactly ``s`` rows and
    removes exactly ``s``; no other row changes.  :meth:`push` is
    therefore just an O(1) append -- the row deltas are applied lazily
    at :meth:`fit` time as two small vectorized block products, so a
    refit costs ``O(s * p^2 + p^3)`` regardless of the buffer length.
    Ill-conditioned buffers (constant or near-constant ratings) are
    delegated to the exact reference solver.

    Args:
        order: AR model order ``p``.
        capacity: maximum samples kept; must exceed ``2 * order`` so a
            full buffer is always fittable.
    """

    def __init__(self, order: int, capacity: int) -> None:
        if order < 1:
            raise ConfigurationError(f"model order must be >= 1, got {order}")
        if capacity <= 2 * order:
            raise ConfigurationError(
                f"capacity must exceed 2 * order = {2 * order}, got {capacity}"
            )
        self.order = int(order)
        self.capacity = int(capacity)
        # Samples since the last trim; _history[0] is global sample
        # index _offset, and _n counts every sample ever pushed.
        self._history: List[float] = []
        self._offset = 0
        self._n = 0
        # Moment matrix M = sum over design rows of outer(w, w) where
        # w = [target, lag_1, ..., lag_p]; the Gram matrix, cross
        # vector, and target energy are all submatrices of M, so one
        # block product updates all three.  Covers global design rows
        # [_row_lo, _row_hi) (row r predicts sample r + p).
        self._moment = np.zeros((order + 1, order + 1))
        self._row_lo = 0
        self._row_hi = 0
        self._since_rebuild = 0
        # Row template: element k of a design row is sample lo + p - k.
        self._reversed_lags = np.arange(order, -1, -1)

    def __len__(self) -> int:
        return min(self._n, self.capacity)

    def _buffer_start(self) -> int:
        return max(0, self._n - self.capacity)

    @property
    def full(self) -> bool:
        return self._n >= self.capacity

    @property
    def values(self) -> np.ndarray:
        """Current buffer contents, oldest first."""
        return np.asarray(
            self._history[self._buffer_start() - self._offset :], dtype=float
        )

    def reset(self) -> None:
        """Drop the buffer and all accumulated sums."""
        self._history.clear()
        self._offset = 0
        self._n = 0
        self._moment[:] = 0.0
        self._row_lo = 0
        self._row_hi = 0
        self._since_rebuild = 0

    # -- maintenance -------------------------------------------------------

    def push(self, value: float) -> None:
        """Append one sample, evicting the oldest when at capacity."""
        value = float(value)
        if not math.isfinite(value):
            raise SignalModelError(f"sample is not finite: {value!r}")
        self._history.append(value)
        self._n += 1
        self._since_rebuild += 1

    def extend(self, values: Sequence[float]) -> None:
        """Push a sequence of samples in order."""
        for value in values:
            self.push(value)

    def _rows(self, lo: int, hi: int) -> np.ndarray:
        """Design rows [lo, hi) as [target, lag_1..lag_p] vectors."""
        if hi <= lo:
            return np.zeros((0, self.order + 1))
        start = lo - self._offset
        segment = np.asarray(
            self._history[start : hi + self.order - self._offset], dtype=float
        )
        return sliding_window_view(segment, self.order + 1)[:, ::-1]

    def rebuild(self) -> None:
        """Recompute the sums exactly from the buffer (drift reset)."""
        lo = self._buffer_start()
        hi = max(lo, self._n - self.order)
        self._trim(lo)
        self._row_lo, self._row_hi = lo, hi
        self._since_rebuild = 0
        if hi == lo:
            self._moment[:] = 0.0
            return
        rows = self._rows(lo, hi)
        self._moment = rows.T @ rows

    def _trim(self, keep_from: int) -> None:
        if keep_from > self._offset:
            del self._history[: keep_from - self._offset]
            self._offset = keep_from

    def _sync(self) -> None:
        """Advance the moment sums to the current buffer contents."""
        lo = self._buffer_start()
        hi = max(lo, self._n - self.order)
        if lo == self._row_lo and hi == self._row_hi:
            return
        if lo >= self._row_hi:
            # The windows do not share a row; summing fresh is cheaper
            # (and drift-free) compared to remove-all-then-add-all.
            self.rebuild()
            return
        # One signed block product updates Gram, cross, and energies:
        # +1 rows entered the window, -1 rows left it.  The two sample
        # regions (added rows [row_hi, hi), removed rows [row_lo, lo))
        # are spliced into one segment so a single fancy index builds
        # every signed row -- sliding_window_view's per-call overhead
        # dominates at this block size.
        p = self.order
        n_added = hi - self._row_hi
        n_removed = lo - self._row_lo
        base = self._offset
        segment = np.asarray(
            self._history[self._row_hi - base : hi + p - base]
            + self._history[self._row_lo - base : lo + p - base],
            dtype=float,
        )
        starts = np.arange(n_added + n_removed)
        starts[n_added:] += p
        rows = segment[starts[:, None] + self._reversed_lags]
        signs = np.ones(len(rows))
        signs[n_added:] = -1.0
        self._moment += (rows * signs[:, None]).T @ rows
        self._row_lo, self._row_hi = lo, hi
        self._trim(lo)

    # -- fitting -----------------------------------------------------------

    def fit(self) -> ARModel:
        """Covariance-method AR model of the current buffer.

        Coefficients, energies, and the normalized model error match
        :func:`~repro.signal.ar.arcov` on :attr:`values`; the
        ``residuals`` field is ``None`` (the fast path never forms
        the residual vector).

        Raises:
            InsufficientDataError: when fewer than ``2 * order + 1``
                samples are buffered.
        """
        m = len(self)
        p = self.order
        if m <= 2 * p:
            raise InsufficientDataError(
                f"covariance AR fitting of order {p} needs more than "
                f"{2 * p} samples, got {m}"
            )
        if self._since_rebuild >= _REBUILD_EVERY:
            self.rebuild()
        else:
            self._sync()
        gram = self._moment[1:, 1:]
        cross = self._moment[1:, 0]
        target_energy = self._moment[0, 0]
        solution = None
        try:
            # Cholesky doubles as the conditioning guard: it fails on
            # (numerically) indefinite Grams, and the squared pivot
            # ratio lower-bounds the condition number at a fraction of
            # an SVD's cost.
            pivots = np.linalg.cholesky(gram).diagonal()
            if float(pivots.max() / pivots.min()) ** 2 <= _INCREMENTAL_COND_LIMIT:
                solution = np.linalg.solve(gram, -cross)
        except (np.linalg.LinAlgError, FloatingPointError, ZeroDivisionError):
            solution = None
        if solution is None:
            # Ill-conditioned buffer: defer to the exact reference path.
            model = arcov(self.values, p)
            # The buffer sums may carry drift precisely when conditioning
            # is poor; start the next fits from exact sums.
            self.rebuild()
            return model
        a = np.concatenate(([1.0], solution))
        # ||y + X a||^2 = ty + 2 a.c + a.G.a collapses to ty + a.c at
        # the normal-equations solution (G a = -c): O(p), no data pass.
        error_energy = max(float(target_energy + np.dot(solution, cross)), 0.0)
        signal_energy = float(target_energy)
        return ARModel(
            order=p,
            coefficients=a,
            error_energy=error_energy,
            signal_energy=signal_energy,
            normalized_error=normalized_model_error(error_energy, signal_energy),
            method="covariance",
            n_samples=m,
            residuals=None,
        )


def _contiguous_start(window: Window) -> Optional[int]:
    """Start index when the window covers a contiguous index range."""
    idx = window.indices
    if idx.size == 0:
        return None
    if int(idx[-1]) - int(idx[0]) + 1 != idx.size:
        return None
    return int(idx[0])


def _fit_one(values: np.ndarray, window: Window, order: int, method: str):
    try:
        return AR_METHODS[method](window.values(values), order)
    except InsufficientDataError:
        return None


def fit_windows(
    values: Sequence[float],
    order: int,
    windower,
    times: Optional[Sequence[float]] = None,
    method: str = "covariance",
    min_window: int = 0,
) -> List[Tuple[Window, ARModel]]:
    """Fit an AR model to every window of a stream, batched.

    For the covariance method all same-size contiguous windows are
    fitted together: one shared ``sliding_window_view`` over the full
    signal provides every design row, per-window Gram matrices and
    cross vectors come from batched matrix products, and the
    coefficient systems are solved with one stacked
    ``np.linalg.solve``.  Windows whose Gram matrix is ill-conditioned
    are refitted individually through the reference solver, so results
    are numerically equivalent to fitting each window with
    :func:`~repro.signal.ar.arcov`.  Other estimators (and
    non-contiguous windows) fall back to a per-window loop.

    Args:
        values: rating values ordered by time.
        order: AR model order ``p``.
        windower: a :class:`~repro.signal.windows.CountWindower` or
            :class:`~repro.signal.windows.TimeWindower`.
        times: timestamps parallel to ``values``; defaults to the
            sample indices (count windowers only need the length).
        method: AR estimator name (see ``repro.signal.ar.AR_METHODS``).
        min_window: skip windows with fewer samples than this.

    Returns:
        ``(window, model)`` pairs in window order; windows that are
        too small to fit (``size <= 2 * order`` or below
        ``min_window``) are skipped.
    """
    if order < 1:
        raise SignalModelError(f"model order must be >= 1, got {order}")
    if method not in AR_METHODS:
        raise ConfigurationError(
            f"unknown AR method {method!r}; choose from {sorted(AR_METHODS)}"
        )
    values = np.asarray(values, dtype=float).ravel()
    if times is None:
        times = np.arange(values.size, dtype=float)
    minimum = max(int(min_window), 2 * order + 1)
    windows = [w for w in windower.windows(times) if w.size >= minimum]
    if not windows:
        return []

    if method != "covariance":
        fitted = [(w, _fit_one(values, w, order, method)) for w in windows]
        return [(w, m) for w, m in fitted if m is not None]

    if not np.all(np.isfinite(values)):
        raise SignalModelError("signal contains NaN or infinite samples")

    p = order
    # Row j of the shared lag matrix is [x[j+p], x[j+p-1], ..., x[j]]:
    # target first, then the p lags -- every window's design rows are a
    # contiguous block of these.
    lagged = sliding_window_view(values, p + 1)[:, ::-1]
    models: dict = {}
    batched: dict = {}
    for position, window in enumerate(windows):
        start = _contiguous_start(window)
        if start is None:
            models[position] = _fit_one(values, window, order, method)
            continue
        batched.setdefault(window.size, []).append((position, start))

    for size, group in batched.items():
        starts = np.array([start for _, start in group])
        rows = starts[:, None] + np.arange(size - p)[None, :]
        block = lagged[rows]
        targets = block[:, :, 0]
        designs = block[:, :, 1:]
        grams = np.einsum("kij,kil->kjl", designs, designs)
        crosses = np.einsum("kij,ki->kj", designs, targets)
        # For symmetric PSD Grams cond = lambda_max / lambda_min, and
        # eigvalsh is much cheaper than the SVD behind np.linalg.cond.
        eigs = np.linalg.eigvalsh(grams)
        good = (eigs[:, 0] > 0.0) & (
            eigs[:, -1] <= _GRAM_COND_LIMIT * eigs[:, 0]
        )
        solutions = np.empty((len(group), p))
        if good.any():
            try:
                solutions[good] = np.linalg.solve(
                    grams[good], -crosses[good][..., None]
                )[..., 0]
            except np.linalg.LinAlgError:
                good = np.zeros(len(group), dtype=bool)
        for k in np.flatnonzero(~good):
            solutions[k] = _lstsq_coefficients(designs[k], targets[k])
        residuals = targets + np.matmul(designs, solutions[..., None])[..., 0]
        error_energies = np.einsum("ki,ki->k", residuals, residuals)
        signal_energies = np.einsum("ki,ki->k", targets, targets)
        normalized = np.where(
            signal_energies <= _ENERGY_EPS,
            0.0,
            np.clip(
                error_energies / np.maximum(signal_energies, _ENERGY_EPS),
                0.0,
                1.0,
            ),
        )
        coefficients = np.concatenate(
            (np.ones((len(group), 1)), solutions), axis=1
        )
        for k, (position, start) in enumerate(group):
            models[position] = ARModel(
                order=p,
                coefficients=coefficients[k],
                error_energy=float(error_energies[k]),
                signal_energy=float(signal_energies[k]),
                normalized_error=float(normalized[k]),
                method="covariance",
                n_samples=size,
                residuals=residuals[k],
            )

    return [
        (window, models[position])
        for position, window in enumerate(windows)
        if models.get(position) is not None
    ]
