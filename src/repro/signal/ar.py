"""All-pole (autoregressive) signal modeling.

Three classic estimators are provided:

* :func:`arcov` -- the **covariance method** (least-squares minimisation of
  the forward prediction error over the valid support ``n = p..N-1``).
  This is the estimator the paper uses (Matlab ``covm`` from Hayes,
  *Statistical Digital Signal Processing and Modeling*, 1996).
* :func:`aryule` -- the autocorrelation (Yule-Walker) method, solved with
  the Levinson-Durbin recursion.
* :func:`arburg` -- Burg's method (minimises forward + backward error
  under a lattice constraint).

Each returns an :class:`ARModel` carrying the coefficient vector
``[1, a1, ..., ap]``, the residual error energy, and the **normalized
model error** ``e in [0, 1]`` used by the paper's Procedure 1: residual
energy divided by the energy of the modeled samples over the same
support.  A window of honest (white-noise-like) ratings produces a
small-but-stable ``e``; a window contaminated by a collaborative rating
campaign is more predictable and produces a visibly smaller ``e``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import InsufficientDataError, SignalModelError
from repro.signal.levinson import autocorrelation_sequence, levinson_durbin

__all__ = ["ARModel", "arcov", "aryule", "arburg", "normalized_model_error", "AR_METHODS"]

# Residual energies below this fraction of machine scale are treated as an
# exactly-predictable (e.g. constant) window.
_ENERGY_EPS = 1e-12

# Normal equations square the design's conditioning, so the fast solve is
# only trusted while cond(X^T X) stays below this; beyond it (near-constant
# or rank-deficient windows) the solver falls back to the reference
# ``lstsq`` path, keeping fast-path coefficients within ~1e-9 of it.
_GRAM_COND_LIMIT = 1e6


def _design_and_target(x: np.ndarray, order: int) -> tuple:
    """Covariance-method design matrix and target as strided views.

    Row ``i`` of the design is ``[x[p+i-1], x[p+i-2], ..., x[i]]`` and the
    target is ``x[p+i]``, for ``i = 0..N-p-1`` -- the support ``n = p..N-1``
    of Hayes' ``covm``.  Built from one ``sliding_window_view`` call, so no
    per-row Python slicing and no copies.
    """
    lagged = sliding_window_view(x, order + 1)[:, ::-1]
    return lagged[:, 1:], lagged[:, 0]


def _solve_normal_equations(
    gram: np.ndarray, cross: np.ndarray, limit: float = _GRAM_COND_LIMIT
) -> Optional[np.ndarray]:
    """Solve ``gram @ a = -cross``; None when the Gram is untrustworthy."""
    with np.errstate(divide="ignore", invalid="ignore"):
        cond = np.linalg.cond(gram)
    if not np.isfinite(cond) or cond > limit:
        return None
    try:
        return np.linalg.solve(gram, -cross)
    except np.linalg.LinAlgError:
        return None


def _lstsq_coefficients(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Reference solver: minimum-norm least squares (rank-deficient safe)."""
    solution, *_ = np.linalg.lstsq(design, -target, rcond=None)
    return solution


@dataclass(frozen=True)
class ARModel:
    """A fitted all-pole model of a finite signal window.

    Attributes:
        order: the model order ``p``.
        coefficients: ``[1, a1, ..., ap]``; the one-step prediction of
            ``x[n]`` is ``-sum(a[k] * x[n-k] for k in 1..p)``.
        error_energy: sum of squared prediction residuals over the
            modeled support.
        signal_energy: sum of squared signal samples over the same
            support (denominator of the normalized error).
        normalized_error: ``error_energy / signal_energy`` clipped to
            ``[0, 1]``; the paper's ``e(k)``.
        method: name of the estimator that produced the model.
        n_samples: number of samples in the modeled window.
    """

    order: int
    coefficients: np.ndarray
    error_energy: float
    signal_energy: float
    normalized_error: float
    method: str
    n_samples: int
    residuals: Optional[np.ndarray] = field(repr=False, default=None)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """One-step-ahead predictions for samples ``p..len(x)-1``.

        Args:
            x: signal to predict over (may differ from the fit window).

        Returns:
            Array of length ``len(x) - p`` with the linear predictions.
        """
        x = np.asarray(x, dtype=float).ravel()
        p = self.order
        if x.size <= p:
            raise InsufficientDataError(
                f"need more than {p} samples to predict, got {x.size}"
            )
        design, _ = _design_and_target(x, p)
        return -(design @ self.coefficients[1:])


def _validate(x: np.ndarray, order: int) -> np.ndarray:
    x = np.asarray(x, dtype=float).ravel()
    if order < 1:
        raise SignalModelError(f"model order must be >= 1, got {order}")
    if x.size <= 2 * order:
        raise InsufficientDataError(
            f"covariance/Burg AR fitting of order {order} needs more than "
            f"{2 * order} samples, got {x.size}"
        )
    if not np.all(np.isfinite(x)):
        raise SignalModelError("signal contains NaN or infinite samples")
    return x


def _finalize(
    x: np.ndarray,
    a: np.ndarray,
    order: int,
    method: str,
) -> ARModel:
    """Compute residuals / energies over the covariance support ``p..N-1``."""
    n = x.size
    design, target = _design_and_target(x, order)
    residuals = target + design @ a[1:]
    error_energy = float(np.dot(residuals, residuals))
    signal_energy = float(np.dot(target, target))
    normalized = normalized_model_error(error_energy, signal_energy)
    return ARModel(
        order=order,
        coefficients=np.asarray(a, dtype=float),
        error_energy=error_energy,
        signal_energy=signal_energy,
        normalized_error=normalized,
        method=method,
        n_samples=n,
        residuals=residuals,
    )


def normalized_model_error(error_energy: float, signal_energy: float) -> float:
    """Normalize a residual energy by the window's signal energy.

    Degenerate windows (zero signal energy, e.g. every rating exactly 0)
    are perfectly predictable, so their normalized error is 0 -- i.e.
    maximally suspicious, consistent with a constant rating window.
    """
    if signal_energy <= _ENERGY_EPS:
        return 0.0
    # Scalar clip: this sits on the streaming detector's per-refit
    # path, where np.clip's dispatch overhead is measurable.
    ratio = error_energy / signal_energy
    if ratio < 0.0:
        return 0.0
    if ratio > 1.0:
        return 1.0
    return float(ratio)


def arcov(x: np.ndarray, order: int) -> ARModel:
    """Fit an AR model with the covariance (least-squares) method.

    Minimises ``sum_{n=p}^{N-1} (x[n] + sum_k a_k x[n-k])^2`` exactly as
    Hayes' ``covm``.  Unlike the autocorrelation method there is no
    windowing bias, which matters for the short (tens of samples) rating
    windows the detector operates on.

    Args:
        x: one-dimensional signal window (ratings ordered by time).
        order: AR order ``p``; requires ``len(x) > 2p``.

    Returns:
        The fitted :class:`ARModel`.
    """
    x = _validate(x, order)
    design, target = _design_and_target(x, order)
    # Fast path: normal equations X^T X a = -X^T y (one GEMM + a p-by-p
    # solve instead of an SVD over the full design); rank-deficient or
    # ill-conditioned windows fall back to minimum-norm least squares.
    solution = _solve_normal_equations(design.T @ design, design.T @ target)
    if solution is None:
        solution = _lstsq_coefficients(design, target)
    a = np.concatenate(([1.0], solution))
    return _finalize(x, a, order, method="covariance")


def aryule(x: np.ndarray, order: int) -> ARModel:
    """Fit an AR model with the autocorrelation (Yule-Walker) method."""
    x = _validate(x, order)
    r = autocorrelation_sequence(x, order)
    if r[0] <= _ENERGY_EPS:
        # Zero-energy window: perfectly predictable by the trivial model.
        a = np.concatenate(([1.0], np.zeros(order)))
        return _finalize(x, a, order, method="autocorrelation")
    try:
        result = levinson_durbin(r, order)
    except SignalModelError:
        # Perfectly predictable at a lower order (e.g. constant window):
        # fall back to the covariance solution, which handles rank
        # deficiency via least squares.
        model = arcov(x, order)
        return ARModel(
            order=model.order,
            coefficients=model.coefficients,
            error_energy=model.error_energy,
            signal_energy=model.signal_energy,
            normalized_error=model.normalized_error,
            method="autocorrelation",
            n_samples=model.n_samples,
            residuals=model.residuals,
        )
    return _finalize(x, result.coefficients, order, method="autocorrelation")


def arburg(x: np.ndarray, order: int) -> ARModel:
    """Fit an AR model with Burg's method.

    Burg's recursion minimises the sum of forward and backward
    prediction-error energies subject to the Levinson lattice
    constraint; it never produces an unstable model and behaves well on
    short windows, making it a natural ablation partner for the
    covariance method.
    """
    x = _validate(x, order)
    f = x.astype(float).copy()
    b = x.astype(float).copy()
    a = np.array([1.0])
    for m in range(1, order + 1):
        f_shift = f[m:]
        b_shift = b[m - 1 : -1]
        denom = float(np.dot(f_shift, f_shift) + np.dot(b_shift, b_shift))
        if denom <= _ENERGY_EPS:
            # Perfectly predictable already; pad remaining coefficients.
            a = np.concatenate((a, np.zeros(order - m + 1)))
            return _finalize(x, a, order, method="burg")
        k = -2.0 * float(np.dot(f_shift, b_shift)) / denom
        a = np.concatenate((a, [0.0]))
        a = a + k * a[::-1]
        f_new = f_shift + k * b_shift
        b_new = b_shift + k * f_shift
        f = np.concatenate((np.zeros(m), f_new))
        b = np.concatenate((np.zeros(m), b_new))
    return _finalize(x, a, order, method="burg")


AR_METHODS = {
    "covariance": arcov,
    "autocorrelation": aryule,
    "burg": arburg,
}
