"""Signal-processing substrate: AR estimation, windowing, whiteness tests."""

from repro.signal.ar import AR_METHODS, ARModel, arburg, arcov, aryule, normalized_model_error
from repro.signal.spectrum import ARSpectrum, ar_power_spectrum, spectral_flatness
from repro.signal.detrend import remove_linear_trend, remove_mean
from repro.signal.levinson import LevinsonResult, autocorrelation_sequence, levinson_durbin
from repro.signal.sliding import SlidingCovarianceFitter, fit_windows
from repro.signal.whiteness import LjungBoxResult, ljung_box, sample_autocorrelation
from repro.signal.windows import CountWindower, TimeWindower, Window, moving_average

__all__ = [
    "AR_METHODS",
    "ARModel",
    "arburg",
    "arcov",
    "aryule",
    "normalized_model_error",
    "ARSpectrum",
    "ar_power_spectrum",
    "spectral_flatness",
    "remove_linear_trend",
    "remove_mean",
    "LevinsonResult",
    "autocorrelation_sequence",
    "levinson_durbin",
    "SlidingCovarianceFitter",
    "fit_windows",
    "LjungBoxResult",
    "ljung_box",
    "sample_autocorrelation",
    "CountWindower",
    "TimeWindower",
    "Window",
    "moving_average",
]
