"""Detrending helpers for rating windows.

The AR detector models ratings *without* removing the mean -- the
all-pole model absorbs the DC level, which is what keeps honest
windows at a small, stable normalized error.  These helpers exist for
ablations and for the whiteness diagnostics, which do require a
zero-mean series.
"""

from __future__ import annotations

import numpy as np

__all__ = ["remove_mean", "remove_linear_trend"]


def remove_mean(x: np.ndarray) -> np.ndarray:
    """Return ``x`` minus its sample mean (a new array)."""
    x = np.asarray(x, dtype=float).ravel()
    return x - np.mean(x)


def remove_linear_trend(times: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Return ``x`` minus its least-squares linear fit against ``times``.

    Useful when an object's quality drifts during the window (the
    illustrative experiment ramps quality 0.7 -> 0.8 over 60 days) and
    the caller wants the drift excluded from the whiteness statistics.
    """
    times = np.asarray(times, dtype=float).ravel()
    x = np.asarray(x, dtype=float).ravel()
    if times.size != x.size:
        raise ValueError(
            f"times ({times.size}) and values ({x.size}) must be parallel"
        )
    if x.size < 2 or np.ptp(times) == 0.0:
        return x - np.mean(x)
    slope, intercept = np.polyfit(times, x, deg=1)
    return x - (slope * times + intercept)
