"""AR power-spectral-density estimation.

The covariance method the paper borrows from Hayes is, at heart, a
spectrum estimator: an all-pole model of a signal window implies a
rational power spectral density

    P(f) = sigma^2 / |1 + sum_k a_k e^{-j 2 pi f k}|^2 .

These helpers turn a fitted :class:`~repro.signal.ar.ARModel` into that
spectrum.  For rating forensics the spectrum gives a second view of a
suspicious window: honest windows are spectrally flat (white) apart
from the DC line, while a collusion campaign concentrates power at low
frequencies (a slowly varying injected level).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.signal.ar import ARModel

__all__ = ["ARSpectrum", "ar_power_spectrum", "spectral_flatness"]


@dataclass(frozen=True)
class ARSpectrum:
    """A sampled AR power spectral density.

    Attributes:
        frequencies: normalized frequencies in cycles/sample, in
            ``[0, 0.5]``.
        power: PSD values at those frequencies.
    """

    frequencies: np.ndarray
    power: np.ndarray

    @property
    def total_power(self) -> float:
        """Numerically integrated power over ``[0, 0.5]``."""
        return float(np.trapezoid(self.power, self.frequencies))

    def dominant_frequency(self, ignore_dc: bool = True) -> float:
        """Frequency of the PSD peak.

        Args:
            ignore_dc: skip the first bin (the rating DC level
                dominates every rating spectrum; the interesting
                structure is away from 0).
        """
        start = 1 if ignore_dc and self.power.size > 1 else 0
        index = start + int(np.argmax(self.power[start:]))
        return float(self.frequencies[index])


def ar_power_spectrum(model: ARModel, n_points: int = 256) -> ARSpectrum:
    """Evaluate the fitted model's power spectral density.

    Args:
        model: a fitted AR model.
        n_points: number of frequency samples on ``[0, 0.5]``.

    Returns:
        The sampled :class:`ARSpectrum`; the driving-noise variance is
        estimated from the model's residual energy.
    """
    if n_points < 2:
        raise ConfigurationError(f"n_points must be >= 2, got {n_points}")
    n_residuals = max(1, model.n_samples - model.order)
    noise_variance = model.error_energy / n_residuals
    frequencies = np.linspace(0.0, 0.5, n_points)
    a = model.coefficients
    ks = np.arange(a.size)
    # Transfer denominator A(e^{j 2 pi f}) sampled on the grid.
    phases = np.exp(-2j * np.pi * np.outer(frequencies, ks))
    denominator = phases @ a
    power = noise_variance / np.maximum(np.abs(denominator) ** 2, 1e-12)
    return ARSpectrum(frequencies=frequencies, power=power)


def spectral_flatness(spectrum: ARSpectrum, ignore_dc: bool = True) -> float:
    """Geometric-over-arithmetic-mean flatness in ``(0, 1]``.

    1.0 means perfectly white (flat); collusion campaigns concentrate
    power and push flatness down.

    Args:
        spectrum: the sampled spectrum.
        ignore_dc: drop the first bin before measuring (the DC line
            reflects the rating mean, not temporal structure).
    """
    power = spectrum.power[1:] if ignore_dc and spectrum.power.size > 1 else spectrum.power
    power = np.maximum(power, 1e-300)
    geometric = float(np.exp(np.mean(np.log(power))))
    arithmetic = float(np.mean(power))
    if arithmetic <= 0.0:
        raise ConfigurationError("spectrum has no power to measure")
    return geometric / arithmetic
