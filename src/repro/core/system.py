"""The trust-enhanced rating aggregation system (Fig. 1).

:class:`TrustEnhancedRatingSystem` wires together the paper's pipeline:

    raw ratings
      -> rating filter (feature extraction I)          [abnormal -> buffer]
      -> AR suspicion detector (feature extraction II) [suspicion -> buffer]
      -> trust manager update (Procedure 2)
      -> trust-weighted rating aggregation

Ratings are ingested continuously; calling :meth:`process_interval`
closes one update interval ``[start, end)``: every product rated in the
interval is filtered and analyzed, observations land in the trust
manager's buffer, and trust is updated once at the interval's end
(Procedure 2's ``t(k)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.aggregation.base import Aggregator
from repro.aggregation.methods import ModifiedWeightedAverage
from repro.detectors.ar_detector import ARModelErrorDetector
from repro.detectors.base import SuspicionDetector, SuspicionReport
from repro.errors import EmptyWindowError
from repro.filters.base import FilterResult, RatingFilter
from repro.filters.beta_quantile import BetaQuantileFilter
from repro.ratings.models import Product, RaterProfile, Rating
from repro.ratings.store import RatingStore
from repro.ratings.stream import RatingStream
from repro.trust.manager import TrustManager, TrustManagerConfig

__all__ = ["ProductIntervalReport", "IntervalReport", "TrustEnhancedRatingSystem"]


@dataclass(frozen=True)
class ProductIntervalReport:
    """Pipeline diagnostics for one product in one interval."""

    product_id: int
    filter_result: FilterResult
    suspicion_report: SuspicionReport

    @property
    def n_ratings(self) -> int:
        return len(self.filter_result.kept) + len(self.filter_result.removed)


@dataclass
class IntervalReport:
    """Outcome of processing one update interval."""

    start: float
    end: float
    products: Dict[int, ProductIntervalReport] = field(default_factory=dict)
    trust_after: Dict[int, float] = field(default_factory=dict)
    detected_malicious: List[int] = field(default_factory=list)

    @property
    def n_ratings(self) -> int:
        return sum(p.n_ratings for p in self.products.values())

    @property
    def n_filtered(self) -> int:
        return sum(p.filter_result.n_removed for p in self.products.values())

    @property
    def flagged_rating_ids(self) -> Set[int]:
        flagged: Set[int] = set()
        for report in self.products.values():
            flagged |= set(report.suspicion_report.flagged_rating_ids)
        return flagged


class TrustEnhancedRatingSystem:
    """The integrated rating aggregator + trust manager.

    Args:
        rating_filter: feature extraction I (default: the beta-quantile
            filter with the paper's sensitivity 0.1).
        detector: feature extraction II (default: the AR detector with
            the paper's Section IV parameters).
        aggregator: rating-aggregation method (default: the modified
            weighted average, the paper's method 3).
        trust_config: trust-manager knobs (``b``, detection threshold,
            forgetting).
    """

    def __init__(
        self,
        rating_filter: Optional[RatingFilter] = None,
        detector: Optional[SuspicionDetector] = None,
        aggregator: Optional[Aggregator] = None,
        trust_config: Optional[TrustManagerConfig] = None,
    ) -> None:
        self.rating_filter = (
            rating_filter if rating_filter is not None else BetaQuantileFilter(sensitivity=0.1)
        )
        self.detector = (
            detector if detector is not None else ARModelErrorDetector(threshold=0.02)
        )
        self.aggregator = aggregator if aggregator is not None else ModifiedWeightedAverage()
        self.trust_manager = TrustManager(config=trust_config)
        self.store = RatingStore()
        self._removed_rating_ids: Set[int] = set()
        self._pending: List[Rating] = []
        self.interval_reports: List[IntervalReport] = []

    # -- registration / ingestion -------------------------------------------

    def register_product(self, product: Product) -> None:
        self.store.add_product(product)

    def register_rater(self, profile: RaterProfile) -> None:
        self.store.add_rater(profile)
        self.trust_manager.register_rater(profile.rater_id)

    def ingest(self, ratings: Iterable[Rating]) -> int:
        """Accept new raw ratings; they are processed at the next interval.

        Returns:
            Number of ratings ingested.
        """
        count = 0
        for rating in ratings:
            self.store.add_rating(rating)
            self._pending.append(rating)
            count += 1
        return count

    # -- the Fig. 1 pipeline ---------------------------------------------------

    def process_interval(self, start: float, end: float) -> IntervalReport:
        """Close the update interval ``[start, end)`` and update trust.

        Pending ratings timestamped inside the interval are grouped by
        product; each product's interval stream runs through the filter
        and the suspicion detector, observations accumulate in the
        trust manager's buffer, and one Procedure 2 update fires at the
        interval's end.
        """
        if end <= start:
            raise EmptyWindowError(f"interval needs end > start, got [{start}, {end})")
        in_interval = [r for r in self._pending if start <= r.time < end]
        self._pending = [r for r in self._pending if not (start <= r.time < end)]

        report = IntervalReport(start=start, end=end)
        by_product: Dict[int, List[Rating]] = {}
        for rating in in_interval:
            by_product.setdefault(rating.product_id, []).append(rating)

        buffer = self.trust_manager.observations
        for product_id, ratings in sorted(by_product.items()):
            stream = RatingStream.from_ratings(ratings)
            filter_result = self.rating_filter.filter(stream)
            self._removed_rating_ids |= set(filter_result.removed_ids)
            suspicion = self.detector.detect(filter_result.kept)

            for rating in stream:
                buffer.record_provided(rating.rater_id)
            for rating in filter_result.removed:
                buffer.record_filtered(rating.rater_id)
            suspicious_ratings = suspicion.flagged_rating_ids
            for rating in filter_result.kept:
                if rating.rating_id in suspicious_ratings:
                    buffer.record_suspicious(rating.rater_id)
            for rater_id, value in suspicion.rater_suspicion.items():
                buffer.record_suspicion_value(rater_id, value)

            report.products[product_id] = ProductIntervalReport(
                product_id=product_id,
                filter_result=filter_result,
                suspicion_report=suspicion,
            )

        report.trust_after = self.trust_manager.update()
        report.detected_malicious = self.trust_manager.detected_malicious()
        self.interval_reports.append(report)
        return report

    def run(self, start: float, end: float, interval: float) -> List[IntervalReport]:
        """Process ``[start, end)`` in consecutive intervals of the given length."""
        if interval <= 0:
            raise EmptyWindowError(f"interval length must be > 0, got {interval}")
        reports = []
        left = start
        while left < end:
            right = min(left + interval, end)
            reports.append(self.process_interval(left, right))
            left = right
        return reports

    # -- aggregation -----------------------------------------------------------

    def accepted_stream(self, product_id: int) -> RatingStream:
        """A product's ratings minus everything the filter removed."""
        return self.store.stream(product_id).without(sorted(self._removed_rating_ids))

    def aggregated_rating(
        self, product_id: int, aggregator: Optional[Aggregator] = None
    ) -> float:
        """Aggregate one product with current trust values.

        Args:
            product_id: the product to score.
            aggregator: override the system's aggregation method (used
                by the comparison benches so one simulated world can be
                scored by all four methods).
        """
        method = aggregator if aggregator is not None else self.aggregator
        stream = self.accepted_stream(product_id)
        if len(stream) == 0:
            raise EmptyWindowError(
                f"product {product_id} has no accepted ratings to aggregate"
            )
        trusts = [self.trust_manager.trust(r.rater_id) for r in stream]
        return method.aggregate(stream.values, trusts)

    def aggregated_ratings(
        self, aggregator: Optional[Aggregator] = None
    ) -> Dict[int, float]:
        """Aggregate every product that has accepted ratings."""
        results: Dict[int, float] = {}
        for product_id in self.store.product_ids:
            try:
                results[product_id] = self.aggregated_rating(product_id, aggregator)
            except EmptyWindowError:
                continue
        return results
