"""The paper's primary contribution: the trust-enhanced rating system."""

from repro.core.system import (
    IntervalReport,
    ProductIntervalReport,
    TrustEnhancedRatingSystem,
)

__all__ = [
    "IntervalReport",
    "ProductIntervalReport",
    "TrustEnhancedRatingSystem",
]
