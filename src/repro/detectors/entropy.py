"""Entropy-change detector (Weng, Miao & Goh 2006 baseline).

A rating is suspicious when adding it to the running distribution of
ratings changes the distribution's entropy by more than a threshold --
the idea being that honest ratings refine the consensus (small entropy
change) while campaign ratings concentrate mass on a biased level.

Like the beta filter, this baseline keys on the *value* of individual
ratings relative to the consensus, so the moderate-bias collusion
strategy (ratings one level away from the majority) largely evades it.
The detector exists to reproduce the paper's negative result: baseline
detection ratios near zero against strategy 2.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError
from repro.detectors.base import SuspicionDetector, SuspicionReport, WindowVerdict
from repro.ratings.scales import RatingScale
from repro.ratings.stream import RatingStream
from repro.signal.windows import Window

__all__ = ["EntropyChangeDetector"]


def _entropy(counts: np.ndarray) -> float:
    total = float(np.sum(counts))
    if total <= 0:
        return 0.0
    probs = counts / total
    nonzero = probs[probs > 0]
    return float(-np.sum(nonzero * np.log2(nonzero)))


class EntropyChangeDetector(SuspicionDetector):
    """Flag ratings whose arrival shifts the rating-distribution entropy.

    Args:
        scale: the rating scale (defines the histogram bins).
        threshold: minimum absolute entropy change (bits) for a rating
            to be flagged.
        prior: Laplace prior count added to every level so early
            ratings do not produce infinite swings.
        level: suspicion level assigned to each flagged rating.
    """

    def __init__(
        self,
        scale: RatingScale,
        threshold: float = 0.2,
        prior: float = 1.0,
        level: float = 0.5,
    ) -> None:
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        if prior <= 0:
            raise ConfigurationError(f"prior must be > 0, got {prior}")
        self.scale = scale
        self.threshold = float(threshold)
        self.prior = float(prior)
        self.level = float(level)

    def _bin_index(self, value: float) -> int:
        return int(round((self.scale.quantize(value) - self.scale.minimum) / self.scale.step))

    def detect(self, stream: RatingStream) -> SuspicionReport:
        counts = np.full(self.scale.levels, self.prior)
        verdicts: List[WindowVerdict] = []
        for position, rating in enumerate(stream):
            before = _entropy(counts)
            counts[self._bin_index(rating.value)] += 1.0
            after = _entropy(counts)
            change = abs(after - before)
            suspicious = change > self.threshold
            verdicts.append(
                WindowVerdict(
                    window=Window(
                        index=position,
                        indices=np.array([position]),
                        start_time=rating.time,
                        end_time=rating.time,
                    ),
                    statistic=change,
                    suspicious=suspicious,
                    level=self.level if suspicious else 0.0,
                )
            )
        return self._accumulate(stream, verdicts)
