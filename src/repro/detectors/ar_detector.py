"""The paper's AR signal-modeling detector (Procedure 1).

Ratings for an object, ordered by time, are windowed; each window is
fitted with an all-pole model (covariance method by default) and its
normalized model error ``e(k)`` computed.  Honest ratings behave like
white noise around the quality level, so ``e(k)`` stays above the
threshold; a collaborative campaign makes the window predictable and
pushes ``e(k)`` below it.  Flagged windows assign a suspicion level to
every rating they contain, and raters accumulate the suspicion of
their ratings into ``C(i)``.

Two readings of the printed suspicion-level formula are supported (see
DESIGN.md "Interpretation notes"):

* ``"bounded"`` (default): ``L(k) = scale * (1 - e(k)/threshold)``,
  which lies in ``(0, scale)`` and grows as the error falls further
  below the threshold.
* ``"literal"``: ``L(k) = scale * (1 - e(k)) / threshold`` exactly as
  printed, clipped to ``[0, 1]`` so downstream trust stays sane.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.detectors.base import SuspicionDetector, SuspicionReport, WindowVerdict
from repro.ratings.stream import RatingStream
from repro.signal.ar import AR_METHODS
from repro.signal.sliding import fit_windows
from repro.signal.windows import CountWindower

__all__ = ["ARModelErrorDetector"]

_LEVEL_RULES = ("bounded", "literal")


class ARModelErrorDetector(SuspicionDetector):
    """Procedure 1: suspicious-interval detection via AR model error.

    Args:
        order: AR model order ``p`` (default 4).
        threshold: model-error threshold below which a window is
            suspicious (paper: 0.02 in Section IV).
        scale: scaling factor of the suspicion level, in ``(0, 1]``
            (paper's ``scale``).
        windower: a :class:`~repro.signal.windows.CountWindower` or
            :class:`~repro.signal.windows.TimeWindower`; defaults to
            50-rating windows stepping by 25 (the Fig. 4 configuration).
        method: AR estimator name -- ``"covariance"`` (paper),
            ``"autocorrelation"`` or ``"burg"``.
        level_rule: ``"bounded"`` or ``"literal"`` (see module docs).
        min_window: windows with fewer ratings than this are skipped
            (an AR fit of order p needs > 2p samples; the default also
            guards against statistically meaningless tiny windows).
    """

    def __init__(
        self,
        order: int = 4,
        threshold: float = 0.02,
        scale: float = 0.5,
        windower: Optional[object] = None,
        method: str = "covariance",
        level_rule: str = "bounded",
        min_window: Optional[int] = None,
    ) -> None:
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        if threshold <= 0 or threshold >= 1:
            raise ConfigurationError(
                f"threshold must lie in (0, 1), got {threshold}"
            )
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(f"scale must lie in (0, 1], got {scale}")
        if method not in AR_METHODS:
            raise ConfigurationError(
                f"unknown AR method {method!r}; choose from {sorted(AR_METHODS)}"
            )
        if level_rule not in _LEVEL_RULES:
            raise ConfigurationError(
                f"unknown level rule {level_rule!r}; choose from {_LEVEL_RULES}"
            )
        self.order = int(order)
        self.threshold = float(threshold)
        self.scale = float(scale)
        self.windower = windower if windower is not None else CountWindower(size=50, step=25)
        self.method = method
        self.level_rule = level_rule
        self.min_window = int(min_window) if min_window is not None else 2 * order + 4

    def _level(self, error: float) -> float:
        if self.level_rule == "bounded":
            return self.scale * (1.0 - error / self.threshold)
        raw = self.scale * (1.0 - error) / self.threshold
        return float(np.clip(raw, 0.0, 1.0))

    def window_errors(self, stream: RatingStream) -> List[WindowVerdict]:
        """Fit every window and return its verdict (no accumulation).

        All windows are fitted through the batched
        :func:`~repro.signal.sliding.fit_windows` fast path -- for the
        covariance method that is a handful of vectorized calls over
        the whole stream instead of one least-squares solve per window.
        """
        verdicts: List[WindowVerdict] = []
        fitted = fit_windows(
            stream.values,
            self.order,
            self.windower,
            times=stream.times,
            method=self.method,
            min_window=self.min_window,
        )
        for window, model in fitted:
            error = model.normalized_error
            suspicious = error < self.threshold
            verdicts.append(
                WindowVerdict(
                    window=window,
                    statistic=error,
                    suspicious=suspicious,
                    level=self._level(error) if suspicious else 0.0,
                )
            )
        return verdicts

    def detect(self, stream: RatingStream) -> SuspicionReport:
        """Run Procedure 1 over one object's rating stream."""
        if len(stream) == 0:
            return SuspicionReport(stream=stream)
        verdicts = self.window_errors(stream)
        return self._accumulate(stream, verdicts)

    def error_series(self, stream: RatingStream) -> tuple:
        """(window mid-times, normalized model errors) -- Fig. 4/5 series."""
        verdicts = self.window_errors(stream)
        mids = np.array([v.window.mid_time for v in verdicts])
        errors = np.array([v.statistic for v in verdicts])
        return mids, errors
