"""Online (streaming) AR suspicion detection.

The batch :class:`~repro.detectors.ar_detector.ARModelErrorDetector`
re-analyzes a full stream per interval; a production rating service
instead sees ratings one at a time and wants an alarm *as the campaign
happens*.  :class:`OnlineARDetector` keeps a bounded buffer of the most
recent ratings for one object, refits the AR model every ``stride``
arrivals, and emits a :class:`WindowVerdict` per evaluation -- so the
alarm latency is at most ``stride`` ratings after a window first turns
predictable.

The statistic is identical to the batch detector's (same estimator,
same normalized error), so thresholds calibrated offline transfer
directly; equivalence is covered by the tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from repro.detectors.base import WindowVerdict
from repro.errors import ConfigurationError, InsufficientDataError
from repro.ratings.models import Rating
from repro.signal.ar import AR_METHODS
from repro.signal.sliding import SlidingCovarianceFitter
from repro.signal.windows import Window

__all__ = ["OnlineARDetector"]


class OnlineARDetector:
    """Streaming suspicious-interval detector for one object.

    Args:
        order: AR model order.
        threshold: normalized model-error threshold.
        window_size: ratings kept in the sliding buffer (the analysis
            window; matches the batch detector's count window).
        stride: arrivals between refits (1 = evaluate on every rating;
            larger strides trade alarm latency for compute).
        method: AR estimator name.
        scale: suspicion level assigned to flagged windows (saturating,
            like the pipeline's literal rule).
        incremental: maintain the covariance-method normal equations
            under rank-1 updates (:class:`SlidingCovarianceFitter`)
            instead of rebuilding the least-squares problem per refit
            -- numerically equivalent, ``O(stride * p^2 + p^3)`` per
            evaluation.  Only valid with ``method="covariance"``.
        max_raters_per_product: hard cap on the position -> rater map.
            Between :meth:`prune` calls the map grows by one entry per
            rating; under the cap the oldest positions are evicted as
            new ones arrive (LRU -- positions are inserted in stream
            order), so memory stays bounded even if a deployment
            forgets to prune.  ``None`` (default) keeps the unbounded
            behaviour.
        on_eviction: optional callback invoked with the number of
            entries evicted by a single arrival (deployments wire it
            to an eviction counter metric).
    """

    def __init__(
        self,
        order: int = 4,
        threshold: float = 0.10,
        window_size: int = 50,
        stride: int = 5,
        method: str = "covariance",
        scale: float = 1.0,
        incremental: bool = False,
        max_raters_per_product: Optional[int] = None,
        on_eviction: Optional[Callable[[int], None]] = None,
    ) -> None:
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError(f"threshold must lie in (0, 1), got {threshold}")
        if window_size <= 2 * order:
            raise ConfigurationError(
                f"window_size must exceed 2 * order = {2 * order}, got {window_size}"
            )
        if stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {stride}")
        if method not in AR_METHODS:
            raise ConfigurationError(
                f"unknown AR method {method!r}; choose from {sorted(AR_METHODS)}"
            )
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(f"scale must lie in (0, 1], got {scale}")
        if incremental and method != "covariance":
            raise ConfigurationError(
                "incremental refitting is only available for the "
                f"covariance method, not {method!r}"
            )
        if max_raters_per_product is not None and max_raters_per_product < 1:
            raise ConfigurationError(
                f"max_raters_per_product must be >= 1, got {max_raters_per_product}"
            )
        self.order = order
        self.threshold = float(threshold)
        self.window_size = int(window_size)
        self.stride = int(stride)
        self.method = method
        self.scale = float(scale)
        self.incremental = bool(incremental)
        self.max_raters_per_product = (
            None if max_raters_per_product is None else int(max_raters_per_product)
        )
        self.on_eviction = on_eviction
        self.n_evictions = 0
        self._fitter: Optional[SlidingCovarianceFitter] = (
            SlidingCovarianceFitter(order=order, capacity=window_size)
            if incremental
            else None
        )
        self._buffer: Deque[Rating] = deque(maxlen=window_size)
        self._since_last_fit = 0
        self._n_seen = 0
        self._n_evaluations = 0
        self._last_time: Optional[float] = None
        self._rater_by_position: dict = {}
        self.verdicts: List[WindowVerdict] = []

    # -- state ---------------------------------------------------------------

    @property
    def n_seen(self) -> int:
        """Total ratings observed."""
        return self._n_seen

    @property
    def buffer_full(self) -> bool:
        return len(self._buffer) == self.window_size

    @property
    def alarms(self) -> List[WindowVerdict]:
        """All suspicious verdicts emitted so far."""
        return [v for v in self.verdicts if v.suspicious]

    def reset(self) -> None:
        """Drop all buffered state (e.g. when switching objects)."""
        self._buffer.clear()
        if self._fitter is not None:
            self._fitter.reset()
        self._since_last_fit = 0
        self._n_seen = 0
        self._n_evaluations = 0
        self._last_time = None
        self._rater_by_position = {}
        self.n_evictions = 0
        self.verdicts = []

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable streaming state (buffer + counters).

        Captures exactly what future :meth:`observe` calls depend on:
        the buffered ratings, refit phase, and arrival counters.  The
        verdict history and the position -> rater map are deliberately
        excluded -- they grow with the stream, and long-running
        deployments (see :mod:`repro.service.engine`) consume verdicts
        as they are emitted and call :meth:`prune`.
        """
        return {
            "buffer": [asdict(rating) for rating in self._buffer],
            "since_last_fit": self._since_last_fit,
            "n_seen": self._n_seen,
            "n_evaluations": self._n_evaluations,
            "last_time": self._last_time,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output; replaces current state.

        A restored detector emits the same verdict sequence for the
        same subsequent arrivals as the detector that saved the state.
        """
        buffered = [Rating(**row) for row in state["buffer"]]
        if len(buffered) > self.window_size:
            raise ConfigurationError(
                f"state buffer has {len(buffered)} ratings but window_size "
                f"is {self.window_size}"
            )
        self.reset()
        self._buffer.extend(buffered)
        if self._fitter is not None:
            self._fitter.extend(rating.value for rating in buffered)
        self._since_last_fit = int(state["since_last_fit"])
        self._n_seen = int(state["n_seen"])
        self._n_evaluations = int(state["n_evaluations"])
        last_time = state["last_time"]
        self._last_time = None if last_time is None else float(last_time)

    def prune(self) -> None:
        """Drop emitted verdicts and stale position -> rater entries.

        For long-lived streams the verdict list and the position map
        grow without bound; a deployment that has already drained the
        verdicts (charged their windows to raters) calls this per
        trust interval to keep memory proportional to ``window_size``.
        Afterwards :attr:`alarms` / :meth:`suspicious_raters` only
        reflect evaluations made since the prune.
        """
        self.verdicts = []
        cutoff = self._n_seen - self.window_size
        if cutoff > 0:
            self._rater_by_position = {
                position: rater_id
                for position, rater_id in self._rater_by_position.items()
                if position >= cutoff
            }

    # -- streaming -------------------------------------------------------------

    def observe(self, rating: Rating) -> Optional[WindowVerdict]:
        """Feed one rating; returns a verdict when a refit was due.

        Ratings must arrive in time order (equal timestamps allowed);
        out-of-order arrivals raise, since a silently reordered buffer
        would corrupt the temporal statistic.
        """
        if self._last_time is not None and rating.time < self._last_time:
            raise ConfigurationError(
                f"out-of-order rating: {rating.time} after {self._last_time}"
            )
        self._last_time = rating.time
        self._buffer.append(rating)
        if self._fitter is not None:
            self._fitter.push(rating.value)
        self._rater_by_position[self._n_seen] = rating.rater_id
        cap = self.max_raters_per_product
        if cap is not None and len(self._rater_by_position) > cap:
            # Positions enter in stream order, so the dict's insertion
            # order *is* recency order: evict from the front.
            evicted = 0
            while len(self._rater_by_position) > cap:
                oldest = next(iter(self._rater_by_position))
                del self._rater_by_position[oldest]
                evicted += 1
            self.n_evictions += evicted
            if self.on_eviction is not None:
                self.on_eviction(evicted)
        self._n_seen += 1
        self._since_last_fit += 1
        if not self.buffer_full or self._since_last_fit < self.stride:
            return None
        self._since_last_fit = 0
        return self._evaluate()

    def observe_many(self, ratings) -> List[WindowVerdict]:
        """Feed a batch of time-ordered ratings; returns emitted verdicts."""
        emitted = []
        for rating in ratings:
            verdict = self.observe(rating)
            if verdict is not None:
                emitted.append(verdict)
        return emitted

    def _evaluate(self) -> Optional[WindowVerdict]:
        try:
            if self._fitter is not None:
                model = self._fitter.fit()
            else:
                values = np.array([r.value for r in self._buffer])
                model = AR_METHODS[self.method](values, self.order)
        except InsufficientDataError:
            return None
        error = model.normalized_error
        suspicious = error < self.threshold
        window = Window(
            index=self._n_evaluations,
            indices=np.arange(self._n_seen - len(self._buffer), self._n_seen),
            start_time=self._buffer[0].time,
            end_time=self._buffer[-1].time,
        )
        verdict = WindowVerdict(
            window=window,
            statistic=error,
            suspicious=suspicious,
            level=self.scale if suspicious else 0.0,
        )
        self._n_evaluations += 1
        self.verdicts.append(verdict)
        return verdict

    # -- per-rater suspicion -----------------------------------------------------

    def suspicious_raters(self) -> dict:
        """rater_id -> accumulated suspicion from alarms so far.

        Matches the batch accumulation rule: a rating is charged the
        maximum level over the suspicious evaluations whose window
        contained it, and a rater's suspicion sums their ratings'
        charges.  (The position -> rater map grows with the stream; a
        long-lived deployment should drain it per trust interval.)
        """
        charges: dict = {}
        for verdict in self.alarms:
            for position in verdict.window.indices:
                key = int(position)
                charges[key] = max(charges.get(key, 0.0), verdict.level)
        suspicion: dict = {}
        for position, level in charges.items():
            rater_id = self._rater_by_position.get(position)
            if rater_id is None:
                continue
            suspicion[rater_id] = suspicion.get(rater_id, 0.0) + level
        return suspicion
