"""Collusion-group recovery from co-suspicion structure.

Procedure 1 scores raters individually, but the attack is a *group*
phenomenon: recruited raters keep landing in the same suspicious
windows, across windows and across products.  This module builds the
**co-suspicion graph** -- nodes are raters, edge weights count how
often two raters appeared together in flagged windows -- and extracts
candidate collusion groups as the connected components of the graph
after pruning weak edges.

A pair's edge weight counts the number of *reports* (product-intervals)
in which the two raters shared at least one flagged window -- counting
reports rather than windows, because overlapping windows within one
product-month would otherwise double-count a single encounter.  Honest
raters do stumble into flagged windows, but rarely together in *many
distinct campaigns*: an honest pair's weight stays at 1-2 over a year
while recruits who answer most monthly campaigns accumulate weights of
5+, so a small minimum edge weight separates the structures.  The
marketplace experiment (``repro.experiments.collusion_groups``)
measures group recovery precision/recall against the ground-truth
recruit lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Tuple

import networkx as nx

from repro.detectors.base import SuspicionReport
from repro.errors import ConfigurationError

__all__ = ["CollusionGroups", "build_cosuspicion_graph", "extract_groups"]


@dataclass(frozen=True)
class CollusionGroups:
    """Candidate collusion groups and the graph they came from.

    Attributes:
        groups: candidate groups, largest first.
        graph: the pruned co-suspicion graph.
        n_windows: flagged windows that contributed edges.
    """

    groups: Tuple[FrozenSet[int], ...]
    graph: nx.Graph
    n_windows: int

    @property
    def flagged_raters(self) -> FrozenSet[int]:
        """Union of all candidate groups."""
        members: set = set()
        for group in self.groups:
            members |= group
        return frozenset(members)


def build_cosuspicion_graph(
    reports: Iterable[SuspicionReport],
    max_members_per_report: int = 1000,
) -> Tuple[nx.Graph, int]:
    """Accumulate pairwise co-occurrence counts over flagged windows.

    Within one report (one product-interval) a pair is counted at most
    once, however many overlapping flagged windows they share -- the
    edge weight measures *distinct campaigns jointly attended*.

    Args:
        reports: detector reports (one per product / interval).
        max_members_per_report: safety cap -- reports whose flagged
            windows cover more raters than this contribute no edges
            (a quadratic blowup guard).

    Returns:
        ``(graph, n_flagged_windows)``; edge attribute ``weight`` is
        the number of reports in which the pair co-occurred in a
        flagged window.
    """
    graph = nx.Graph()
    n_windows = 0
    for report in reports:
        ratings = report.stream.ratings
        members: set = set()
        for verdict in report.verdicts:
            if not verdict.suspicious:
                continue
            n_windows += 1
            members |= {
                ratings[int(i)].rater_id for i in verdict.window.indices
            }
        if not 2 <= len(members) <= max_members_per_report:
            continue
        for a, b in combinations(sorted(members), 2):
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += 1
            else:
                graph.add_edge(a, b, weight=1)
    return graph, n_windows


def extract_groups(
    graph: nx.Graph,
    min_edge_weight: int = 2,
    min_group_size: int = 3,
) -> Tuple[FrozenSet[int], ...]:
    """Prune weak edges and return connected components as groups.

    Args:
        graph: the co-suspicion graph.
        min_edge_weight: edges below this repeat count are noise (honest
            raters co-occur in a flagged window once by accident, not
            repeatedly).
        min_group_size: smaller components are discarded -- a collusion
            "group" of two is indistinguishable from coincidence.

    Returns:
        Groups sorted largest-first.
    """
    if min_edge_weight < 1:
        raise ConfigurationError(
            f"min_edge_weight must be >= 1, got {min_edge_weight}"
        )
    if min_group_size < 2:
        raise ConfigurationError(
            f"min_group_size must be >= 2, got {min_group_size}"
        )
    strong = nx.Graph()
    for a, b, data in graph.edges(data=True):
        if data.get("weight", 0) >= min_edge_weight:
            strong.add_edge(a, b, weight=data["weight"])
    groups = [
        frozenset(component)
        for component in nx.connected_components(strong)
        if len(component) >= min_group_size
    ]
    groups.sort(key=len, reverse=True)
    return tuple(groups)


def detect_collusion_groups(
    reports: Iterable[SuspicionReport],
    min_edge_weight: int = 2,
    min_group_size: int = 3,
) -> CollusionGroups:
    """End-to-end: reports -> co-suspicion graph -> candidate groups."""
    graph, n_windows = build_cosuspicion_graph(reports)
    groups = extract_groups(
        graph, min_edge_weight=min_edge_weight, min_group_size=min_group_size
    )
    return CollusionGroups(groups=groups, graph=graph, n_windows=n_windows)
