"""Suspicion-detector interface (feature extraction module II).

A suspicion detector inspects the *normal* (post-filter) ratings of one
object and produces a :class:`SuspicionReport`: per-window diagnostics,
per-rating suspicion levels, and the per-rater suspicion values
``C(i)`` that Procedure 2 folds into trust as ``F += b * C``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List

from repro.ratings.stream import RatingStream
from repro.signal.windows import Window

__all__ = ["WindowVerdict", "SuspicionReport", "SuspicionDetector"]


@dataclass(frozen=True)
class WindowVerdict:
    """Diagnostics for one analysis window.

    Attributes:
        window: the window (indices into the analyzed stream).
        statistic: the detector's raw statistic for the window (AR
            normalized model error, entropy change, cluster separation...).
        suspicious: True when the window is flagged.
        level: suspicion level in ``[0, 1]`` (0 for clean windows).
    """

    window: Window
    statistic: float
    suspicious: bool
    level: float


@dataclass
class SuspicionReport:
    """Full output of a detector run over one stream.

    Attributes:
        stream: the analyzed stream.
        verdicts: one :class:`WindowVerdict` per analysis window.
        rating_suspicion: rating_id -> suspicion level (max over the
            suspicious windows containing the rating; 0 if absent).
        rater_suspicion: rater_id -> ``C(i)``, the summed suspicion of
            the rater's ratings (Procedure 1's output).
    """

    stream: RatingStream
    verdicts: List[WindowVerdict] = field(default_factory=list)
    rating_suspicion: Dict[int, float] = field(default_factory=dict)
    rater_suspicion: Dict[int, float] = field(default_factory=dict)

    @property
    def suspicious_verdicts(self) -> List[WindowVerdict]:
        return [v for v in self.verdicts if v.suspicious]

    @property
    def flagged_rating_ids(self) -> frozenset:
        """Ids of ratings lying in at least one suspicious window."""
        return frozenset(
            rid for rid, level in self.rating_suspicion.items() if level > 0.0
        )

    @property
    def flagged_rater_ids(self) -> frozenset:
        """Ids of raters with a positive suspicion value."""
        return frozenset(
            rid for rid, c in self.rater_suspicion.items() if c > 0.0
        )

    def statistic_series(self) -> tuple:
        """(window mid-times, window statistics) for plotting/benches."""
        mids = [v.window.mid_time for v in self.verdicts]
        values = [v.statistic for v in self.verdicts]
        return mids, values


class SuspicionDetector(abc.ABC):
    """Abstract suspicion detector."""

    @abc.abstractmethod
    def detect(self, stream: RatingStream) -> SuspicionReport:
        """Analyze one object's (post-filter) rating stream."""

    @staticmethod
    def _accumulate(
        stream: RatingStream, verdicts: List[WindowVerdict]
    ) -> SuspicionReport:
        """Turn window verdicts into per-rating and per-rater suspicion.

        Each rating is charged the *maximum* level over the suspicious
        windows containing it (so overlapping windows never double-
        charge -- the evident intent of Procedure 1's ``L_latest``
        bookkeeping); a rater's ``C(i)`` sums the charges of their
        ratings.
        """
        rating_level: Dict[int, float] = {}
        ratings = stream.ratings
        for verdict in verdicts:
            if not verdict.suspicious:
                continue
            for idx in verdict.window.indices:
                rating = ratings[int(idx)]
                current = rating_level.get(rating.rating_id, 0.0)
                rating_level[rating.rating_id] = max(current, verdict.level)
        rater_suspicion: Dict[int, float] = {}
        for rating in ratings:
            level = rating_level.get(rating.rating_id, 0.0)
            if level > 0.0:
                rater_suspicion[rating.rater_id] = (
                    rater_suspicion.get(rating.rater_id, 0.0) + level
                )
        return SuspicionReport(
            stream=stream,
            verdicts=verdicts,
            rating_suspicion=rating_level,
            rater_suspicion=rater_suspicion,
        )
