"""Suspicion detectors: the paper's AR detector plus literature baselines."""

from repro.detectors.ar_detector import ARModelErrorDetector
from repro.detectors.changepoint import CusumDetector, VarianceRatioDetector
from repro.detectors.groups import (
    CollusionGroups,
    build_cosuspicion_graph,
    detect_collusion_groups,
    extract_groups,
)
from repro.detectors.base import SuspicionDetector, SuspicionReport, WindowVerdict
from repro.detectors.clustering import ClusteringDetector, two_means_1d
from repro.detectors.endorsement import EndorsementDetector, endorsement_quality
from repro.detectors.entropy import EntropyChangeDetector
from repro.detectors.online import OnlineARDetector

__all__ = [
    "ARModelErrorDetector",
    "SuspicionDetector",
    "SuspicionReport",
    "WindowVerdict",
    "ClusteringDetector",
    "two_means_1d",
    "EndorsementDetector",
    "endorsement_quality",
    "EntropyChangeDetector",
    "OnlineARDetector",
    "CusumDetector",
    "CollusionGroups",
    "build_cosuspicion_graph",
    "detect_collusion_groups",
    "extract_groups",
    "VarianceRatioDetector",
]
