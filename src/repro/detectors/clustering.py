"""Two-cluster separation detector (Dellarocas 2000 baseline).

Dellarocas immunizes reputation systems by clustering the ratings of an
object into two groups (here: one-dimensional 2-means on the rating
values) and discarding the cluster that looks like a coordinated
deviation.  A window is flagged only when the clusters are clearly
separated *and* the deviating cluster is a minority; the moderate-bias
strategy keeps its ratings close enough to the majority that the
separation test fails, reproducing the paper's negative baseline.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.detectors.base import SuspicionDetector, SuspicionReport, WindowVerdict
from repro.ratings.stream import RatingStream
from repro.signal.windows import CountWindower

__all__ = ["ClusteringDetector", "two_means_1d"]


def two_means_1d(
    values: np.ndarray, max_iterations: int = 100
) -> Tuple[np.ndarray, float, float]:
    """1-D 2-means clustering.

    Args:
        values: samples to cluster.
        max_iterations: Lloyd-iteration cap.

    Returns:
        ``(labels, low_center, high_center)`` where ``labels[i]`` is 0
        for the low cluster and 1 for the high cluster.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size < 2:
        raise ConfigurationError("2-means needs at least 2 samples")
    low, high = float(np.min(values)), float(np.max(values))
    if low == high:
        return np.zeros(values.size, dtype=int), low, high
    for _ in range(max_iterations):
        boundary = 0.5 * (low + high)
        labels = (values > boundary).astype(int)
        if not labels.any() or labels.all():
            break
        new_low = float(np.mean(values[labels == 0]))
        new_high = float(np.mean(values[labels == 1]))
        if new_low == low and new_high == high:
            break
        low, high = new_low, new_high
    labels = (values > 0.5 * (low + high)).astype(int)
    return labels, low, high


class ClusteringDetector(SuspicionDetector):
    """Flag windows whose ratings split into two well-separated clusters.

    Args:
        min_separation: minimum distance between cluster centers for
            the window to be flagged (the knob that moderate-bias
            collusion ducks under; the default 0.5 keeps the 2-means
            split of wide honest noise from flagging itself).
        max_minority_fraction: the deviating cluster must hold at most
            this fraction of the window's ratings.
        windower: count windower over the stream (default 50 step 25,
            matching the AR detector's Fig. 4 configuration).
        level: suspicion level assigned to flagged minority ratings.
    """

    def __init__(
        self,
        min_separation: float = 0.5,
        max_minority_fraction: float = 0.45,
        windower: CountWindower | None = None,
        level: float = 0.5,
    ) -> None:
        if min_separation <= 0:
            raise ConfigurationError(
                f"min_separation must be > 0, got {min_separation}"
            )
        if not 0.0 < max_minority_fraction < 1.0:
            raise ConfigurationError(
                "max_minority_fraction must lie in (0, 1), got "
                f"{max_minority_fraction}"
            )
        self.min_separation = float(min_separation)
        self.max_minority_fraction = float(max_minority_fraction)
        self.windower = windower if windower is not None else CountWindower(size=50, step=25)
        self.level = float(level)

    def detect(self, stream: RatingStream) -> SuspicionReport:
        if len(stream) == 0:
            return SuspicionReport(stream=stream)
        times = stream.times
        values = stream.values
        verdicts: List[WindowVerdict] = []
        for window in self.windower.windows(times):
            samples = window.values(values)
            if samples.size < 4:
                continue
            labels, low, high = two_means_1d(samples)
            separation = high - low
            minority_is_high = np.mean(labels) <= 0.5
            minority_mask = labels == (1 if minority_is_high else 0)
            minority_fraction = float(np.mean(minority_mask))
            suspicious = (
                separation >= self.min_separation
                and 0.0 < minority_fraction <= self.max_minority_fraction
            )
            if suspicious:
                flagged_indices = window.indices[minority_mask]
            else:
                flagged_indices = window.indices[:0]
            verdicts.append(
                WindowVerdict(
                    window=type(window)(
                        index=window.index,
                        indices=flagged_indices if suspicious else window.indices,
                        start_time=window.start_time,
                        end_time=window.end_time,
                    ),
                    statistic=separation,
                    suspicious=suspicious,
                    level=self.level if suspicious else 0.0,
                )
            )
        return self._accumulate(stream, verdicts)
