"""Endorsement-quality detector (Chen & Singh 2001 baseline).

Each rater implicitly endorses raters whose ratings are similar to
their own; a rating's quality is the average endorsement it receives
from the other ratings of the same object.  Low-quality ratings (those
unlike everyone else's) are flagged.  Because a moderate-bias colluder
*maximizes* similarity with the majority -- and colluders endorse each
other -- this baseline also fails against strategy 2, which is the
comparison the paper reports.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.detectors.base import SuspicionDetector, SuspicionReport, WindowVerdict
from repro.ratings.stream import RatingStream
from repro.signal.windows import CountWindower

__all__ = ["EndorsementDetector", "endorsement_quality"]


def endorsement_quality(values: np.ndarray) -> np.ndarray:
    """Quality of each rating: mean similarity to the other ratings.

    Similarity between two ratings is ``1 - |r_i - r_j|`` (ratings live
    in [0, 1]); a rating's quality averages its similarity to every
    *other* rating, so a lone outlier scores low while consensus
    ratings score near 1.
    """
    values = np.asarray(values, dtype=float).ravel()
    n = values.size
    if n < 2:
        raise ConfigurationError("endorsement quality needs >= 2 ratings")
    diffs = np.abs(values[:, None] - values[None, :])
    similarity = 1.0 - diffs
    np.fill_diagonal(similarity, 0.0)
    return similarity.sum(axis=1) / (n - 1)


class EndorsementDetector(SuspicionDetector):
    """Flag ratings whose endorsement quality falls below a threshold.

    Args:
        quality_threshold: ratings with quality below this are flagged.
        windower: count windower (default 50 step 25).
        level: suspicion level assigned to flagged ratings.
    """

    def __init__(
        self,
        quality_threshold: float = 0.6,
        windower: CountWindower | None = None,
        level: float = 0.5,
    ) -> None:
        if not 0.0 < quality_threshold < 1.0:
            raise ConfigurationError(
                f"quality_threshold must lie in (0, 1), got {quality_threshold}"
            )
        self.quality_threshold = float(quality_threshold)
        self.windower = windower if windower is not None else CountWindower(size=50, step=25)
        self.level = float(level)

    def detect(self, stream: RatingStream) -> SuspicionReport:
        if len(stream) == 0:
            return SuspicionReport(stream=stream)
        times = stream.times
        values = stream.values
        verdicts: List[WindowVerdict] = []
        for window in self.windower.windows(times):
            samples = window.values(values)
            if samples.size < 2:
                continue
            quality = endorsement_quality(samples)
            low_mask = quality < self.quality_threshold
            suspicious = bool(low_mask.any())
            flagged = window.indices[low_mask]
            verdicts.append(
                WindowVerdict(
                    window=type(window)(
                        index=window.index,
                        indices=flagged if suspicious else window.indices,
                        start_time=window.start_time,
                        end_time=window.end_time,
                    ),
                    statistic=float(np.min(quality)),
                    suspicious=suspicious,
                    level=self.level if suspicious else 0.0,
                )
            )
        return self._accumulate(stream, verdicts)
