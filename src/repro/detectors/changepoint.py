"""Change-point and variance-based detectors.

Two more comparison points for the AR detector:

* :class:`CusumDetector` -- the classic CUSUM (cumulative sum) mean
  change-point test.  A collusion campaign shifts the rating mean, so
  CUSUM *can* see strategy 2 in principle -- but the honest noise is so
  wide relative to the moderate bias that it needs far more samples
  than one campaign provides, and the object's own quality drift trips
  it.  Quantifying that trade-off positions the AR detector against
  the obvious textbook alternative.
* :class:`VarianceRatioDetector` -- an ablation oracle: flags windows
  whose sample variance is anomalously low relative to the stream's
  typical window variance (one-sided F-style test).  The AR model
  error under DC normalization is largely a variance statistic, so
  this detector isolates how much of the AR detector's power comes
  from the variance drop alone.
"""

from __future__ import annotations

from typing import List

import numpy as np
from scipy import stats

from repro.detectors.base import SuspicionDetector, SuspicionReport, WindowVerdict
from repro.errors import ConfigurationError
from repro.ratings.stream import RatingStream
from repro.signal.windows import CountWindower, Window

__all__ = ["CusumDetector", "VarianceRatioDetector"]


class CusumDetector(SuspicionDetector):
    """Two-sided CUSUM test on the rating mean.

    Maintains the standard recursions

        g+_n = max(0, g+_{n-1} + (x_n - mu - drift))
        g-_n = max(0, g-_{n-1} - (x_n - mu + drift))

    against a reference mean estimated from the first ``burn_in``
    ratings; an alarm fires when either statistic exceeds
    ``threshold * sigma``, and the statistic resets afterward.

    Args:
        threshold: alarm level in units of the reference deviation
            (classic choices 4-6).
        drift: allowed slack per sample in sigma units (0.5 is the
            textbook value for detecting one-sigma shifts).
        burn_in: ratings used to estimate the reference mean/sigma.
        level: suspicion level charged to ratings between the change
            onset estimate and the alarm.
    """

    def __init__(
        self,
        threshold: float = 5.0,
        drift: float = 0.5,
        burn_in: int = 30,
        level: float = 0.5,
    ) -> None:
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        if drift < 0:
            raise ConfigurationError(f"drift must be >= 0, got {drift}")
        if burn_in < 5:
            raise ConfigurationError(f"burn_in must be >= 5, got {burn_in}")
        self.threshold = float(threshold)
        self.drift = float(drift)
        self.burn_in = int(burn_in)
        self.level = float(level)

    def detect(self, stream: RatingStream) -> SuspicionReport:
        n = len(stream)
        if n <= self.burn_in:
            return SuspicionReport(stream=stream)
        values = stream.values
        times = stream.times
        mu = float(np.mean(values[: self.burn_in]))
        sigma = float(np.std(values[: self.burn_in]))
        if sigma <= 1e-9:
            sigma = 1e-9

        verdicts: List[WindowVerdict] = []
        g_pos = g_neg = 0.0
        onset = self.burn_in
        for i in range(self.burn_in, n):
            z = (values[i] - mu) / sigma
            g_pos = max(0.0, g_pos + z - self.drift)
            g_neg = max(0.0, g_neg - z - self.drift)
            if g_pos == 0.0 and g_neg == 0.0:
                onset = i + 1
            statistic = max(g_pos, g_neg)
            if statistic > self.threshold:
                indices = np.arange(onset, i + 1)
                verdicts.append(
                    WindowVerdict(
                        window=Window(
                            index=len(verdicts),
                            indices=indices,
                            start_time=float(times[indices[0]]),
                            end_time=float(times[i]),
                        ),
                        statistic=statistic,
                        suspicious=True,
                        level=self.level,
                    )
                )
                g_pos = g_neg = 0.0
                onset = i + 1
        return self._accumulate(stream, verdicts)


class VarianceRatioDetector(SuspicionDetector):
    """Flag windows whose variance drops below the stream's norm.

    Each count window's sample variance is compared against the median
    window variance via a one-sided F-test; windows whose ratio falls
    below the test's critical value are suspicious.

    Args:
        alpha: significance level of the one-sided F-test.
        windower: count windower (default 50 step 25).
        level: suspicion level for flagged windows.
    """

    def __init__(
        self,
        alpha: float = 0.01,
        windower: CountWindower | None = None,
        level: float = 0.5,
    ) -> None:
        if not 0.0 < alpha < 0.5:
            raise ConfigurationError(f"alpha must lie in (0, 0.5), got {alpha}")
        self.alpha = float(alpha)
        self.windower = windower if windower is not None else CountWindower(size=50, step=25)
        self.level = float(level)

    def detect(self, stream: RatingStream) -> SuspicionReport:
        if len(stream) == 0:
            return SuspicionReport(stream=stream)
        times = stream.times
        values = stream.values
        windows = list(self.windower.windows(times))
        if len(windows) < 3:
            return SuspicionReport(stream=stream)
        variances = np.array(
            [float(np.var(w.values(values), ddof=1)) for w in windows]
        )
        reference = float(np.median(variances))
        if reference <= 1e-12:
            return SuspicionReport(stream=stream)
        df = windows[0].size - 1
        critical = float(stats.f.ppf(self.alpha, df, df))
        verdicts: List[WindowVerdict] = []
        for window, variance in zip(windows, variances):
            ratio = variance / reference
            suspicious = ratio < critical
            verdicts.append(
                WindowVerdict(
                    window=window,
                    statistic=ratio,
                    suspicious=suspicious,
                    level=self.level if suspicious else 0.0,
                )
            )
        return self._accumulate(stream, verdicts)
