"""repro -- trust-enhanced online rating aggregation with AR fraud detection.

A complete reproduction of Yang, Sun, Ren & Yang, *Building Trust in
Online Rating Systems Through Signal Modeling* (ICDCS 2007): the AR
signal-modeling detector for collaborative rating fraud, the
trust-enhanced aggregation pipeline, the literature baselines it is
compared against, and the simulations that evaluate all of it.

Quick start::

    import numpy as np
    from repro import (
        IllustrativeConfig, generate_illustrative, ARModelErrorDetector,
    )

    trace = generate_illustrative(IllustrativeConfig(), np.random.default_rng(0))
    detector = ARModelErrorDetector(threshold=0.10)
    report = detector.detect(trace.attacked)
    print(len(report.suspicious_verdicts), "suspicious windows")

See the ``examples/`` directory for full scenarios and ``repro list``
on the command line for the paper's experiments.
"""

from repro._version import __version__
from repro.aggregation import (
    BetaFunctionAggregator,
    ModifiedWeightedAverage,
    PlainWeightedAverage,
    SimpleAverage,
    SunTrustModelAggregator,
)
from repro.attacks import (
    CamouflageCampaign,
    CollusionCampaign,
    DutyCycleCampaign,
    RampCampaign,
    estimate_trace_statistics,
    inject_campaign,
    required_colluders,
)
from repro.core import TrustEnhancedRatingSystem
from repro.data import DINOSAUR_PLANET, NetflixTraceConfig, generate_netflix_trace
from repro.detectors import (
    ARModelErrorDetector,
    OnlineARDetector,
    ClusteringDetector,
    EndorsementDetector,
    EntropyChangeDetector,
    SuspicionReport,
)
from repro.errors import ReproError
from repro.evaluation import monte_carlo, rater_detection, rating_detection
from repro.filters import BetaQuantileFilter, IQRFilter, NullFilter, ZScoreFilter
from repro.ratings import (
    ELEVEN_LEVEL,
    FIVE_STAR,
    TEN_LEVEL,
    Product,
    RaterClass,
    RaterProfile,
    Rating,
    RatingScale,
    RatingStore,
    RatingStream,
)
from repro.service import (
    MetricsRegistry,
    RatingEngine,
    ServiceConfig,
    SubmitResult,
    WriteAheadLog,
)
from repro.signal import ARModel, arburg, arcov, aryule
from repro.simulation import (
    IllustrativeConfig,
    MarketplaceConfig,
    PipelineConfig,
    generate_illustrative,
    generate_marketplace,
    run_marketplace,
)
from repro.trust import TrustManager, TrustManagerConfig, TrustRecord, beta_trust

__all__ = [
    "__version__",
    "BetaFunctionAggregator",
    "ModifiedWeightedAverage",
    "PlainWeightedAverage",
    "SimpleAverage",
    "SunTrustModelAggregator",
    "CamouflageCampaign",
    "CollusionCampaign",
    "DutyCycleCampaign",
    "RampCampaign",
    "estimate_trace_statistics",
    "inject_campaign",
    "required_colluders",
    "TrustEnhancedRatingSystem",
    "DINOSAUR_PLANET",
    "NetflixTraceConfig",
    "generate_netflix_trace",
    "ARModelErrorDetector",
    "OnlineARDetector",
    "ClusteringDetector",
    "EndorsementDetector",
    "EntropyChangeDetector",
    "SuspicionReport",
    "ReproError",
    "monte_carlo",
    "rater_detection",
    "rating_detection",
    "BetaQuantileFilter",
    "IQRFilter",
    "NullFilter",
    "ZScoreFilter",
    "ELEVEN_LEVEL",
    "FIVE_STAR",
    "TEN_LEVEL",
    "Product",
    "RaterClass",
    "RaterProfile",
    "Rating",
    "RatingScale",
    "RatingStore",
    "RatingStream",
    "ARModel",
    "arburg",
    "arcov",
    "aryule",
    "IllustrativeConfig",
    "MarketplaceConfig",
    "PipelineConfig",
    "generate_illustrative",
    "generate_marketplace",
    "run_marketplace",
    "TrustManager",
    "TrustManagerConfig",
    "TrustRecord",
    "beta_trust",
    "MetricsRegistry",
    "RatingEngine",
    "ServiceConfig",
    "SubmitResult",
    "WriteAheadLog",
]
