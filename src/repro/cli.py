"""Command-line interface: ``repro <experiment>`` or ``python -m repro``.

Runs any paper experiment and prints its paper-vs-measured report.
``repro list`` shows what is available; every experiment accepts
``--seed`` and, where meaningful, a size knob so quick runs stay quick.
``repro serve`` runs the long-lived rating service (HTTP API over the
sharded streaming engine), ``repro replay`` pushes a recorded trace
through the same engine offline, and ``repro lint`` runs the
project's static analyzer (:mod:`repro.devtools`).

Exit codes follow one convention across every subcommand (see
docs/SERVICE.md): 0 success, 1 domain failure (:class:`ReproError`,
lint findings), 2 usage or internal error -- so scripts and CI can
rely on the status code instead of scraping tracebacks.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments import REGISTRY
from repro.reporting import dump_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'Building Trust in Online Rating "
            "Systems Through Signal Modeling' (ICDCS 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment",
        choices=sorted(REGISTRY),
        help="which paper artifact to reproduce",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="master seed")
    run_parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="Monte-Carlo repetitions (experiments that repeat; "
        "defaults to the paper's count)",
    )
    run_parser.add_argument(
        "--bias",
        type=float,
        default=None,
        help="attack bias shift (fig10-fig12 only)",
    )
    run_parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also dump the structured result to this JSON file",
    )

    audit_parser = sub.add_parser(
        "audit", help="audit a rating-trace file (.csv or .jsonl)"
    )
    audit_parser.add_argument("trace", help="path to the trace file")
    audit_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="model-error threshold (default: auto-calibrated to the trace)",
    )
    audit_parser.add_argument(
        "--window", type=int, default=50, help="ratings per analysis window"
    )

    serve_parser = sub.add_parser(
        "serve", help="run the rating service (sharded engine + HTTP API)"
    )
    _add_engine_arguments(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8080, help="bind port")
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )

    replay_parser = sub.add_parser(
        "replay", help="replay a rating trace (.csv or .jsonl) through the engine"
    )
    replay_parser.add_argument("trace", help="path to the trace file")
    _add_engine_arguments(replay_parser)
    replay_parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also dump the replay stats to this JSON file",
    )

    lint_parser = sub.add_parser(
        "lint", help="run the project static analyzer (repro.devtools)"
    )
    from repro.devtools.cli import configure_parser as _configure_lint_parser

    _configure_lint_parser(lint_parser)
    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Service-engine knobs shared by ``serve`` and ``replay``."""
    parser.add_argument("--shards", type=int, default=4, help="engine shard count")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "run a multi-process cluster with this many worker processes "
            "(0 = in-process engine; requires --wal-dir)"
        ),
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=4096,
        help="cluster: max acked ratings buffered per worker",
    )
    parser.add_argument(
        "--ack-fsync-every",
        type=int,
        default=64,
        help="cluster: group-commit the ingest WAL every N acks",
    )
    parser.add_argument(
        "--batch", type=int, default=64, help="ratings per trust flush (per shard)"
    )
    parser.add_argument(
        "--batch-seconds",
        type=float,
        default=None,
        help="also flush after this many seconds (default: count-only)",
    )
    parser.add_argument(
        "--window", type=int, default=50, help="streaming detector window size"
    )
    parser.add_argument(
        "--stride", type=int, default=5, help="arrivals between AR refits"
    )
    parser.add_argument(
        "--threshold", type=float, default=0.10, help="model-error alarm threshold"
    )
    parser.add_argument(
        "--sources",
        default="ar",
        help=(
            "comma-separated detector ensemble sources "
            "(ar, cograph, iterfilter; default: ar only)"
        ),
    )
    parser.add_argument(
        "--source-weights",
        default=None,
        help="comma-separated combiner weights, aligned with --sources",
    )
    parser.add_argument(
        "--combiner",
        default="weighted_mean",
        choices=("weighted_mean", "max"),
        help="how per-source suspicion masses merge",
    )
    parser.add_argument(
        "--store",
        default="memory",
        choices=("memory", "tiered"),
        help=(
            "rating storage backend: all-in-RAM lists, or sqlite cold "
            "tier + numpy hot windows (flat memory at large histories)"
        ),
    )
    parser.add_argument(
        "--hot-window",
        type=int,
        default=None,
        help="tiered backend per-product hot-window size (default: 2x --window)",
    )
    parser.add_argument(
        "--wal-dir",
        default=None,
        help="write-ahead log directory (enables durability + recovery)",
    )
    parser.add_argument(
        "--segment-entries",
        type=int,
        default=100_000,
        help="WAL entries per segment file (rotation granularity)",
    )
    parser.add_argument(
        "--no-wal-gc",
        action="store_true",
        help="keep all WAL segments and snapshots (disable reclamation)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        help="automatic snapshot every N accepted ratings (0 = off)",
    )


def _run_experiment(args: argparse.Namespace) -> str:
    runner, reporter, _ = REGISTRY[args.experiment]
    kwargs = {"seed": args.seed}
    if args.runs is not None and args.experiment in (
        "detection", "table1", "baselines", "adaptive-attacks", "sensitivity", "vouching", "individual-unfair"
    ):
        kwargs["n_runs"] = args.runs
    if args.bias is not None and args.experiment == "fig10-fig12":
        kwargs["bias_shift"] = args.bias
    result = runner(**kwargs)
    if args.json_path:
        dump_json(result, args.json_path)
    return reporter(result)


def _build_engine(args: argparse.Namespace):
    """Construct (or recover) a service engine from CLI arguments."""
    from repro.service import RatingEngine, ServiceConfig
    from repro.service.wal import wal_exists

    sources = tuple(
        name.strip() for name in args.sources.split(",") if name.strip()
    )
    weights = None
    if args.source_weights is not None:
        weights = tuple(
            float(w) for w in args.source_weights.split(",") if w.strip()
        )
    config = ServiceConfig(
        n_shards=args.shards,
        batch_max_ratings=args.batch,
        batch_max_seconds=args.batch_seconds,
        detector_window=args.window,
        detector_stride=args.stride,
        detector_threshold=args.threshold,
        ensemble_sources=sources,
        ensemble_weights=weights,
        ensemble_combiner=args.combiner,
        store_backend=args.store,
        store_hot_window=args.hot_window,
        wal_dir=args.wal_dir,
        wal_segment_entries=args.segment_entries,
        wal_gc=not args.no_wal_gc,
        snapshot_every=args.snapshot_every,
        cluster_workers=args.workers,
        cluster_queue_depth=args.queue_depth,
        cluster_ack_fsync_every=args.ack_fsync_every,
    )
    if config.cluster_workers:
        from repro.service.cluster import ClusterCoordinator

        return ClusterCoordinator(config)
    if args.wal_dir is not None and wal_exists(args.wal_dir):
        from pathlib import Path

        return RatingEngine.recover(Path(args.wal_dir), config=config)
    return RatingEngine(config)


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service.http import serve

    engine = _build_engine(args)
    durability = args.wal_dir if args.wal_dir else "disabled (no --wal-dir)"
    tier = (
        f"{args.workers} worker processes"
        if args.workers
        else f"{args.shards} shards in-process"
    )
    print(
        f"repro service on http://{args.host}:{args.port} "
        f"({tier}, WAL: {durability}); SIGTERM or Ctrl-C to stop"
    )
    # serve() owns the full shutdown path: stop accepting, final
    # snapshot (while the WAL is still open), then engine close.
    serve(engine, host=args.host, port=args.port, quiet=not args.verbose)
    if args.wal_dir:
        print(f"final snapshot written to {args.wal_dir}")
    return 0


def _run_replay(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.ratings.io import read_csv, read_jsonl

    trace = Path(args.trace)
    reader = read_jsonl if trace.suffix == ".jsonl" else read_csv
    stream = reader(trace)
    engine = _build_engine(args)
    start = time.perf_counter()
    results = engine.submit_many(stream)
    engine.flush()
    elapsed = time.perf_counter() - start
    stats = engine.snapshot_stats()
    stats["replay_seconds"] = elapsed
    stats["replay_ratings_per_second"] = len(results) / elapsed if elapsed else 0.0
    malicious = engine.detected_malicious()
    accepted = sum(1 for r in results if r.accepted)
    lines = [
        f"replayed {trace.name}: {accepted}/{len(results)} ratings accepted "
        f"in {elapsed:.3f}s ({stats['replay_ratings_per_second']:.0f} ratings/sec)",
        f"  shards: {stats['n_shards']}  products: {stats['n_products']}  "
        f"raters: {stats['n_raters']}",
        f"  AR evaluations: {stats['ar_evaluations']}  "
        f"windows flagged: {stats['windows_flagged']}  "
        f"trust updates: {stats['trust_updates']}",
        f"  ensemble: {'+'.join(stats['ensemble']['sources'])} "
        f"via {stats['ensemble']['combiner']}",
        f"  detected malicious raters: {malicious if malicious else 'none'}",
    ]
    print("\n".join(lines))
    if args.json_path:
        dump_json(stats, args.json_path)
    engine.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code (nonzero on failure)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "lint":
            from repro.devtools.cli import run_from_args

            return run_from_args(args)
        if args.command == "audit":
            from repro.audit import audit_file, format_audit

            result = audit_file(
                args.trace, threshold=args.threshold, window_size=args.window
            )
            print(format_audit(result))
            return 0
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "replay":
            return _run_replay(args)
        if args.command == "list" or args.command is None:
            print("available experiments:")
            for name in sorted(REGISTRY):
                print(f"  {name:<12} {REGISTRY[name][2]}")
            return 0
        print(_run_experiment(args))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except Exception as exc:  # noqa: BLE001 -- CLI boundary: trade the
        # traceback for a stable exit status scripts can branch on.
        print(f"unexpected error ({type(exc).__name__}): {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
