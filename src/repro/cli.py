"""Command-line interface: ``repro <experiment>`` or ``python -m repro``.

Runs any paper experiment and prints its paper-vs-measured report.
``repro list`` shows what is available; every experiment accepts
``--seed`` and, where meaningful, a size knob so quick runs stay quick.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import REGISTRY
from repro.reporting import dump_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'Building Trust in Online Rating "
            "Systems Through Signal Modeling' (ICDCS 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment",
        choices=sorted(REGISTRY),
        help="which paper artifact to reproduce",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="master seed")
    run_parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="Monte-Carlo repetitions (experiments that repeat; "
        "defaults to the paper's count)",
    )
    run_parser.add_argument(
        "--bias",
        type=float,
        default=None,
        help="attack bias shift (fig10-fig12 only)",
    )
    run_parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="also dump the structured result to this JSON file",
    )

    audit_parser = sub.add_parser(
        "audit", help="audit a rating-trace file (.csv or .jsonl)"
    )
    audit_parser.add_argument("trace", help="path to the trace file")
    audit_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="model-error threshold (default: auto-calibrated to the trace)",
    )
    audit_parser.add_argument(
        "--window", type=int, default=50, help="ratings per analysis window"
    )
    return parser


def _run_experiment(args: argparse.Namespace) -> str:
    runner, reporter, _ = REGISTRY[args.experiment]
    kwargs = {"seed": args.seed}
    if args.runs is not None and args.experiment in (
        "detection", "table1", "baselines", "adaptive-attacks", "sensitivity", "vouching", "individual-unfair"
    ):
        kwargs["n_runs"] = args.runs
    if args.bias is not None and args.experiment == "fig10-fig12":
        kwargs["bias_shift"] = args.bias
    result = runner(**kwargs)
    if args.json_path:
        dump_json(result, args.json_path)
    return reporter(result)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "audit":
        from repro.audit import audit_file, format_audit

        result = audit_file(
            args.trace, threshold=args.threshold, window_size=args.window
        )
        print(format_audit(result))
        return 0
    if args.command == "list" or args.command is None:
        print("available experiments:")
        for name in sorted(REGISTRY):
            print(f"  {name:<12} {REGISTRY[name][2]}")
        return 0
    print(_run_experiment(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
