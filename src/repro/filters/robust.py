"""Classic robust-statistics filters (comparison baselines).

These are not from the paper; they exist so the benchmark suite can
show that *any* majority-band outlier filter -- not just the beta
filter -- fails against the moderate-bias collusion strategy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.filters.base import FilterResult, RatingFilter
from repro.ratings.stream import RatingStream

__all__ = ["ZScoreFilter", "IQRFilter"]


class ZScoreFilter(RatingFilter):
    """Remove ratings more than ``k`` sample standard deviations from the mean.

    Args:
        k: cutoff in standard deviations (default 2.0).
    """

    def __init__(self, k: float = 2.0) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be > 0, got {k}")
        self.k = float(k)

    def filter(self, stream: RatingStream) -> FilterResult:
        if len(stream) < 3:
            return FilterResult(kept=stream, removed=RatingStream())
        values = stream.values
        mean = float(np.mean(values))
        std = float(np.std(values))
        if std == 0.0:
            return FilterResult(kept=stream, removed=RatingStream())
        removed_ids = frozenset(
            r.rating_id for r in stream if abs(r.value - mean) > self.k * std
        )
        return self._result(stream, removed_ids)


class IQRFilter(RatingFilter):
    """Tukey-fence filter: remove ratings outside ``[Q1 - k*IQR, Q3 + k*IQR]``.

    Args:
        k: fence multiplier (default 1.5, the classic Tukey value).
    """

    def __init__(self, k: float = 1.5) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be > 0, got {k}")
        self.k = float(k)

    def filter(self, stream: RatingStream) -> FilterResult:
        if len(stream) < 4:
            return FilterResult(kept=stream, removed=RatingStream())
        values = stream.values
        q1, q3 = np.percentile(values, [25.0, 75.0])
        iqr = q3 - q1
        lo = q1 - self.k * iqr
        hi = q3 + self.k * iqr
        removed_ids = frozenset(
            r.rating_id for r in stream if r.value < lo or r.value > hi
        )
        return self._result(stream, removed_ids)
