"""Majority-quantile rating filter (Whitby-Jøsang-Indulska 2004 style).

Feature extraction module I of the paper uses "the rating filtering
technique in [Whitby et al.] with sensitivity parameter 0.1": ratings
that fall outside the ``q`` and ``1 - q`` quantiles of the majority
opinion are identified as unfair and removed.

Two representations of the majority opinion are provided:

* ``"empirical"`` (default) -- the band is the empirical
  ``[q, 1 - q]`` quantile interval of the window's ratings, inclusive.
  This respects the point masses that clipped, quantized rating scales
  produce at the extreme levels (a level holding 20 % of the mass is
  the majority, not an outlier).
* ``"fitted"`` -- the band comes from a Beta distribution
  moment-matched to the ratings, the closest well-behaved analogue of
  Whitby's Beta machinery.  When the fitted Beta is U/J-shaped (a
  shape parameter below 1, i.e. the extremes are modes), the affected
  bound is released to the domain edge rather than declaring the mode
  an outlier.

Implementation note: Whitby's original per-rater formulation tests the
majority score against each *rater's own* Beta distribution.  With one
rating per rater -- the paper's scenarios -- that distribution is
dominated by its Beta(1, 1) prior, which re-centers every band at
``(1 + r) / 3`` and makes the iterated test cascade until most honest
ratings are removed; see DESIGN.md §5.  Both modes here keep the
method's *published* behaviour: they catch ratings far from the
majority, trim only a small tail of honest ratings, and are blind to
moderate-bias collusion (the motivation for the AR detector).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.filters.base import FilterResult, RatingFilter
from repro.ratings.stream import RatingStream

__all__ = ["BetaQuantileFilter", "moment_matched_beta"]

#: Sample variance below which the window is treated as consensus (no
#: meaningful majority band, nothing filtered).
_MIN_VARIANCE = 1e-6

_MODES = ("empirical", "fitted")


def moment_matched_beta(values: np.ndarray) -> tuple:
    """Fit Beta(alpha, beta) to samples in [0, 1] by moment matching.

    Returns:
        ``(alpha, beta)`` with both parameters clipped to at least 0.05
        so quantiles stay defined even for extreme samples.

    Raises:
        ConfigurationError: on empty input or samples outside [0, 1].
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ConfigurationError("cannot fit a Beta to zero samples")
    if np.any(values < 0.0) or np.any(values > 1.0):
        raise ConfigurationError("Beta fitting needs samples in [0, 1]")
    mean = float(np.mean(values))
    var = float(np.var(values))
    max_var = mean * (1.0 - mean)
    if var <= _MIN_VARIANCE or max_var <= _MIN_VARIANCE:
        # Degenerate consensus; an (essentially) point-mass Beta.
        concentration = 1e6
    else:
        var = min(var, 0.999 * max_var)
        concentration = max_var / var - 1.0
    # Flooring the concentration (not the individual parameters)
    # preserves the fitted mean even for near-Bernoulli samples.
    concentration = max(concentration, 0.1)
    alpha = max(1e-3, mean * concentration)
    beta = max(1e-3, (1.0 - mean) * concentration)
    return alpha, beta


class BetaQuantileFilter(RatingFilter):
    """Filter ratings outside the majority's quantile band.

    Args:
        sensitivity: the quantile ``q`` (paper: 0.1).  At most ``2q`` of
            the window's mass is trimmed, so larger values filter more
            aggressively.
        mode: ``"empirical"`` or ``"fitted"`` (see module docs).
        min_ratings: windows smaller than this are passed through -- a
            handful of ratings carries no majority opinion.
    """

    def __init__(
        self,
        sensitivity: float = 0.1,
        mode: str = "empirical",
        min_ratings: int = 5,
    ) -> None:
        if not 0.0 < sensitivity < 0.5:
            raise ConfigurationError(
                f"sensitivity must lie in (0, 0.5), got {sensitivity}"
            )
        if mode not in _MODES:
            raise ConfigurationError(
                f"unknown mode {mode!r}; choose from {_MODES}"
            )
        if min_ratings < 1:
            raise ConfigurationError(f"min_ratings must be >= 1, got {min_ratings}")
        self.sensitivity = float(sensitivity)
        self.mode = mode
        self.min_ratings = int(min_ratings)

    def band(self, values: np.ndarray) -> tuple:
        """The acceptance interval implied by a set of ratings."""
        values = np.asarray(values, dtype=float).ravel()
        q = self.sensitivity
        if self.mode == "empirical":
            lo = float(np.quantile(values, q))
            hi = float(np.quantile(values, 1.0 - q))
            return lo, hi
        alpha, beta = moment_matched_beta(values)
        # A shape parameter below 1 makes the corresponding extreme a
        # mode of the fit -- the extreme IS the majority there, so the
        # bound is released to the domain edge.
        lo = 0.0 if alpha < 1.0 else float(stats.beta.ppf(q, alpha, beta))
        hi = 1.0 if beta < 1.0 else float(stats.beta.ppf(1.0 - q, alpha, beta))
        return lo, hi

    def filter(self, stream: RatingStream) -> FilterResult:
        if len(stream) < self.min_ratings:
            return FilterResult(kept=stream, removed=RatingStream())
        values = stream.values
        if float(np.var(values)) <= _MIN_VARIANCE:
            # Unanimous window: no outliers by definition.
            return FilterResult(kept=stream, removed=RatingStream())
        lo, hi = self.band(values)
        removed_ids = frozenset(
            r.rating_id for r in stream if not lo <= r.value <= hi
        )
        return self._result(stream, removed_ids)
