"""Rating-filter interface (feature extraction module I).

A rating filter inspects the ratings submitted for one object and
splits them into *normal* and *abnormal* sets.  Abnormal ratings are
excluded from aggregation and reported to the trust manager's
observation buffer (a filtered rating counts against its rater's trust,
Procedure 2's ``f_i``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List

from repro.ratings.stream import RatingStream

__all__ = ["FilterResult", "RatingFilter", "WindowedFilter", "NullFilter"]


@dataclass(frozen=True)
class FilterResult:
    """Outcome of filtering one stream.

    Attributes:
        kept: stream of ratings judged normal.
        removed: stream of ratings judged abnormal.
    """

    kept: RatingStream
    removed: RatingStream

    @property
    def removed_ids(self) -> FrozenSet[int]:
        return frozenset(r.rating_id for r in self.removed)

    @property
    def removed_rater_ids(self) -> FrozenSet[int]:
        return frozenset(r.rater_id for r in self.removed)

    @property
    def n_removed(self) -> int:
        return len(self.removed)


class RatingFilter(abc.ABC):
    """Abstract rating filter."""

    @abc.abstractmethod
    def filter(self, stream: RatingStream) -> FilterResult:
        """Split a stream into kept and removed ratings."""

    @staticmethod
    def _result(stream: RatingStream, removed_ids: FrozenSet[int]) -> FilterResult:
        kept = tuple(r for r in stream if r.rating_id not in removed_ids)
        removed = tuple(r for r in stream if r.rating_id in removed_ids)
        return FilterResult(
            kept=RatingStream(ratings=kept), removed=RatingStream(ratings=removed)
        )


class NullFilter(RatingFilter):
    """Pass-through filter (keeps everything); the no-filter baseline."""

    def filter(self, stream: RatingStream) -> FilterResult:
        return FilterResult(kept=stream, removed=RatingStream())


class WindowedFilter(RatingFilter):
    """Apply a base filter independently inside consecutive time windows.

    Section IV applies the beta filter in non-overlapping 30-day
    windows; a rating is removed iff the base filter removes it in its
    window.

    Args:
        base: the per-window filter.
        window_length: window length in days.
        origin: left edge of the first window (default 0.0 so windows
            align with the simulation calendar).
        min_count: windows with fewer ratings are passed through
            unfiltered -- tiny windows carry no majority opinion.
    """

    def __init__(
        self,
        base: RatingFilter,
        window_length: float,
        origin: float = 0.0,
        min_count: int = 3,
    ) -> None:
        self.base = base
        self.window_length = float(window_length)
        self.origin = float(origin)
        self.min_count = int(min_count)

    def _windows(self, stream: RatingStream) -> Iterator[RatingStream]:
        times = stream.times
        last = float(times[-1])
        left = self.origin
        while left <= last:
            yield stream.between(left, left + self.window_length)
            left += self.window_length

    def filter(self, stream: RatingStream) -> FilterResult:
        if len(stream) == 0:
            return FilterResult(kept=stream, removed=RatingStream())
        removed_ids: List[int] = []
        for window_stream in self._windows(stream):
            if len(window_stream) < self.min_count:
                continue
            result = self.base.filter(window_stream)
            removed_ids.extend(result.removed_ids)
        return self._result(stream, frozenset(removed_ids))
