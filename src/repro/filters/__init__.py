"""Rating filters (feature extraction module I) and baselines."""

from repro.filters.base import FilterResult, NullFilter, RatingFilter, WindowedFilter
from repro.filters.beta_quantile import BetaQuantileFilter
from repro.filters.robust import IQRFilter, ZScoreFilter

__all__ = [
    "FilterResult",
    "NullFilter",
    "RatingFilter",
    "WindowedFilter",
    "BetaQuantileFilter",
    "IQRFilter",
    "ZScoreFilter",
]
