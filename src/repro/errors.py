"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends raised by misuse of numpy, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SignalModelError(ReproError):
    """An AR model could not be estimated from the given samples."""


class InsufficientDataError(SignalModelError):
    """Too few samples were supplied for the requested model order."""


class UnknownRaterError(ReproError):
    """A rater id was referenced that the trust manager has never seen."""


class UnknownProductError(ReproError):
    """A product id was referenced that the rating store has never seen."""


class EmptyWindowError(ReproError):
    """A windowed operation was asked to operate on an empty window."""
