"""Tests for WAL durability, snapshots, and crash recovery."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig, WriteAheadLog
from repro.service.wal import (
    WAL_FILENAME,
    latest_snapshot,
    list_snapshots,
    read_snapshot,
    replay_wal,
    write_snapshot,
)
from tests.test_service_engine import BASE, make_stream


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / WAL_FILENAME)
        stream = make_stream(20)
        for rating in stream:
            wal.append(rating)
        wal.close()
        replayed = list(replay_wal(tmp_path / WAL_FILENAME))
        assert [seq for seq, _ in replayed] == list(range(20))
        assert [r for _, r in replayed] == stream

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        wal = WriteAheadLog(path)
        assert wal.append(make_stream(1)[0]) == 0
        wal.close()
        wal = WriteAheadLog(path)
        assert wal.n_entries == 1
        assert wal.append(make_stream(2)[1]) == 1
        wal.close()

    def test_fsync_callback_fires(self, tmp_path):
        durations = []
        wal = WriteAheadLog(tmp_path / WAL_FILENAME, on_fsync=durations.append)
        wal.append(make_stream(1)[0])
        wal.close()
        assert durations and all(d >= 0 for d in durations)

    def test_batched_fsync(self, tmp_path):
        durations = []
        wal = WriteAheadLog(
            tmp_path / WAL_FILENAME, fsync_every=10, on_fsync=durations.append
        )
        for rating in make_stream(25):
            wal.append(rating)
        assert len(durations) == 2  # at 10 and 20
        wal.close()  # close syncs the tail
        assert len(durations) == 3

    def test_invalid_fsync_every(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path / WAL_FILENAME, fsync_every=0)

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        path.write_text('{"rating_id": 0\nnot json\n')
        with pytest.raises(ConfigurationError):
            list(replay_wal(path))


class TestSnapshots:
    def test_atomic_write_and_read(self, tmp_path):
        state = {"wal_position": 42, "payload": [1, 2, 3]}
        path = write_snapshot(tmp_path, state)
        assert path.name == "snapshot-000000000042.json"
        assert read_snapshot(path) == state
        assert not list(tmp_path.glob("*.tmp"))

    def test_latest_picks_highest_position(self, tmp_path):
        write_snapshot(tmp_path, {"wal_position": 10})
        write_snapshot(tmp_path, {"wal_position": 200})
        write_snapshot(tmp_path, {"wal_position": 30})
        assert latest_snapshot(tmp_path).name == "snapshot-000000000200.json"
        assert len(list_snapshots(tmp_path)) == 3

    def test_missing_wal_position_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_snapshot(tmp_path, {"no_position": 1})
        bad = tmp_path / "snapshot-000000000001.json"
        bad.write_text(json.dumps({"x": 1}))
        with pytest.raises(ConfigurationError):
            read_snapshot(bad)


class TestCrashRecovery:
    def _run_uninterrupted(self, wal_dir, stream):
        engine = RatingEngine(ServiceConfig(wal_dir=str(wal_dir), **BASE))
        engine.submit_many(stream)
        engine.flush()
        return engine

    def test_recovery_is_bit_for_bit(self, tmp_path):
        """Kill an engine mid-stream; recovery matches an uninterrupted
        run exactly -- same trust, same scores, same counters."""
        stream = make_stream(240, seed=1)
        baseline = self._run_uninterrupted(tmp_path / "a", stream)

        crash_dir = tmp_path / "b"
        crashed = RatingEngine(
            ServiceConfig(wal_dir=str(crash_dir), snapshot_every=50, **BASE)
        )
        crashed.submit_many(stream[:150])
        # Crash: drop the engine without flush/close.  The WAL and the
        # periodic snapshots are all that survive.
        del crashed
        assert latest_snapshot(crash_dir) is not None

        recovered = RatingEngine.recover(crash_dir)
        assert recovered.n_accepted == 150
        recovered.submit_many(stream[150:])
        recovered.flush()

        assert recovered.trust_table() == baseline.trust_table()
        for product_id in range(3):
            assert recovered.score(product_id) == baseline.score(product_id)
        base_stats = baseline.snapshot_stats()
        rec_stats = recovered.snapshot_stats()
        for key in ("n_accepted", "ar_evaluations", "windows_flagged", "n_products"):
            assert rec_stats[key] == base_stats[key]

    def test_recovery_from_wal_alone(self, tmp_path):
        """With snapshots deleted, a full WAL replay still matches."""
        stream = make_stream(160, seed=2)
        baseline = self._run_uninterrupted(tmp_path / "a", stream)

        crash_dir = tmp_path / "b"
        crashed = RatingEngine(
            ServiceConfig(wal_dir=str(crash_dir), snapshot_every=40, **BASE)
        )
        crashed.submit_many(stream)
        del crashed
        for snapshot in list_snapshots(crash_dir):
            snapshot.unlink()

        recovered = RatingEngine.recover(
            crash_dir, config=ServiceConfig(wal_dir=str(crash_dir), **BASE)
        )
        recovered.flush()
        assert recovered.n_accepted == 160
        assert recovered.trust_table() == baseline.trust_table()

    def test_recovered_engine_keeps_ordering_state(self, tmp_path):
        """Recovery restores per-product time cursors: stale ratings
        are still rejected afterwards."""
        wal_dir = tmp_path / "w"
        engine = RatingEngine(ServiceConfig(wal_dir=str(wal_dir), **BASE))
        engine.submit(Rating(0, 1, 0, 0.5, time=9.0))
        engine.snapshot()
        del engine
        recovered = RatingEngine.recover(wal_dir)
        assert not recovered.submit(Rating(1, 2, 0, 0.5, time=3.0)).accepted
        assert recovered.submit(Rating(2, 2, 0, 0.5, time=9.5)).accepted

    def test_recover_empty_directory_gives_fresh_engine(self, tmp_path):
        engine = RatingEngine.recover(tmp_path / "nothing")
        assert engine.n_accepted == 0

    def test_wal_shorter_than_snapshot_rejected(self, tmp_path):
        wal_dir = tmp_path / "w"
        engine = RatingEngine(ServiceConfig(wal_dir=str(wal_dir), **BASE))
        engine.submit_many(make_stream(30))
        engine.snapshot()
        engine.close()
        (wal_dir / WAL_FILENAME).write_text("")  # truncate the log
        with pytest.raises(ConfigurationError):
            RatingEngine.recover(wal_dir)

    def test_snapshot_requires_wal_dir(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        with pytest.raises(ConfigurationError):
            engine.snapshot()
