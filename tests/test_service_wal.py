"""Tests for WAL durability, snapshots, and crash recovery."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig, WriteAheadLog
from repro.service.wal import (
    WAL_FILENAME,
    latest_snapshot,
    list_segments,
    list_snapshots,
    read_snapshot,
    replay_wal,
    wal_exists,
    write_snapshot,
)
from tests.test_service_engine import BASE, make_stream


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / WAL_FILENAME)
        stream = make_stream(20)
        for rating in stream:
            wal.append(rating)
        wal.close()
        replayed = list(replay_wal(tmp_path / WAL_FILENAME))
        assert [seq for seq, _ in replayed] == list(range(20))
        assert [r for _, r in replayed] == stream

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        wal = WriteAheadLog(path)
        assert wal.append(make_stream(1)[0]) == 0
        wal.close()
        wal = WriteAheadLog(path)
        assert wal.n_entries == 1
        assert wal.append(make_stream(2)[1]) == 1
        wal.close()

    def test_fsync_callback_fires(self, tmp_path):
        durations = []
        wal = WriteAheadLog(tmp_path / WAL_FILENAME, on_fsync=durations.append)
        wal.append(make_stream(1)[0])
        wal.close()
        assert durations and all(d >= 0 for d in durations)

    def test_batched_fsync(self, tmp_path):
        durations = []
        wal = WriteAheadLog(
            tmp_path / WAL_FILENAME, fsync_every=10, on_fsync=durations.append
        )
        for rating in make_stream(25):
            wal.append(rating)
        assert len(durations) == 2  # at 10 and 20
        wal.close()  # close syncs the tail
        assert len(durations) == 3

    def test_invalid_fsync_every(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path / WAL_FILENAME, fsync_every=0)

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        path.write_text('{"rating_id": 0\nnot json\n')
        with pytest.raises(ConfigurationError):
            list(replay_wal(path))


class TestSegments:
    def _fill(self, directory, n, segment_entries=10, **kwargs):
        wal = WriteAheadLog(directory, segment_entries=segment_entries, **kwargs)
        for rating in make_stream(n):
            wal.append(rating)
        return wal

    def test_rotation_creates_numbered_segments(self, tmp_path):
        wal = self._fill(tmp_path, 35, segment_entries=10)
        wal.close()
        segments = list_segments(tmp_path)
        assert [start for start, _ in segments] == [0, 10, 20, 30]
        assert [path.name for _, path in segments] == [
            "wal-000000000000.jsonl",
            "wal-000000000010.jsonl",
            "wal-000000000020.jsonl",
            "wal-000000000030.jsonl",
        ]
        replayed = list(replay_wal(tmp_path))
        assert [seq for seq, _ in replayed] == list(range(35))

    def test_rotation_callback_reports_segment_count(self, tmp_path):
        counts = []
        wal = self._fill(tmp_path, 35, segment_entries=10, on_rotate=counts.append)
        wal.close()
        assert counts == [2, 3, 4]

    def test_open_reads_only_the_last_segment(self, tmp_path):
        """Sealed segments are never opened on reopen: corrupt them all
        and the count must still come out right."""
        wal = self._fill(tmp_path, 35, segment_entries=10)
        wal.close()
        for start, path in list_segments(tmp_path)[:-1]:
            path.write_text("garbage that would not parse\n" * 10)
        reopened = WriteAheadLog(tmp_path, segment_entries=10)
        assert reopened.n_entries == 35
        assert reopened.append(make_stream(36)[35]) == 35
        reopened.close()

    def test_replay_from_start_of_later_segment(self, tmp_path):
        wal = self._fill(tmp_path, 35, segment_entries=10)
        wal.close()
        replayed = list(replay_wal(tmp_path, start=23))
        assert [seq for seq, _ in replayed] == list(range(23, 35))

    def test_gc_drops_covered_segments_only(self, tmp_path):
        wal = self._fill(tmp_path, 35, segment_entries=10)
        assert wal.gc(horizon=25) == 2  # [0,10) and [10,20) are covered
        assert [start for start, _ in wal.segments()] == [20, 30]
        assert wal.first_seq == 20
        assert wal.n_entries == 35
        with pytest.raises(ConfigurationError):
            list(replay_wal(tmp_path, start=5))
        assert len(list(replay_wal(tmp_path, start=25))) == 10
        wal.close()

    def test_gc_never_drops_the_active_segment(self, tmp_path):
        wal = self._fill(tmp_path, 35, segment_entries=10)
        assert wal.gc(horizon=1_000_000) == 3
        assert [start for start, _ in wal.segments()] == [30]
        wal.append(make_stream(36)[35])
        assert wal.n_entries == 36
        wal.close()

    def test_legacy_single_file_is_migrated(self, tmp_path):
        legacy = WriteAheadLog(tmp_path / "old" / WAL_FILENAME)
        for rating in make_stream(5):
            legacy.append(rating)
        legacy.close()
        # Simulate a pre-segment layout: a bare wal.jsonl.
        (tmp_path / "migrate").mkdir()
        (tmp_path / "old" / "wal-000000000000.jsonl").rename(
            tmp_path / "migrate" / WAL_FILENAME
        )
        assert wal_exists(tmp_path / "migrate")
        wal = WriteAheadLog(tmp_path / "migrate")
        assert wal.n_entries == 5
        assert not (tmp_path / "migrate" / WAL_FILENAME).exists()
        assert (tmp_path / "migrate" / "wal-000000000000.jsonl").exists()
        wal.close()

    def test_second_engine_fails_fast_on_locked_directory(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        with pytest.raises(ConfigurationError, match="locked"):
            WriteAheadLog(tmp_path)
        wal.close()
        reopened = WriteAheadLog(tmp_path)  # released on close
        reopened.close()

    def test_torn_partial_line_dropped_once(self, tmp_path):
        wal = self._fill(tmp_path, 12, segment_entries=10)
        wal.close()
        active = list_segments(tmp_path)[-1][1]
        with active.open("ab") as fh:
            fh.write(b'{"rating_id": 999, "torn')
        assert len(list(replay_wal(tmp_path))) == 12
        reopened = WriteAheadLog(tmp_path, segment_entries=10)
        assert reopened.n_entries == 12  # repaired: the tail is gone
        reopened.close()
        assert b"torn" not in active.read_bytes()

    def test_torn_unparseable_final_line_dropped_once(self, tmp_path):
        """A complete but garbled final line (newline made it to disk,
        the payload did not) is also a torn tail."""
        wal = self._fill(tmp_path, 12, segment_entries=10)
        wal.close()
        active = list_segments(tmp_path)[-1][1]
        with active.open("ab") as fh:
            fh.write(b'{"rating_id": 999, "garbled\n')
        assert len(list(replay_wal(tmp_path))) == 12
        reopened = WriteAheadLog(tmp_path, segment_entries=10)
        assert reopened.n_entries == 12
        reopened.close()

    def test_mid_segment_corruption_raises(self, tmp_path):
        """Only the *final* record may be torn; damage anywhere else is
        real corruption and must refuse to replay."""
        wal = self._fill(tmp_path, 8, segment_entries=100)
        wal.close()
        active = list_segments(tmp_path)[-1][1]
        lines = active.read_text().splitlines()
        lines[3] = '{"broken":'
        active.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError):
            list(replay_wal(tmp_path))

    def test_stale_snapshot_tmp_removed_on_open(self, tmp_path):
        stale = tmp_path / "snapshot-000000000099.json.tmp"
        tmp_path.mkdir(exist_ok=True)
        stale.write_text('{"half": ')
        wal = WriteAheadLog(tmp_path)
        assert not stale.exists()
        wal.close()

    def test_stale_tmp_removal_is_made_durable(self, tmp_path, monkeypatch):
        """Removing stale temp files must be followed by a directory
        fsync, or a crash can resurrect the half-written files."""
        import repro.service.wal as wal_mod

        synced = []
        monkeypatch.setattr(
            wal_mod, "_fsync_dir", lambda path: synced.append(Path(path))
        )
        stale = tmp_path / "snapshot-000000000099.json.tmp"
        stale.write_text('{"half": ')
        wal = wal_mod.WriteAheadLog(tmp_path)
        assert not stale.exists()
        assert tmp_path in synced
        wal.close()

    def test_no_dir_fsync_when_no_stale_tmp(self, tmp_path, monkeypatch):
        import repro.service.wal as wal_mod

        synced = []
        monkeypatch.setattr(
            wal_mod, "_fsync_dir", lambda path: synced.append(Path(path))
        )
        wal = wal_mod.WriteAheadLog(tmp_path)
        # The open itself may fsync for segment creation, but never on
        # behalf of the (empty) stale-tmp sweep before any append.
        assert synced.count(tmp_path) <= 1
        wal.close()


class TestSnapshots:
    def test_atomic_write_and_read(self, tmp_path):
        state = {"wal_position": 42, "payload": [1, 2, 3]}
        path = write_snapshot(tmp_path, state)
        assert path.name == "snapshot-000000000042.json"
        assert read_snapshot(path) == state
        assert not list(tmp_path.glob("*.tmp"))

    def test_latest_picks_highest_position(self, tmp_path):
        write_snapshot(tmp_path, {"wal_position": 10})
        write_snapshot(tmp_path, {"wal_position": 200})
        write_snapshot(tmp_path, {"wal_position": 30})
        assert latest_snapshot(tmp_path).name == "snapshot-000000000200.json"
        assert len(list_snapshots(tmp_path)) == 3

    def test_missing_wal_position_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_snapshot(tmp_path, {"no_position": 1})
        bad = tmp_path / "snapshot-000000000001.json"
        bad.write_text(json.dumps({"x": 1}))
        with pytest.raises(ConfigurationError):
            read_snapshot(bad)


class TestCrashRecovery:
    def _run_uninterrupted(self, wal_dir, stream):
        engine = RatingEngine(ServiceConfig(wal_dir=str(wal_dir), **BASE))
        engine.submit_many(stream)
        engine.flush()
        return engine

    def test_recovery_is_bit_for_bit(self, tmp_path):
        """Kill an engine mid-stream; recovery matches an uninterrupted
        run exactly -- same trust, same scores, same counters."""
        stream = make_stream(240, seed=1)
        baseline = self._run_uninterrupted(tmp_path / "a", stream)

        crash_dir = tmp_path / "b"
        crashed = RatingEngine(
            ServiceConfig(wal_dir=str(crash_dir), snapshot_every=50, **BASE)
        )
        crashed.submit_many(stream[:150])
        # Crash: drop the engine without flush/close.  Only the WAL's
        # owner lock is released (a dead process would release it too);
        # the WAL and the periodic snapshots are all that survive.
        crashed.wal.close()
        del crashed
        assert latest_snapshot(crash_dir) is not None

        recovered = RatingEngine.recover(crash_dir)
        assert recovered.n_accepted == 150
        recovered.submit_many(stream[150:])
        recovered.flush()

        assert recovered.trust_table() == baseline.trust_table()
        for product_id in range(3):
            assert recovered.score(product_id) == baseline.score(product_id)
        base_stats = baseline.snapshot_stats()
        rec_stats = recovered.snapshot_stats()
        for key in ("n_accepted", "ar_evaluations", "windows_flagged", "n_products"):
            assert rec_stats[key] == base_stats[key]

    def test_recovery_from_wal_alone(self, tmp_path):
        """With snapshots deleted, a full WAL replay still matches."""
        stream = make_stream(160, seed=2)
        baseline = self._run_uninterrupted(tmp_path / "a", stream)

        crash_dir = tmp_path / "b"
        crashed = RatingEngine(
            ServiceConfig(wal_dir=str(crash_dir), snapshot_every=40, **BASE)
        )
        crashed.submit_many(stream)
        crashed.wal.close()
        del crashed
        for snapshot in list_snapshots(crash_dir):
            snapshot.unlink()

        recovered = RatingEngine.recover(
            crash_dir, config=ServiceConfig(wal_dir=str(crash_dir), **BASE)
        )
        recovered.flush()
        assert recovered.n_accepted == 160
        assert recovered.trust_table() == baseline.trust_table()

    def test_recovered_engine_keeps_ordering_state(self, tmp_path):
        """Recovery restores per-product time cursors: stale ratings
        are still rejected afterwards."""
        wal_dir = tmp_path / "w"
        engine = RatingEngine(ServiceConfig(wal_dir=str(wal_dir), **BASE))
        engine.submit(Rating(0, 1, 0, 0.5, time=9.0))
        engine.snapshot()
        engine.wal.close()
        del engine
        recovered = RatingEngine.recover(wal_dir)
        assert not recovered.submit(Rating(1, 2, 0, 0.5, time=3.0)).accepted
        assert recovered.submit(Rating(2, 2, 0, 0.5, time=9.5)).accepted

    def test_recover_empty_directory_gives_fresh_engine(self, tmp_path):
        engine = RatingEngine.recover(tmp_path / "nothing")
        assert engine.n_accepted == 0

    def test_wal_shorter_than_snapshot_rejected(self, tmp_path):
        wal_dir = tmp_path / "w"
        engine = RatingEngine(ServiceConfig(wal_dir=str(wal_dir), **BASE))
        engine.submit_many(make_stream(30))
        engine.snapshot()
        engine.close()
        (wal_dir / WAL_FILENAME).write_text("")  # truncate the log
        with pytest.raises(ConfigurationError):
            RatingEngine.recover(wal_dir)

    def test_snapshot_requires_wal_dir(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        with pytest.raises(ConfigurationError):
            engine.snapshot()
