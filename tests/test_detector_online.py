"""Tests for the streaming AR detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.ar_detector import ARModelErrorDetector
from repro.detectors.online import OnlineARDetector
from repro.errors import ConfigurationError
from repro.signal.windows import CountWindower
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative
from tests.conftest import make_rating, make_stream


class TestConfiguration:
    def test_window_must_exceed_order(self):
        with pytest.raises(ConfigurationError):
            OnlineARDetector(order=4, window_size=8)

    def test_invalid_stride(self):
        with pytest.raises(ConfigurationError):
            OnlineARDetector(stride=0)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            OnlineARDetector(threshold=1.5)


class TestStreaming:
    def test_no_verdict_until_buffer_full(self, rng):
        detector = OnlineARDetector(window_size=50, stride=1)
        for i in range(49):
            rating = make_rating(i, 0.5, float(i))
            assert detector.observe(rating) is None
        assert not detector.buffer_full
        verdict = detector.observe(make_rating(49, 0.5, 49.0))
        assert verdict is not None
        assert detector.buffer_full

    def test_stride_spacing(self, rng):
        detector = OnlineARDetector(window_size=20, stride=5)
        values = np.clip(rng.normal(0.7, 0.3, size=60), 0, 1)
        emitted = detector.observe_many(
            make_stream(np.round(values, 1), spacing=0.5)
        )
        # First verdict at rating 20, then one per 5 arrivals.
        assert len(emitted) == 1 + (60 - 20) // 5

    def test_out_of_order_rejected(self):
        detector = OnlineARDetector(window_size=20)
        detector.observe(make_rating(0, 0.5, 10.0))
        with pytest.raises(ConfigurationError):
            detector.observe(make_rating(1, 0.5, 9.0))

    def test_equal_timestamps_allowed(self):
        detector = OnlineARDetector(window_size=20)
        detector.observe(make_rating(0, 0.5, 10.0))
        detector.observe(make_rating(1, 0.6, 10.0))
        assert detector.n_seen == 2

    def test_reset_clears_state(self, rng):
        detector = OnlineARDetector(window_size=20, stride=1)
        values = np.clip(rng.normal(0.7, 0.3, size=30), 0, 1)
        detector.observe_many(make_stream(np.round(values, 1)))
        detector.reset()
        assert detector.n_seen == 0
        assert detector.verdicts == []
        # Time ordering restarts too.
        detector.observe(make_rating(99, 0.5, 0.0))

    def test_statistic_matches_batch_detector(self, rng):
        # Same window, same estimator -> same normalized error as the
        # batch detector's last full window.
        values = np.round(np.clip(rng.normal(0.7, 0.3, size=50), 0, 1), 1)
        stream = make_stream(values)
        online = OnlineARDetector(window_size=50, stride=50, threshold=0.10)
        emitted = online.observe_many(stream)
        batch = ARModelErrorDetector(
            order=4, threshold=0.10, windower=CountWindower(size=50)
        ).window_errors(stream)
        assert len(emitted) == 1
        assert emitted[0].statistic == pytest.approx(batch[0].statistic)


class TestDetection:
    def test_alarm_during_campaign(self):
        config = IllustrativeConfig()
        trace = generate_illustrative(config, np.random.default_rng(3))
        detector = OnlineARDetector(window_size=50, stride=5, threshold=0.10)
        detector.observe_many(trace.attacked)
        assert detector.alarms
        alarm_times = [v.window.end_time for v in detector.alarms]
        # The first alarm lands inside (or right after) the campaign.
        assert config.attack_start <= min(alarm_times) <= config.attack_end + 10

    def test_quiet_on_honest_stream(self):
        config = IllustrativeConfig()
        trace = generate_illustrative(config, np.random.default_rng(3))
        detector = OnlineARDetector(window_size=50, stride=5, threshold=0.10)
        detector.observe_many(trace.honest)
        assert len(detector.alarms) <= 1

    def test_suspicious_raters_charged(self):
        config = IllustrativeConfig()
        trace = generate_illustrative(config, np.random.default_rng(3))
        detector = OnlineARDetector(window_size=50, stride=5, threshold=0.10)
        detector.observe_many(trace.attacked)
        suspicion = detector.suspicious_raters()
        assert suspicion
        unfair_raters = {r.rater_id for r in trace.attacked if r.unfair}
        # A solid share of charged raters are true colluders.
        flagged = set(suspicion)
        assert len(flagged & unfair_raters) / len(flagged) > 0.3


class TestEdgeCases:
    def test_stride_larger_than_window(self, rng):
        # A stride beyond the window just means sparser evaluations:
        # first verdict once BOTH the buffer is full and stride
        # arrivals have passed, then one per stride.
        detector = OnlineARDetector(window_size=20, stride=30)
        values = np.clip(rng.normal(0.7, 0.3, size=90), 0, 1)
        emitted = detector.observe_many(make_stream(np.round(values, 1)))
        assert len(emitted) == 3  # at arrivals 30, 60, 90
        assert detector.n_seen == 90

    def test_duplicate_timestamps_whole_stream(self, rng):
        # A burst where every rating carries the same timestamp is
        # legal (arrival order is the temporal axis) and still
        # evaluates windows.
        detector = OnlineARDetector(window_size=20, stride=5)
        values = np.clip(rng.normal(0.7, 0.3, size=40), 0, 1)
        emitted = detector.observe_many(
            make_stream(np.round(values, 1), spacing=0.0)
        )
        assert detector.n_seen == 40
        assert len(emitted) == 1 + (40 - 20) // 5
        for verdict in emitted:
            assert verdict.window.start_time == verdict.window.end_time == 0.0

    def test_warm_up_emits_nothing_before_window_fills(self, rng):
        detector = OnlineARDetector(window_size=25, stride=1)
        values = np.clip(rng.normal(0.7, 0.3, size=24), 0, 1)
        emitted = detector.observe_many(make_stream(np.round(values, 1)))
        assert emitted == []
        assert detector.verdicts == []
        assert not detector.buffer_full
        # The very next arrival triggers the first evaluation.
        verdict = detector.observe(make_rating(24, 0.5, 24.0))
        assert verdict is not None


class TestPersistence:
    def test_state_roundtrip_mid_stream(self, rng):
        # Save at an arbitrary point; the restored detector must emit
        # the identical verdict sequence for the remaining arrivals.
        values = np.round(np.clip(rng.normal(0.7, 0.2, size=80), 0, 1), 2)
        stream = list(make_stream(values))
        original = OnlineARDetector(window_size=20, stride=3, threshold=0.2)
        original.observe_many(stream[:37])

        restored = OnlineARDetector(window_size=20, stride=3, threshold=0.2)
        restored.load_state(original.state_dict())
        assert restored.n_seen == original.n_seen

        tail_a = original.observe_many(stream[37:])
        tail_b = restored.observe_many(stream[37:])
        assert len(tail_a) == len(tail_b)
        for verdict_a, verdict_b in zip(tail_a, tail_b):
            assert verdict_a.statistic == verdict_b.statistic
            assert verdict_a.suspicious == verdict_b.suspicious
            assert list(verdict_a.window.indices) == list(verdict_b.window.indices)

    def test_state_dict_is_json_serializable(self, rng):
        import json

        detector = OnlineARDetector(window_size=20, stride=3)
        values = np.clip(rng.normal(0.7, 0.3, size=30), 0, 1)
        detector.observe_many(make_stream(np.round(values, 1)))
        assert json.loads(json.dumps(detector.state_dict())) == detector.state_dict()

    def test_oversized_buffer_rejected(self):
        detector = OnlineARDetector(window_size=20)
        state = detector.state_dict()
        state["buffer"] = [
            {"rating_id": i, "rater_id": i, "product_id": 0,
             "value": 0.5, "time": float(i), "unfair": False}
            for i in range(21)
        ]
        with pytest.raises(ConfigurationError):
            detector.load_state(state)

    def test_prune_keeps_future_behavior(self, rng):
        values = np.round(np.clip(rng.normal(0.7, 0.2, size=80), 0, 1), 2)
        stream = list(make_stream(values))
        plain = OnlineARDetector(window_size=20, stride=3, threshold=0.2)
        pruned = OnlineARDetector(window_size=20, stride=3, threshold=0.2)
        plain.observe_many(stream[:40])
        pruned.observe_many(stream[:40])
        pruned.prune()
        assert pruned.verdicts == []
        tail_a = plain.observe_many(stream[40:])
        tail_b = pruned.observe_many(stream[40:])
        assert [v.statistic for v in tail_a] == [v.statistic for v in tail_b]
        # After pruning, the position map stays bounded by the window.
        assert len(pruned._rater_by_position) <= 20 + len(stream[40:])
